//! Minimal, deterministic, dependency-free shim for the subset of the
//! `rand` crate API that the ssync workspace uses.
//!
//! The build container has no crates.io access, so this crate stands in
//! for the real `rand`. It provides:
//!
//! * [`rngs::SmallRng`] — an xoshiro256++ generator (the same family the
//!   real `SmallRng` uses on 64-bit targets),
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion, matching
//!   the convention of the real crate,
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges, and
//!   [`Rng::gen`] for the primitive types the workspace samples.
//!
//! Determinism matters more than statistical quality here: the simulator
//! requires that the same seed replays the same schedule (see
//! `tests/proptest_invariants.rs::sim_is_deterministic`).

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling helpers layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    ///
    /// Panics when the range is empty, like the real `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Maps a random word into `0..span` (Lemire-style multiply-shift;
/// the slight modulo bias of the plain fallback is irrelevant here).
fn reduce(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ small fast generator, seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Minimal, dependency-free shim for the subset of the `proptest` API
//! that the ssync workspace uses.
//!
//! The build container has no crates.io access, so this crate stands in
//! for the real `proptest`. It keeps the property-based *shape* of the
//! tests — strategies generate random inputs, each test body runs for
//! many cases — but drops shrinking: a failing case panics with the test
//! name and case number so it can be replayed (cases are deterministic
//! per test name, plus `PROPTEST_CASES` to change the case count).
//!
//! Supported surface: the [`proptest!`] macro over `fn name(arg in
//! strategy, ...)` items, integer range strategies (`a..b`, `a..=b`),
//! [`any`] for primitives, tuple strategies up to arity 3,
//! `proptest::collection::vec`, and `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`.

/// Number of cases per property when `PROPTEST_CASES` is unset.
pub const DEFAULT_CASES: u32 = 64;

/// Resolves the per-property case count from the environment.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

pub mod test_runner {
    /// SplitMix64 — deterministic per seed, so every `cargo test` run
    /// explores the same cases and failures reproduce.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a deterministic generator from a test's name.
        pub fn deterministic(name: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis.
            for b in name.bytes() {
                state ^= u64::from(b);
                state = state.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..span` (`span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl<A: Strategy> Strategy for (A,) {
        type Value = (A::Value,);

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.new_value(rng),)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.new_value(rng), self.1.new_value(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.new_value(rng),
                self.1.new_value(rng),
                self.2.new_value(rng),
            )
        }
    }

    /// Strategy returned by [`crate::any`].
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(core::marker::PhantomData)
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// `vec(element, len_range)` — mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            min_len: len.start,
            max_len: len.end - 1,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.max_len - self.min_len + 1) as u64;
            let len = self.min_len + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// item becomes a `#[test]` running [`cases`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..cases {
                    let result = (|| -> ::core::result::Result<(), ::std::string::String> {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                        )*
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(msg) = result {
                        panic!(
                            "property {} failed at case {case}/{cases}: {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!` — fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// `prop_assert_eq!` — equality assertion for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// `prop_assert_ne!` — inequality assertion for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

pub mod prelude {
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u64..=5, v in crate::collection::vec((0u8..4, any::<bool>()), 0..6)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
            prop_assert!(v.len() < 6);
            for (b, _flag) in v {
                prop_assert!(b < 4);
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

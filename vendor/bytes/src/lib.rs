//! Minimal, dependency-free shim for the subset of the `bytes` crate
//! that the ssync workspace uses: an immutable, cheaply-cloneable byte
//! string backed by `Arc<[u8]>`.
//!
//! The build container has no crates.io access, so this crate stands in
//! for the real `bytes`. Clones share the allocation (O(1)), which is
//! the property the KV store relies on to return values without copying.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte string.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
        }
    }

    /// Creates a `Bytes` from a static slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the byte string is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn round_trips() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(b.as_ref(), b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        let v: Bytes = vec![1u8, 2, 3].into();
        assert_eq!(v.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::copy_from_slice(b"a\nb");
        assert_eq!(format!("{b:?}"), "b\"a\\nb\"");
    }
}

//! Minimal, dependency-free shim for the subset of `parking_lot` that
//! the ssync workspace uses: a `RawMutex` with the adaptive
//! spin-then-park structure of glibc's adaptive `pthread_mutex`.
//!
//! The build container has no crates.io access, so this crate stands in
//! for the real `parking_lot`. The fast path is a compare-and-swap; on
//! contention the thread spins briefly and then blocks on a
//! condition-variable queue, so oversubscribed workloads (more threads
//! than cores) make progress without burning the holder's cycles —
//! exactly the behavioral contrast the paper draws between Pthread
//! mutexes and spinlocks.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Condvar, Mutex};

/// Raw-mutex trait, mirroring `parking_lot::lock_api::RawMutex`.
pub mod lock_api {
    /// A raw (guardless) mutual-exclusion primitive.
    pub trait RawMutex {
        /// An unlocked mutex, usable in `const` contexts.
        const INIT: Self;

        /// Acquires the mutex, blocking until it is available.
        fn lock(&self);

        /// Attempts to acquire the mutex without blocking.
        fn try_lock(&self) -> bool;

        /// Releases the mutex.
        ///
        /// # Safety
        ///
        /// The mutex must be held by the current context.
        unsafe fn unlock(&self);

        /// Whether the mutex is currently held by anyone.
        fn is_locked(&self) -> bool;
    }
}

const UNLOCKED: u8 = 0;
const LOCKED: u8 = 1;
/// Locked, with at least one thread parked in the slow path.
const CONTENDED: u8 = 2;

/// How many pause iterations to spin before parking.
const SPIN_LIMIT: u32 = 64;

/// Adaptive spin-then-park mutex (the `pthread_mutex` model).
pub struct RawMutex {
    state: AtomicU8,
    // Parking lot for the slow path. `std` Mutex/Condvar are
    // const-constructible, which keeps `INIT` a true constant.
    queue: Mutex<()>,
    wake: Condvar,
}

impl lock_api::RawMutex for RawMutex {
    const INIT: Self = Self {
        state: AtomicU8::new(UNLOCKED),
        queue: Mutex::new(()),
        wake: Condvar::new(),
    };

    fn lock(&self) {
        if self
            .state
            .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        self.lock_slow();
    }

    fn try_lock(&self) -> bool {
        self.state
            .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    unsafe fn unlock(&self) {
        if self.state.swap(UNLOCKED, Ordering::Release) == CONTENDED {
            // Someone is (or is about to be) parked: take the queue lock
            // so the wake cannot slip between a waiter's state check and
            // its wait, then signal one waiter.
            drop(self.queue.lock().unwrap_or_else(|e| e.into_inner()));
            self.wake.notify_one();
        }
    }

    fn is_locked(&self) -> bool {
        self.state.load(Ordering::Relaxed) != UNLOCKED
    }
}

impl RawMutex {
    #[cold]
    fn lock_slow(&self) {
        // Phase 1: optimistic bounded spin, like glibc's adaptive mutex.
        for _ in 0..SPIN_LIMIT {
            if self.state.load(Ordering::Relaxed) == UNLOCKED
                && self
                    .state
                    .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            std::hint::spin_loop();
        }
        // Phase 2: park. Mark the lock contended so the holder knows to
        // wake us; re-check under the queue lock to avoid a lost wakeup.
        let mut guard = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            // Try to go UNLOCKED -> CONTENDED (acquired, with waiters
            // possibly behind us) or LOCKED -> CONTENDED (still held,
            // but the holder will now wake someone on unlock).
            match self.state.swap(CONTENDED, Ordering::Acquire) {
                UNLOCKED => return,
                _ => {
                    guard = self.wake.wait(guard).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::lock_api::RawMutex as _;
    use super::RawMutex;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn lock_unlock_try_lock() {
        let m = RawMutex::INIT;
        assert!(!m.is_locked());
        m.lock();
        assert!(m.is_locked());
        assert!(!m.try_lock());
        unsafe { m.unlock() };
        assert!(m.try_lock());
        unsafe { m.unlock() };
    }

    #[test]
    fn oversubscribed_counter() {
        let m = Arc::new(RawMutex::INIT);
        let counter = Arc::new(AtomicU64::new(0));
        let threads = 16;
        let per = 1_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let m = m.clone();
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..per {
                        m.lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        unsafe { m.unlock() };
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), threads * per);
    }
}

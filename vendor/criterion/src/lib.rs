//! Minimal, dependency-free shim for the subset of the `criterion`
//! benchmark API that the ssync workspace uses.
//!
//! The build container has no crates.io access, so this crate stands in
//! for the real `criterion`. It implements honest (if statistically
//! unsophisticated) wall-clock measurement: per sample it times a batch
//! of iterations sized from a calibration pass, then reports the
//! minimum, median, and mean nanoseconds per iteration across samples.
//!
//! Supported surface: `Criterion::default()`, `sample_size`,
//! `warm_up_time`, `measurement_time`, `bench_function`,
//! `benchmark_group` (+ `finish`), `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros (both the plain and the
//! `name = ...; config = ...; targets = ...` forms).

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmark body.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(700),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// How long to warm up before measuring.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Target total measurement time across all samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (`group/bench` naming, like criterion).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(self.criterion, &full, &mut f);
        self
    }

    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f` back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, name: &str, f: &mut F) {
    // Calibrate: find a batch size that takes roughly 1/sample_size of
    // the measurement budget, warming up as we go.
    let warm_deadline = Instant::now() + c.warm_up_time;
    let mut iters = 1u64;
    loop {
        let t = time_batch(f, iters);
        let long_enough = t >= c.measurement_time / (c.sample_size as u32).max(1);
        if long_enough && Instant::now() >= warm_deadline {
            break;
        }
        if !long_enough {
            iters = iters.saturating_mul(2);
        }
    }

    let mut per_iter_ns: Vec<f64> = (0..c.sample_size)
        .map(|_| time_batch(f, iters).as_nanos() as f64 / iters as f64)
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_ns[0];
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "{name:<44} min {min:>10.1} ns  median {median:>10.1} ns  mean {mean:>10.1} ns  ({} samples x {iters} iters)",
        per_iter_ns.len(),
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }
}

//! A miniature Memcached session: the `ssync-kv` store under concurrent
//! writers, with lock-algorithm selection — the paper's Section 6.4
//! experiment as a library user would run it.
//!
//! Run with: `cargo run --example kv_server`

use std::sync::atomic::Ordering;

use ssync::kv::KvStore;
use ssync::locks::{McsLock, TicketLock};

fn drive<R: ssync::locks::RawLock + Default>(kv: &KvStore<R>, name: &str) {
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        // Writers: the set-only test.
        for t in 0..3u32 {
            let kv = &kv;
            s.spawn(move || {
                for i in 0..2_000u32 {
                    let key = format!("user:{t}:{i}");
                    kv.set(key.as_bytes(), format!("profile-{i}").into_bytes());
                }
            });
        }
        // A reader mixing in gets.
        s.spawn(|| {
            for i in 0..2_000u32 {
                let key = format!("user:0:{i}");
                let _ = kv.get(key.as_bytes());
            }
        });
    });
    let elapsed = start.elapsed();
    println!(
        "{name:>8}: {} items, {} sets, {} maintenance passes, {:?}",
        kv.len(),
        kv.stats().sets.load(Ordering::Relaxed),
        kv.stats().maintenance_runs.load(Ordering::Relaxed),
        elapsed
    );
}

fn main() {
    println!("memcached-model KV store, 3 writers + 1 reader, 6000 sets:");
    let ticket: KvStore<TicketLock> = KvStore::new(1024, 64);
    drive(&ticket, "TICKET");
    let mcs: KvStore<McsLock> = KvStore::new(1024, 64);
    drive(&mcs, "MCS");

    // The CAS (version) interface, as memcached's `cas` command.
    let kv: KvStore<TicketLock> = KvStore::new(64, 8);
    let v1 = kv.set(b"config", b"v1".as_slice());
    match kv.cas(b"config", b"v2".as_slice(), v1) {
        Ok(v2) => println!("cas ok: version {v1} -> {v2}"),
        Err(v) => println!("cas lost to version {v}"),
    }
    // A stale CAS is rejected.
    assert!(kv.cas(b"config", b"v3".as_slice(), v1).is_err());
    println!("stale cas correctly rejected");
}

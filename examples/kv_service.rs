//! The sharded KV service end to end: per-shard server threads over
//! `ssync-mp` channels, shard routing over `ssync-kv` stores, and the
//! deterministic workload engine driving it — the serving layer the
//! paper's Section 6.4 Memcached experiment points toward.
//!
//! Run with: `cargo run --release --example kv_service`

use ssync::locks::{McsLock, TicketLock};
use ssync::srv::router::ShardRouter;
use ssync::srv::service::{serve, wire_mesh};
use ssync::srv::workload::{run_closed_loop_on, KeyDist, Mix, Transport, ValueSize, WorkloadSpec};

fn bench<R: ssync::locks::RawLock + Default>(name: &str, mix: Mix, transport: Transport) {
    let router: ShardRouter<R> = ShardRouter::new(4, 256, 16);
    let spec = WorkloadSpec {
        keys: 1024,
        dist: KeyDist::Zipfian { theta: 0.99 },
        mix,
        vsize: ValueSize::Uniform { min: 16, max: 64 },
        batch: 1,
        seed: 7,
    };
    let workers = ssync::core::cores::test_threads(4);
    let report = run_closed_loop_on(&router, &spec, workers, 2_000, transport);
    println!(
        "{name:>8} {:>7} {:>7}: {:>8.0} ops/s, hit rate {:>5.1}%, {} maintenance passes",
        mix.name,
        transport.label(),
        report.ops_per_sec(),
        report.hit_rate() * 100.0,
        report.store.maintenance_runs
    );
}

fn main() {
    // Manual requests first: one client, two shards, TICKET locks.
    let router: ShardRouter<TicketLock> = ShardRouter::new(2, 64, 8);
    let (endpoints, mut clients) = wire_mesh(router.num_shards(), 1);
    std::thread::scope(|s| {
        for (shard, endpoint) in endpoints.into_iter().enumerate() {
            let store = router.shard(shard);
            s.spawn(move || serve(store, endpoint));
        }
        let client = clients.pop().unwrap();
        let v1 = client
            .set(1, b"profile:alice".to_vec())
            .expect("wire error");
        println!("set key 1 at version {v1}");
        let (_, value) = client.get(1).expect("wire error").unwrap();
        println!("get key 1 -> {:?}", String::from_utf8_lossy(&value));
        match client
            .cas(1, b"profile:alice-v2".to_vec(), v1)
            .expect("wire error")
        {
            Ok(v2) => println!("cas won: version {v1} -> {v2}"),
            Err(v) => println!("cas lost to version {v}"),
        }
        let results = client.get_many(&[1, 2, 3]).expect("wire error");
        println!(
            "multi-get [1,2,3] -> {} hit(s), {} miss(es)",
            results.iter().filter(|r| r.is_some()).count(),
            results.iter().filter(|r| r.is_none()).count()
        );
        client.close();
    });

    // Then the workload engine over two lock algorithms and both
    // transports: the one-line channels are the paper's calibrated
    // model, the rings pipeline reads and amortize scheduler handoffs
    // (the stores read through the optimistic fast path either way).
    let ring = Transport::Ring {
        depth: 64,
        window: 16,
    };
    println!("\nclosed-loop YCSB over 4 shards, zipf 0.99:");
    bench::<TicketLock>("TICKET", Mix::YCSB_B, Transport::OneLine);
    bench::<TicketLock>("TICKET", Mix::YCSB_B, ring);
    bench::<TicketLock>("TICKET", Mix::YCSB_A, Transport::OneLine);
    bench::<TicketLock>("TICKET", Mix::YCSB_A, ring);
    bench::<McsLock>("MCS", Mix::YCSB_B, Transport::OneLine);
    bench::<McsLock>("MCS", Mix::YCSB_B, ring);
}

//! The replicated KV service end to end: node-symmetric replication
//! groups over `ssync-mp` ring channels, replica reads with freshness
//! floors, sync vs async acknowledgement, a deterministic backup crash
//! that catches up from the op-log, and a deterministic *leader* crash
//! the client rides through while the shard fails over under a bumped
//! term.
//!
//! Run with: `cargo run --release --example replicated_kv`

use ssync::locks::TicketLock;
use ssync::repl::fault::{FaultEvent, FaultKind, FaultPlan, FaultSpec};
use ssync::repl::service::{repl_mesh, serve_node, NodeConfig, ReplCluster, ReplSpec};
use ssync::repl::workload::run_replicated_closed_loop;
use ssync::srv::workload::{KeyDist, Mix, ValueSize, WorkloadSpec};

/// Spawns every node of every shard with the given per-node fault
/// plans, runs `body` with the clients, and returns after the scope
/// drains. `plans(shard, node)` supplies `(backup_plan, crash_plan)`.
fn with_nodes<F>(
    cluster: &ReplCluster<TicketLock>,
    clients: usize,
    plans: impl Fn(usize, usize) -> (FaultPlan, FaultPlan) + Copy,
    body: F,
) where
    F: FnOnce(Vec<ssync::repl::ReplClient>) + Send,
{
    let map = cluster.map().clone();
    let (endpoints, repl_clients) = repl_mesh(&map, clients);
    std::thread::scope(|s| {
        let map = &map;
        for (shard, shard_eps) in endpoints.into_iter().enumerate() {
            for endpoint in shard_eps {
                let node = endpoint.node();
                let store = cluster.node_store(shard, node);
                let log = cluster.log(shard).clone();
                let (backup_plan, crash_plan) = plans(shard, node);
                let cfg = NodeConfig {
                    shard,
                    mode: cluster.spec().mode,
                    initial_hwm: cluster.preload_hwm(shard),
                    backup_plan,
                    crash_plan,
                };
                s.spawn(move || serve_node(store, &log, map, endpoint, cfg));
            }
        }
        body(repl_clients);
    });
}

fn main() {
    // --- Manual requests first: 1 shard, 2 backups, sync mode. ---
    let mut cluster: ReplCluster<TicketLock> = ReplCluster::new(1, 64, 8, ReplSpec::sync(2));
    cluster.preload(1, b"seed");
    with_nodes(
        &cluster,
        1,
        |_, _| (FaultPlan::none(), FaultPlan::none()),
        |mut clients| {
            let client = clients.pop().unwrap();
            let v = client
                .set(1, b"profile:alice".to_vec())
                .expect("wire error");
            println!("set key 1 at version {v} (sync: both backups acked first)");
            // Round-robin sends this read to a backup; sync mode means
            // it sees the write anyway, and the freshness floor would
            // bounce it to the leader if it didn't.
            let (version, value) = client.get(1).expect("wire error").unwrap();
            println!(
                "get key 1 -> {:?} at v{version}, served by a backup ({} backup reads, {} fallbacks)",
                String::from_utf8_lossy(&value),
                client.replica_serves(),
                client.fallbacks(),
            );
            client.close();
        },
    );
    println!("converged: {}\n", cluster.converged());

    // --- A deterministic backup crash: node 1 loses two writes on the
    // wire, reboots, and replays them from the leader's op-log. ---
    let mut cluster: ReplCluster<TicketLock> =
        ReplCluster::new(1, 64, 8, ReplSpec::async_bounded(1));
    cluster.preload(7, b"seed");
    let backup_crash = FaultPlan::from_events(vec![FaultEvent {
        at_entry: 2,
        kind: FaultKind::Crash,
        window: 2,
    }]);
    with_nodes(
        &cluster,
        1,
        |_, node| {
            let backup = if node == 1 {
                backup_crash.clone()
            } else {
                FaultPlan::none()
            };
            (backup, FaultPlan::none())
        },
        |mut clients| {
            let client = clients.pop().unwrap();
            for key in 10..14u64 {
                client.set(key, vec![key as u8; 8]).expect("wire error");
            }
            client.close();
        },
    );
    println!(
        "async + backup crash: converged after op-log replay: {}\n",
        cluster.converged()
    );

    // --- A deterministic LEADER crash: the seed leader dies right
    // after acknowledging its second write; the most caught-up backup
    // bumps the term, replays its log tail, and the same client keeps
    // going — retry and redirects hide the window. ---
    let mut cluster: ReplCluster<TicketLock> = ReplCluster::new(1, 64, 8, ReplSpec::sync(2));
    cluster.preload(1, b"seed");
    let leader_crash = FaultPlan::primary_crashes(vec![2]);
    with_nodes(
        &cluster,
        1,
        |_, _| (FaultPlan::none(), leader_crash.clone()),
        |mut clients| {
            let client = clients.pop().unwrap();
            for key in 20..25u64 {
                // Write 2 kills the leader after it acknowledges; the
                // next write stalls until the failover lands, then
                // retries against the new leader.
                client.set(key, vec![key as u8; 8]).expect("wire error");
            }
            let (_, value) = client.get(22).expect("wire error").unwrap();
            println!(
                "rode through the failover: key 22 -> {:?} ({} redirects chased)",
                value,
                client.redirects(),
            );
            client.close();
        },
    );
    let view = cluster.map().view(0);
    for rec in cluster.map().failover_records(0) {
        println!(
            "failover: node {} -> node {} opened term {} after {:?} unavailable",
            rec.from, rec.to, rec.term, rec.unavailable
        );
    }
    println!(
        "leader crash: term {} led by node {:?}, converged: {}\n",
        view.term,
        view.leader,
        cluster.converged()
    );

    // --- The closed-loop driver: replica reads scale a read-heavy
    // zipfian mix (wide batches bulk-read from backups). ---
    println!("YCSB-C zipf 0.99, batch 24, async, 2 shards:");
    for replicas in [0usize, 1, 2] {
        let mut cluster: ReplCluster<TicketLock> =
            ReplCluster::new(2, 256, 16, ReplSpec::async_bounded(replicas));
        let spec = WorkloadSpec {
            keys: 1024,
            dist: KeyDist::Zipfian { theta: 0.99 },
            mix: Mix::YCSB_C,
            vsize: ValueSize::Uniform { min: 16, max: 64 },
            batch: 24,
            seed: 7,
        };
        let workers = ssync::core::cores::test_threads(2);
        let report =
            run_replicated_closed_loop(&mut cluster, &spec, workers, 2_500, &FaultSpec::none());
        println!(
            "  {replicas} replicas: {:>8.0} ops/s ({} reads served by backups), converged: {}",
            report.ops_per_sec(),
            report.replica_serves,
            report.converged
        );
    }
}

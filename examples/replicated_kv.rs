//! The replicated KV service end to end: primary/backup groups over
//! `ssync-mp` ring channels, replica reads with freshness floors, sync
//! vs async acknowledgement, and a deterministic crash that catches up
//! from the op-log.
//!
//! Run with: `cargo run --release --example replicated_kv`

use ssync::locks::TicketLock;
use ssync::repl::fault::{FaultEvent, FaultKind, FaultPlan, FaultSpec};
use ssync::repl::service::{repl_mesh, serve_primary, serve_replica, ReplCluster, ReplSpec};
use ssync::repl::workload::run_replicated_closed_loop;
use ssync::srv::workload::{KeyDist, Mix, ValueSize, WorkloadSpec};

fn main() {
    // --- Manual requests first: 1 shard, 2 backups, sync mode. ---
    let mut cluster: ReplCluster<TicketLock> = ReplCluster::new(1, 64, 8, ReplSpec::sync(2));
    cluster.preload(1, b"seed");
    let (mut primaries, mut backups, mut clients) = repl_mesh(1, 2, 1);
    std::thread::scope(|s| {
        let mode = cluster.spec().mode;
        let hwm = cluster.preload_hwm(0);
        let primary = primaries.pop().unwrap();
        let store = cluster.primary().shard(0);
        let log = cluster.log(0).clone();
        s.spawn(move || serve_primary(store, &log, primary, mode, hwm));
        for (r, endpoint) in backups.pop().unwrap().into_iter().enumerate() {
            let store = cluster.replica_set(r).shard(0);
            let log = cluster.log(0).clone();
            s.spawn(move || serve_replica(store, &log, endpoint, &FaultPlan::none(), hwm));
        }
        let client = clients.pop().unwrap();
        let v = client
            .set(1, b"profile:alice".to_vec())
            .expect("wire error");
        println!("set key 1 at version {v} (sync: both backups acked first)");
        // Round-robin sends this read to a backup; sync mode means it
        // sees the write anyway, and the freshness floor would bounce
        // it to the primary if it didn't.
        let (version, value) = client.get(1).expect("wire error").unwrap();
        println!(
            "get key 1 -> {:?} at v{version}, served by a backup ({} backup reads, {} fallbacks)",
            String::from_utf8_lossy(&value),
            client.replica_serves(),
            client.fallbacks(),
        );
        client.close();
    });
    println!("converged: {}\n", cluster.converged());

    // --- A deterministic crash: the backup loses two writes on the
    // wire, reboots, and replays them from the primary's op-log. ---
    let mut cluster: ReplCluster<TicketLock> =
        ReplCluster::new(1, 64, 8, ReplSpec::async_bounded(1));
    cluster.preload(7, b"seed");
    let (mut primaries, mut backups, mut clients) = repl_mesh(1, 1, 1);
    let plan = FaultPlan::from_events(vec![FaultEvent {
        at_entry: 2,
        kind: FaultKind::Crash,
        window: 2,
    }]);
    std::thread::scope(|s| {
        let mode = cluster.spec().mode;
        let hwm = cluster.preload_hwm(0);
        let primary = primaries.pop().unwrap();
        let store = cluster.primary().shard(0);
        let log = cluster.log(0).clone();
        s.spawn(move || serve_primary(store, &log, primary, mode, hwm));
        let endpoint = backups.pop().unwrap().pop().unwrap();
        let rstore = cluster.replica_set(0).shard(0);
        let rlog = cluster.log(0).clone();
        let handle = s.spawn(move || serve_replica(rstore, &rlog, endpoint, &plan, hwm));
        let client = clients.pop().unwrap();
        for key in 10..14u64 {
            client.set(key, vec![key as u8; 8]).expect("wire error");
        }
        client.close();
        let report = handle.join().unwrap();
        println!(
            "async + crash: {} applied live, {} lost on the wire and replayed from the op-log",
            report.applied, report.from_log
        );
    });
    println!("converged after crash: {}\n", cluster.converged());

    // --- The closed-loop driver: replica reads scale a read-heavy
    // zipfian mix (wide batches bulk-read from backups). ---
    println!("YCSB-C zipf 0.99, batch 24, async, 2 shards:");
    for replicas in [0usize, 1, 2] {
        let mut cluster: ReplCluster<TicketLock> =
            ReplCluster::new(2, 256, 16, ReplSpec::async_bounded(replicas));
        let spec = WorkloadSpec {
            keys: 1024,
            dist: KeyDist::Zipfian { theta: 0.99 },
            mix: Mix::YCSB_C,
            vsize: ValueSize::Uniform { min: 16, max: 64 },
            batch: 24,
            seed: 7,
        };
        let workers = ssync::core::cores::test_threads(2);
        let report =
            run_replicated_closed_loop(&mut cluster, &spec, workers, 2_500, &FaultSpec::none());
        println!(
            "  {replicas} replicas: {:>8.0} ops/s ({} reads served by backups), converged: {}",
            report.ops_per_sec(),
            report.replica_serves,
            report.converged
        );
    }
}

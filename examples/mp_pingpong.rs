//! Message passing as a synchronization alternative: a client-server
//! counter service over `libssmp`-style channels, compared with a
//! lock-based counter — the paper's "message passing shines when
//! contention is very high" trade-off, on real threads.
//!
//! Run with: `cargo run --release --example mp_pingpong`

use std::time::Instant;

use ssync::locks::{Lock, TicketLock};
use ssync::mp::channel::channel;
use ssync::mp::hub::ServerHub;

const OPS_PER_CLIENT: u64 = 20_000;
const CLIENTS: usize = 3;

fn main() {
    // --- Lock-based: every client CASes on the same protected counter.
    let counter = Lock::<u64, TicketLock>::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            s.spawn(|| {
                for _ in 0..OPS_PER_CLIENT {
                    *counter.lock() += 1;
                }
            });
        }
    });
    let lock_time = start.elapsed();
    println!(
        "lock-based counter:    {} increments in {lock_time:?}",
        *counter.lock()
    );

    // --- Message-passing: one server owns the counter; clients send
    //     increment requests and block on the reply (round trips).
    let mut server_req = Vec::new();
    let mut server_rep = Vec::new();
    let mut clients = Vec::new();
    for _ in 0..CLIENTS {
        let (req_tx, req_rx) = channel();
        let (rep_tx, rep_rx) = channel();
        server_req.push(req_rx);
        server_rep.push(rep_tx);
        clients.push((req_tx, rep_rx));
    }
    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut hub = ServerHub::new(server_req);
            let mut counter = 0u64;
            let mut done = 0;
            while done < CLIENTS {
                let (client, msg) = hub.recv_from_any();
                if msg[0] == 0 {
                    done += 1;
                    continue;
                }
                counter += 1;
                server_rep[client].send([counter, 0, 0, 0, 0, 0, 0]);
            }
            println!("server-owned counter:  {counter} increments (no lock taken)");
        });
        for (req, rep) in clients {
            s.spawn(move || {
                for _ in 0..OPS_PER_CLIENT {
                    req.send([1, 0, 0, 0, 0, 0, 0]);
                    let _ = rep.recv();
                }
                req.send([0, 0, 0, 0, 0, 0, 0]); // done marker
            });
        }
    });
    println!("message-passing time:  {:?}", start.elapsed());
    println!();
    println!("on a box with more cores than this one, the server saturates at a");
    println!("fixed ceiling (Figure 10) but never collapses — while the lock's");
    println!("cost per op grows with contention (Figure 5).");
}

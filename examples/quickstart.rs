//! Quickstart: the three layers of SSYNC-RS in one file.
//!
//! 1. Pick a lock algorithm and protect data with it.
//! 2. Exchange messages over `libssmp`-style cache-line channels.
//! 3. Replay a paper experiment on the simulated hardware.
//!
//! Run with: `cargo run --example quickstart`

use ssync::core::Platform;
use ssync::locks::{Lock, McsLock, TicketLock};
use ssync::mp::channel::channel;

fn main() {
    // --- 1. Locks: same interface, nine algorithms. -------------------
    let counter = Lock::<u64, TicketLock>::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..10_000 {
                    *counter.lock() += 1;
                }
            });
        }
    });
    println!("ticket-lock counter: {}", *counter.lock());

    let names = Lock::<Vec<&str>, McsLock>::new(Vec::new());
    names.lock().push("mcs works too");
    println!("mcs-protected vec: {:?}", *names.lock());

    // --- 2. Message passing: one cache line per message. --------------
    let (tx, rx) = channel();
    std::thread::scope(|s| {
        s.spawn(move || {
            for i in 0..3 {
                tx.send([i, i * 10, 0, 0, 0, 0, 0]);
            }
        });
        for _ in 0..3 {
            let msg = rx.recv();
            println!("message: key={} value={}", msg[0], msg[1]);
        }
    });

    // --- 3. The simulator: what would this cost on a 48-core Opteron? -
    let lat = ssync::ccbench::drivers::uncontested_latency(
        Platform::Opteron,
        ssync::simsync::locks::SimLockKind::Ticket,
        36, // previous holder two hops away
    );
    println!("simulated cross-socket ticket handoff: ~{lat:.0} cycles");
    let lat_local = ssync::ccbench::drivers::uncontested_latency(
        Platform::Opteron,
        ssync::simsync::locks::SimLockKind::Ticket,
        1, // previous holder on the same die
    );
    println!("simulated same-die ticket handoff:     ~{lat_local:.0} cycles");
    println!("(crossing sockets is a killer — the paper's first observation)");
}

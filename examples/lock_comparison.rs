//! Compare all nine lock algorithms on this machine and on a simulated
//! many-core — the paper's "every lock has its fifteen minutes of fame"
//! in miniature.
//!
//! Run with: `cargo run --release --example lock_comparison`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ssync::ccbench::drivers::lock_mops;
use ssync::core::Platform;
use ssync::locks::{AnyLock, LockKind, RawLock};
use ssync::simsync::locks::SimLockKind;

fn native_throughput(kind: LockKind, threads: usize, millis: u64) -> f64 {
    let lock = Arc::new(AnyLock::new(kind, 1));
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    let start = Instant::now();
    for _ in 0..threads {
        let lock = Arc::clone(&lock);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut ops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let token = lock.lock();
                std::hint::black_box(&lock);
                lock.unlock(token);
                ops += 1;
                std::thread::yield_now();
            }
            ops
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(millis));
    stop.store(true, Ordering::Relaxed);
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    total as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    println!("== native (this machine, 2 threads, real atomics) ==");
    for kind in LockKind::ALL {
        let mops = native_throughput(kind, 2, 100);
        println!("{:>8}: {mops:>7.2} Mops/s", kind.name());
    }

    println!();
    println!("== simulated 80-core Xeon, 1 highly contended lock ==");
    for kind in SimLockKind::ALL {
        let m1 = lock_mops(Platform::Xeon, kind, 1, 1);
        let m40 = lock_mops(Platform::Xeon, kind, 40, 1);
        println!(
            "{:>8}: 1 thread {m1:>6.2} Mops/s | 40 threads {m40:>6.2} Mops/s",
            kind.name()
        );
    }
    println!();
    println!("note the paper's shape: simple locks win uncontested,");
    println!("queue/hierarchical locks resist contention collapse.");
}

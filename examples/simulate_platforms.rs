//! Tour the four simulated platforms: run the same contended-counter
//! program everywhere and watch the hardware decide the outcome — the
//! paper's thesis ("scalability of synchronization is mainly a property
//! of the hardware") as a five-minute demo.
//!
//! Run with: `cargo run --release --example simulate_platforms`

use ssync::core::Platform;
use ssync::sim::program::{Action, Env, Program};
use ssync::sim::Sim;

/// Each thread fetch-and-increments a shared line, then does a little
/// local work.
struct Incrementer {
    line: ssync::sim::LineId,
    st: u8,
}

impl Program for Incrementer {
    fn step(&mut self, _result: Option<u64>, env: &mut Env<'_>) -> Action {
        match self.st {
            0 => {
                self.st = 1;
                Action::Fai(self.line)
            }
            _ => {
                self.st = 0;
                env.complete_op();
                Action::Pause(200)
            }
        }
    }
}

fn main() {
    println!("one shared counter, fetch-and-increment + 200 cycles local work");
    println!(
        "{:>10} {:>14} {:>14} {:>10}",
        "platform", "1 thread", "max threads", "ratio"
    );
    for p in Platform::ALL {
        let run = |threads: usize| {
            let mut sim = Sim::new(p, 1);
            let cores = sim.topology().placement(threads);
            let line = sim.alloc_line_for_core(cores[0]);
            for &c in &cores {
                sim.spawn_on_core(c, Box::new(Incrementer { line, st: 0 }));
            }
            sim.run_until(500_000);
            sim.topology().mops(sim.total_ops(), 500_000)
        };
        let one = run(1);
        let all = run(p.topology().num_cores());
        println!(
            "{:>10} {one:>10.1} M/s {all:>10.1} M/s {:>9.2}x",
            p.name(),
            all / one
        );
    }
    println!();
    println!("multi-sockets (Opteron, Xeon) collapse under cross-socket traffic;");
    println!("single-sockets (Niagara, Tilera) plateau — Figure 4 in miniature.");
}

//! Model-checked interleavings of the *real* `Histogram` record and
//! snapshot paths.
//!
//! Compiled only under `RUSTFLAGS='--cfg ssync_chk'`: the stats
//! module's bucket counters then resolve to `ssync-chk` shadow atomics
//! and the checker enumerates thread interleavings exhaustively up to
//! the preemption bound. These tests drive the actual
//! `ssync_core::Histogram` — the single-increment record path and the
//! relaxed bucket-by-bucket snapshot — not a re-modelled copy.
//!
//! Run with:
//! `RUSTFLAGS='--cfg ssync_chk' cargo test -p ssync-core --test chk_models`
#![cfg(ssync_chk)]

use std::sync::atomic::{AtomicU64 as RealAtomicU64, Ordering as RealOrdering};
use std::sync::Arc;

use ssync_chk::{thread, Builder};
use ssync_core::Histogram;

/// A snapshot racing two concurrent recorders must observe a
/// *plausible* intermediate state — only values that were actually
/// recorded, never a torn or phantom count — and after both recorders
/// join, every increment must be present (relaxed RMWs may race but
/// can never lose an update). The cross-execution counter proves the
/// checker really explored mid-record snapshots, not just the
/// before/after ones.
#[test]
fn histogram_snapshot_races_recorders_without_losing_counts() {
    let partial_snaps = Arc::new(RealAtomicU64::new(0));
    let partial_snaps2 = Arc::clone(&partial_snaps);
    // A single snapshot scan is ~HIST_BUCKETS shadow loads, so the
    // default 2 000-step budget (sized for lock/ring models) is far too
    // small here; the branching still collapses to the few shared
    // buckets, only the straight-line step count grows.
    let report = Builder::new().with_max_steps(64_000).check(move || {
        let h = Arc::new(Histogram::new());
        // Two recorders: one lands in the exact region (3 < 32), one in
        // the log-bucketed region, and both also hit a *shared* bucket
        // (17) — the lost-update hazard a relaxed fetch_add must survive.
        let a = {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                h.record(3);
                h.record(17);
            })
        };
        let b = {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                h.record(100);
                h.record(17);
            })
        };
        let mid = h.snapshot();
        let seen = mid.count();
        assert!(seen <= 4, "snapshot invented counts: {seen}");
        // Whatever the snapshot caught must be one of the recorded
        // values; the quantile walk over a partial snapshot stays
        // coherent (no panic, no out-of-range representative).
        if let Some(max) = mid.max() {
            assert!(max <= 104, "phantom value in mid-race snapshot: {max}");
        }
        if seen > 0 && seen < 4 {
            partial_snaps2.fetch_add(1, RealOrdering::Relaxed);
        }
        a.join();
        b.join();
        let fin = h.snapshot();
        assert_eq!(fin.count(), 4, "a relaxed increment was lost");
        // Nearest-rank spot checks: the low end is the exact bucket 3,
        // the top is 100's bucket (within the 1/32 relative error).
        assert_eq!(fin.quantile(0.25), Some(3));
        let top = fin.max().expect("four samples recorded");
        assert!((100..=104).contains(&top), "top bucket drifted: {top}");
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    assert!(
        partial_snaps.load(RealOrdering::Relaxed) > 0,
        "no explored interleaving snapshotted mid-record ({} executions)",
        report.executions
    );
    eprintln!(
        "histogram record/snapshot model: {} executions",
        report.executions
    );
}

/// Merging a histogram that another thread is still recording into:
/// the merge reads each source bucket once (relaxed), so it must land
/// on a subset of the final counts, and the source itself loses
/// nothing. This is the scrape-while-serving shape — a `Stats` reply
/// assembling its payload while request threads keep recording.
#[test]
fn merge_from_a_live_histogram_takes_a_coherent_subset() {
    let report = Builder::new().with_max_steps(64_000).check(|| {
        let src = Arc::new(Histogram::new());
        src.record(5);
        let recorder = {
            let src = Arc::clone(&src);
            thread::spawn(move || src.record(5))
        };
        let dst = Histogram::new();
        dst.merge(&src);
        let merged = dst.snapshot().count();
        assert!(
            merged == 1 || merged == 2,
            "merge saw {merged} counts, expected the pre-recorded 1 or both"
        );
        recorder.join();
        assert_eq!(src.snapshot().count(), 2, "merge must not drain the source");
        assert_eq!(src.quantile(1.0), Some(5));
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("histogram merge model: {} executions", report.executions);
}

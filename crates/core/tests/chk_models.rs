//! Model-checked interleavings of the *real* `Histogram` record and
//! snapshot paths, and of the epoch-reclamation grace period.
//!
//! Compiled only under `RUSTFLAGS='--cfg ssync_chk'`: the stats
//! module's bucket counters and the epoch module's pin records then
//! resolve to `ssync-chk` shadow atomics and the checker enumerates
//! thread interleavings exhaustively up to the preemption bound. These
//! tests drive the actual `ssync_core::Histogram` and
//! `ssync_core::epoch` code — not a re-modelled copy.
//!
//! Run with:
//! `RUSTFLAGS='--cfg ssync_chk' cargo test -p ssync-core --test chk_models`
#![cfg(ssync_chk)]

use std::sync::atomic::{AtomicU64 as RealAtomicU64, Ordering as RealOrdering};
use std::sync::Arc;

use ssync_chk::{thread, Builder};
use ssync_core::epoch::{EpochBags, EpochDomain};
use ssync_core::sync::atomic::{AtomicU64, Ordering};
use ssync_core::Histogram;

/// A snapshot racing two concurrent recorders must observe a
/// *plausible* intermediate state — only values that were actually
/// recorded, never a torn or phantom count — and after both recorders
/// join, every increment must be present (relaxed RMWs may race but
/// can never lose an update). The cross-execution counter proves the
/// checker really explored mid-record snapshots, not just the
/// before/after ones.
#[test]
fn histogram_snapshot_races_recorders_without_losing_counts() {
    let partial_snaps = Arc::new(RealAtomicU64::new(0));
    let partial_snaps2 = Arc::clone(&partial_snaps);
    // A single snapshot scan is ~HIST_BUCKETS shadow loads, so the
    // default 2 000-step budget (sized for lock/ring models) is far too
    // small here; the branching still collapses to the few shared
    // buckets, only the straight-line step count grows.
    let report = Builder::new().with_max_steps(64_000).check(move || {
        let h = Arc::new(Histogram::new());
        // Two recorders: one lands in the exact region (3 < 32), one in
        // the log-bucketed region, and both also hit a *shared* bucket
        // (17) — the lost-update hazard a relaxed fetch_add must survive.
        let a = {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                h.record(3);
                h.record(17);
            })
        };
        let b = {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                h.record(100);
                h.record(17);
            })
        };
        let mid = h.snapshot();
        let seen = mid.count();
        assert!(seen <= 4, "snapshot invented counts: {seen}");
        // Whatever the snapshot caught must be one of the recorded
        // values; the quantile walk over a partial snapshot stays
        // coherent (no panic, no out-of-range representative).
        if let Some(max) = mid.max() {
            assert!(max <= 104, "phantom value in mid-race snapshot: {max}");
        }
        if seen > 0 && seen < 4 {
            partial_snaps2.fetch_add(1, RealOrdering::Relaxed);
        }
        a.join();
        b.join();
        let fin = h.snapshot();
        assert_eq!(fin.count(), 4, "a relaxed increment was lost");
        // Nearest-rank spot checks: the low end is the exact bucket 3,
        // the top is 100's bucket (within the 1/32 relative error).
        assert_eq!(fin.quantile(0.25), Some(3));
        let top = fin.max().expect("four samples recorded");
        assert!((100..=104).contains(&top), "top bucket drifted: {top}");
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    assert!(
        partial_snaps.load(RealOrdering::Relaxed) > 0,
        "no explored interleaving snapshotted mid-record ({} executions)",
        report.executions
    );
    eprintln!(
        "histogram record/snapshot model: {} executions",
        report.executions
    );
}

/// Merging a histogram that another thread is still recording into:
/// the merge reads each source bucket once (relaxed), so it must land
/// on a subset of the final counts, and the source itself loses
/// nothing. This is the scrape-while-serving shape — a `Stats` reply
/// assembling its payload while request threads keep recording.
#[test]
fn merge_from_a_live_histogram_takes_a_coherent_subset() {
    let report = Builder::new().with_max_steps(64_000).check(|| {
        let src = Arc::new(Histogram::new());
        src.record(5);
        let recorder = {
            let src = Arc::clone(&src);
            thread::spawn(move || src.record(5))
        };
        let dst = Histogram::new();
        dst.merge(&src);
        let merged = dst.snapshot().count();
        assert!(
            merged == 1 || merged == 2,
            "merge saw {merged} counts, expected the pre-recorded 1 or both"
        );
        recorder.join();
        assert_eq!(src.snapshot().count(), 2, "merge must not drain the source");
        assert_eq!(src.quantile(1.0), Some(5));
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("histogram merge model: {} executions", report.executions);
}

/// "Freed" marker for the epoch models: the collector's free closure
/// stores this into the node instead of deallocating, so a broken
/// grace period shows up as a readable wrong value (a model violation)
/// rather than real undefined behavior.
const POISON: u64 = u64::MAX;

/// The grace-period invariant on the real `EpochDomain`/`EpochBags`
/// protocol: a reader that pins before reaching a node can never
/// observe that node freed, no matter how the unlink, retirement,
/// epoch advances, and collection sweeps interleave with it.
///
/// The model mirrors the store's shapes exactly: `published` is the
/// chain link (1 while the node is reachable), the writer unlinks with
/// a Release store, commits it with an RMW flush (kv's backlog bump),
/// tags the retirement with a SeqCst read of the global epoch, and
/// then runs bounded advance-and-collect passes — the amortized
/// maintenance loop. While the reader is pinned the second advance is
/// fenced, so the node outlives every pass; what the passes could not
/// free, the post-join drain must.
fn pinned_reader_blocks_collection_model(weak: bool) {
    let concurrent_frees = Arc::new(RealAtomicU64::new(0));
    let frees2 = Arc::clone(&concurrent_frees);
    let pinned_reads = Arc::new(RealAtomicU64::new(0));
    let reads2 = Arc::clone(&pinned_reads);
    let report = Builder::new()
        .with_weak_memory(weak)
        .with_max_steps(64_000)
        // Bound 4, matching `collecting_one_epoch_early_is_found`: the
        // seeded-bug twin needs 4 preemptions to surface its
        // use-after-free, so the clean models must explore at least as
        // deep for their "no violation" verdict to cover that schedule.
        .with_preemption_bound(4)
        .check(move || {
            let domain = Arc::new(EpochDomain::new());
            let node = Arc::new(AtomicU64::new(42));
            let published = Arc::new(AtomicU64::new(1));
            let flush = Arc::new(AtomicU64::new(0));
            let reader = {
                let domain = Arc::clone(&domain);
                let node = Arc::clone(&node);
                let published = Arc::clone(&published);
                let reads = Arc::clone(&reads2);
                thread::spawn(move || {
                    let _pin = domain.pin().expect("fresh domain has free slots");
                    // A reader can only reach the node through the
                    // link; once unlinked, new pinned readers miss it —
                    // only a reader that saw it published may touch it.
                    if published.load(Ordering::Acquire) == 1 {
                        let v = node.load(Ordering::Acquire);
                        assert_ne!(v, POISON, "node freed under a pinned reader");
                        assert_eq!(v, 42, "torn node under a pinned reader");
                        reads.fetch_add(1, RealOrdering::Relaxed);
                    }
                })
            };
            // Writer/collector: unlink, flush, retire at the current
            // epoch, then bounded advance-and-collect passes.
            let mut bags: EpochBags<Arc<AtomicU64>> = EpochBags::new();
            published.store(0, Ordering::Release);
            flush.fetch_add(1, Ordering::SeqCst);
            let tag = domain.epoch_sc();
            let mut freed = 0;
            freed += bags.retire(Arc::clone(&node), tag, |n| {
                n.store(POISON, Ordering::SeqCst);
            });
            for _ in 0..4 {
                domain.try_advance();
                freed += bags.collect(domain.epoch(), |n| {
                    n.store(POISON, Ordering::SeqCst);
                });
                if freed > 0 {
                    break;
                }
            }
            if freed > 0 {
                frees2.fetch_add(1, RealOrdering::Relaxed);
            }
            reader.join();
            freed += bags.drain_all(|n| {
                n.store(POISON, Ordering::SeqCst);
            });
            assert_eq!(freed, 1, "the one retired node is freed exactly once");
            assert_eq!(node.load(Ordering::Acquire), POISON);
        });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    assert!(
        concurrent_frees.load(RealOrdering::Relaxed) > 0,
        "no explored interleaving freed concurrently with the reader \
         ({} executions)",
        report.executions
    );
    assert!(
        pinned_reads.load(RealOrdering::Relaxed) > 0,
        "no explored interleaving had the pinned reader reach the node \
         ({} executions)",
        report.executions
    );
    eprintln!(
        "pinned reader model (weak={weak}): {} executions",
        report.executions
    );
}

#[test]
fn pinned_reader_blocks_collection() {
    pinned_reader_blocks_collection_model(false);
}

/// The same exploration under the store-buffer weak-memory mode: this
/// is what forces the pin protocol's SeqCst publication store. A
/// Relaxed pin could sit in the reader's store buffer while the
/// collector scans the slot, sees it unpinned, advances twice, and
/// frees under the reader — the checker would report exactly the
/// violation `pinned_reader_blocks_collection` asserts never happens.
///
/// This verdict is TSO-scoped: the mode models store buffers only, so
/// it cannot exhibit the RCpc load-before-store satisfaction that
/// forces the *validation load* (and `try_advance`'s scan) to be
/// SeqCst as well — that half of the argument lives in the C11
/// reasoning in `ssync_core::epoch`'s docs, not in this run.
#[test]
fn pinned_reader_blocks_collection_weak_memory() {
    pinned_reader_blocks_collection_model(true);
}

/// The checker's own regression: shorten the grace period by one epoch
/// (collect as if the global were one step ahead) and the exploration
/// *must* find the interleaving where a pinned reader holds a node the
/// early sweep frees. This is the mutation that proves the models
/// above can catch the bug class they claim to guard against.
#[test]
fn collecting_one_epoch_early_is_found() {
    let violation = Builder::new()
        .with_max_steps(64_000)
        .with_preemption_bound(4)
        .expect_violation(|| {
            let domain = Arc::new(EpochDomain::new());
            let node = Arc::new(AtomicU64::new(42));
            let published = Arc::new(AtomicU64::new(1));
            let flush = Arc::new(AtomicU64::new(0));
            let reader = {
                let domain = Arc::clone(&domain);
                let node = Arc::clone(&node);
                let published = Arc::clone(&published);
                thread::spawn(move || {
                    let _pin = domain.pin().expect("fresh domain has free slots");
                    if published.load(Ordering::Acquire) == 1 {
                        let v = node.load(Ordering::Acquire);
                        assert_ne!(v, POISON, "node freed under a pinned reader");
                    }
                })
            };
            let mut bags: EpochBags<Arc<AtomicU64>> = EpochBags::new();
            published.store(0, Ordering::Release);
            flush.fetch_add(1, Ordering::SeqCst);
            let tag = domain.epoch_sc();
            let mut freed = 0;
            freed += bags.retire(Arc::clone(&node), tag, |n| {
                n.store(POISON, Ordering::SeqCst);
            });
            for _ in 0..4 {
                domain.try_advance();
                // BUG under test: one epoch short of the grace period.
                freed += bags.collect(domain.epoch() + 1, |n| {
                    n.store(POISON, Ordering::SeqCst);
                });
                if freed > 0 {
                    break;
                }
            }
            reader.join();
            bags.drain_all(|n| {
                n.store(POISON, Ordering::SeqCst);
            });
        });
    assert!(
        violation.message.contains("freed under a pinned reader"),
        "wrong violation caught: {violation}"
    );
    eprintln!("early-collection violation: {violation}");
}

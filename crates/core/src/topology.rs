//! Descriptions of the paper's target platforms (Table 1).
//!
//! The study covers four many-cores, each representative of an
//! architectural class:
//!
//! | Name    | Class                          | Cores                    |
//! |---------|--------------------------------|--------------------------|
//! | Opteron | multi-socket, directory-based  | 4 MCMs × 2 dies × 6 = 48 |
//! | Xeon    | multi-socket, broadcast-based  | 8 sockets × 10 = 80      |
//! | Niagara | single-socket, uniform         | 8 cores × 8 threads = 64 |
//! | Tilera  | single-socket, non-uniform     | 6×6 mesh = 36            |
//!
//! Section 8 of the paper additionally references two small-scale
//! multi-sockets (a 2-socket Opteron 2384 and a 2-socket Xeon X5660),
//! which we model as [`Platform::Opteron2`] and [`Platform::Xeon2`].
//!
//! A [`Topology`] answers the questions every other layer asks: how many
//! cores, which die/socket a core belongs to, the *distance class* between
//! two cores (which indexes the latency tables of `ssync-sim`), which
//! memory node is local to a core, and where to place the `n`-th thread of
//! an experiment (the placement policies of Sections 5.4 and 6).

/// The hardware platforms of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// 48-core 4-socket AMD Opteron "Magny-Cours" (directory/probe filter,
    /// MOESI, two dies per multi-chip module).
    Opteron,
    /// 80-core 8-socket Intel Xeon Westmere-EX (broadcast snooping across
    /// sockets, MESIF, inclusive LLC).
    Xeon,
    /// Sun Niagara 2: 8 in-order cores × 8 hardware threads, uniform
    /// crossbar to a shared LLC, directory with duplicate tags.
    Niagara,
    /// Tilera TILE-Gx36: 36 tiles on a 6×6 mesh, distributed LLC with
    /// per-line home tiles, hardware message passing.
    Tilera,
    /// Small-scale 2-socket AMD Opteron 2384 (Section 8).
    Opteron2,
    /// Small-scale 2-socket Intel Xeon X5660 (Section 8).
    Xeon2,
}

impl Platform {
    /// All four primary platforms, in the order the paper's figures use.
    pub const ALL: [Platform; 4] = [
        Platform::Opteron,
        Platform::Xeon,
        Platform::Niagara,
        Platform::Tilera,
    ];

    /// The display name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Opteron => "Opteron",
            Platform::Xeon => "Xeon",
            Platform::Niagara => "Niagara",
            Platform::Tilera => "Tilera",
            Platform::Opteron2 => "Opteron-2s",
            Platform::Xeon2 => "Xeon-2s",
        }
    }

    /// Builds the [`Topology`] for this platform.
    pub fn topology(self) -> Topology {
        Topology::new(self)
    }

    /// True for the multi-socket machines (Opteron, Xeon and their
    /// 2-socket variants).
    pub fn is_multi_socket(self) -> bool {
        !matches!(self, Platform::Niagara | Platform::Tilera)
    }
}

/// Distance class between two cores, the key into the latency tables.
///
/// The variants mirror the column headers of Table 2. Not every class
/// occurs on every platform: `SameMcm` is Opteron-only, `SameCore` is
/// Niagara-only (hardware threads), `MeshHops` is Tilera-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistClass {
    /// Same hardware context (a core talking to itself).
    Zero,
    /// Two hardware threads of the same physical core (Niagara).
    SameCore,
    /// Two cores on the same die (or, on Niagara, different cores sharing
    /// the uniform LLC).
    SameDie,
    /// Two dies of the same multi-chip module (Opteron).
    SameMcm,
    /// Directly connected dies/sockets.
    OneHop,
    /// Dies/sockets two interconnect hops apart.
    TwoHops,
    /// Tilera mesh distance in hops (Manhattan distance between tiles).
    MeshHops(u8),
}

impl DistClass {
    /// Short label matching the paper's figure axes.
    pub fn label(self) -> String {
        match self {
            DistClass::Zero => "self".to_string(),
            DistClass::SameCore => "same core".to_string(),
            DistClass::SameDie => "same die".to_string(),
            DistClass::SameMcm => "same mcm".to_string(),
            DistClass::OneHop => "one hop".to_string(),
            DistClass::TwoHops => "two hops".to_string(),
            DistClass::MeshHops(h) => format!("{h} hops"),
        }
    }
}

/// A platform topology: everything the simulator and the benchmark
/// harnesses need to know about the machine's shape.
///
/// # Examples
///
/// ```
/// use ssync_core::topology::{DistClass, Platform};
///
/// let t = Platform::Opteron.topology();
/// assert_eq!(t.num_cores(), 48);
/// assert_eq!(t.distance(0, 7), DistClass::SameMcm); // die 0 -> die 1
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    platform: Platform,
    num_cores: usize,
    cores_per_die: usize,
    num_dies: usize,
    threads_per_core: usize,
    num_mem_nodes: usize,
    clock_ghz: f64,
}

impl Topology {
    /// Builds the topology for `platform` with the parameters of Table 1.
    pub fn new(platform: Platform) -> Self {
        match platform {
            Platform::Opteron => Self {
                platform,
                num_cores: 48,
                cores_per_die: 6,
                num_dies: 8,
                threads_per_core: 1,
                num_mem_nodes: 8,
                clock_ghz: 2.1,
            },
            Platform::Xeon => Self {
                platform,
                num_cores: 80,
                cores_per_die: 10,
                num_dies: 8,
                threads_per_core: 1,
                num_mem_nodes: 8,
                clock_ghz: 2.13,
            },
            Platform::Niagara => Self {
                platform,
                num_cores: 64,
                cores_per_die: 64,
                num_dies: 1,
                threads_per_core: 8,
                num_mem_nodes: 1,
                clock_ghz: 1.2,
            },
            Platform::Tilera => Self {
                platform,
                num_cores: 36,
                cores_per_die: 36,
                num_dies: 1,
                threads_per_core: 1,
                num_mem_nodes: 2,
                clock_ghz: 1.2,
            },
            Platform::Opteron2 => Self {
                platform,
                num_cores: 8,
                cores_per_die: 4,
                num_dies: 2,
                threads_per_core: 1,
                num_mem_nodes: 2,
                clock_ghz: 2.7,
            },
            Platform::Xeon2 => Self {
                platform,
                num_cores: 12,
                cores_per_die: 6,
                num_dies: 2,
                threads_per_core: 1,
                num_mem_nodes: 2,
                clock_ghz: 2.8,
            },
        }
    }

    /// The platform this topology describes.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Total number of hardware contexts (cores, or hardware threads on
    /// Niagara).
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// Number of dies (Opteron), sockets (Xeon), or 1 for single-sockets.
    pub fn num_dies(&self) -> usize {
        self.num_dies
    }

    /// Hardware threads per physical core (8 on Niagara, 1 elsewhere).
    pub fn threads_per_core(&self) -> usize {
        self.threads_per_core
    }

    /// Number of memory (NUMA) nodes.
    pub fn num_mem_nodes(&self) -> usize {
        self.num_mem_nodes
    }

    /// Core clock, used to convert simulated cycles to wall-clock time.
    pub fn clock_ghz(&self) -> f64 {
        self.clock_ghz
    }

    /// Die (or socket) index of `core`.
    ///
    /// Cores are numbered die-major: cores `0..cores_per_die` are die 0,
    /// and so on. On the single-sockets this is always 0.
    pub fn die_of(&self, core: usize) -> usize {
        debug_assert!(core < self.num_cores);
        core / self.cores_per_die
    }

    /// Physical core index of a hardware context (Niagara packs 8 threads
    /// per core; context `c` lives on physical core `c / 8`).
    pub fn physical_core_of(&self, core: usize) -> usize {
        debug_assert!(core < self.num_cores);
        core / self.threads_per_core
    }

    /// The memory node local to `core`.
    ///
    /// Opteron/Xeon: one node per die/socket. Niagara: single node.
    /// Tilera: two memory controllers, split across the mesh halves.
    pub fn mem_node_of(&self, core: usize) -> usize {
        debug_assert!(core < self.num_cores);
        match self.platform {
            Platform::Niagara => 0,
            Platform::Tilera => {
                // Controllers sit on the north and south edges; tiles in
                // the top three rows use node 0, the rest node 1.
                let (_, y) = self.tile_xy(core);
                usize::from(y >= 3)
            }
            _ => self.die_of(core),
        }
    }

    /// Tile coordinates on the Tilera's 6×6 mesh (row-major numbering).
    ///
    /// # Panics
    ///
    /// Panics if called on a platform other than Tilera.
    pub fn tile_xy(&self, core: usize) -> (usize, usize) {
        assert_eq!(self.platform, Platform::Tilera, "tile_xy is Tilera-only");
        (core % 6, core / 6)
    }

    /// Manhattan distance between two tiles on the Tilera mesh.
    pub fn mesh_hops(&self, a: usize, b: usize) -> u8 {
        let (ax, ay) = self.tile_xy(a);
        let (bx, by) = self.tile_xy(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u8
    }

    /// Distance class between two hardware contexts.
    pub fn distance(&self, a: usize, b: usize) -> DistClass {
        debug_assert!(a < self.num_cores && b < self.num_cores);
        if a == b {
            return DistClass::Zero;
        }
        match self.platform {
            Platform::Niagara => {
                if self.physical_core_of(a) == self.physical_core_of(b) {
                    DistClass::SameCore
                } else {
                    DistClass::SameDie
                }
            }
            Platform::Tilera => DistClass::MeshHops(self.mesh_hops(a, b).max(1)),
            _ => {
                let (da, db) = (self.die_of(a), self.die_of(b));
                if da == db {
                    DistClass::SameDie
                } else {
                    self.die_distance(da, db)
                }
            }
        }
    }

    /// Distance class between two *distinct* dies on the multi-sockets.
    ///
    /// * Opteron: dies `2k`/`2k+1` form MCM `k`; the four MCMs sit on a
    ///   square (0–1, 0–2, 1–3, 2–3 directly connected; 0–3 and 1–2 are
    ///   two hops apart), giving the paper's maximum distance of 2 hops.
    /// * Xeon: the eight sockets form a twisted hypercube with diameter 2;
    ///   sockets whose 3-bit ids differ in one bit are directly linked.
    pub fn die_distance(&self, da: usize, db: usize) -> DistClass {
        debug_assert_ne!(da, db);
        match self.platform {
            Platform::Opteron => {
                let (ma, mb) = (da / 2, db / 2);
                if ma == mb {
                    DistClass::SameMcm
                } else if (ma ^ mb) == 3 {
                    // Diagonal of the MCM square.
                    DistClass::TwoHops
                } else {
                    DistClass::OneHop
                }
            }
            Platform::Xeon => {
                if (da ^ db).count_ones() == 1 {
                    DistClass::OneHop
                } else {
                    DistClass::TwoHops
                }
            }
            Platform::Opteron2 | Platform::Xeon2 => DistClass::OneHop,
            Platform::Niagara | Platform::Tilera => {
                unreachable!("single-socket platforms have one die")
            }
        }
    }

    /// Placement policy of the paper's experiments (Section 5.4): the core
    /// on which the `i`-th of `n` threads runs.
    ///
    /// * Multi-sockets: fill a socket completely before moving on.
    /// * Niagara: divide threads evenly among the 8 physical cores.
    /// * Tilera: linear tile order.
    pub fn placement(&self, n_threads: usize) -> Vec<usize> {
        assert!(
            n_threads <= self.num_cores,
            "requested {n_threads} threads on {} contexts",
            self.num_cores
        );
        match self.platform {
            Platform::Niagara => {
                // Thread i -> physical core i % 8, hardware thread i / 8.
                (0..n_threads)
                    .map(|i| (i % 8) * self.threads_per_core + i / 8)
                    .collect()
            }
            _ => (0..n_threads).collect(),
        }
    }

    /// Representative partner cores for core 0 at each distance class, in
    /// increasing distance order — the x-axis of Figures 6 and 9.
    pub fn distance_ladder(&self) -> Vec<(DistClass, usize)> {
        match self.platform {
            Platform::Opteron => vec![
                (DistClass::SameDie, 1),
                (DistClass::SameMcm, self.cores_per_die), // die 1
                (DistClass::OneHop, 2 * self.cores_per_die), // die 2 (MCM 1)
                (DistClass::TwoHops, 6 * self.cores_per_die), // die 6 (MCM 3)
            ],
            Platform::Xeon => vec![
                (DistClass::SameDie, 1),
                (DistClass::OneHop, self.cores_per_die), // socket 1
                (DistClass::TwoHops, 3 * self.cores_per_die), // socket 3
            ],
            Platform::Niagara => vec![
                (DistClass::SameCore, 1),
                (DistClass::SameDie, self.threads_per_core), // core 1, thread 0
            ],
            Platform::Tilera => vec![
                (DistClass::MeshHops(1), 1),   // east neighbour
                (DistClass::MeshHops(10), 35), // opposite mesh corner
            ],
            Platform::Opteron2 | Platform::Xeon2 => vec![
                (DistClass::SameDie, 1),
                (DistClass::OneHop, self.cores_per_die),
            ],
        }
    }

    /// The thread counts the paper sweeps on this platform (x-axes of
    /// Figures 4, 5 and 7).
    pub fn sweep_points(&self) -> Vec<usize> {
        let step = match self.platform {
            Platform::Opteron => 6,
            Platform::Xeon => 10,
            Platform::Niagara => 8,
            Platform::Tilera => 6,
            Platform::Opteron2 | Platform::Xeon2 => 2,
        };
        let mut pts = vec![1, 2];
        let mut t = step;
        while t <= self.num_cores {
            pts.push(t);
            t += step;
        }
        pts.dedup();
        pts
    }

    /// Converts a simulated cycle count and operation count to the paper's
    /// throughput unit, millions of operations per second.
    pub fn mops(&self, ops: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        ops as f64 * self.clock_ghz * 1000.0 / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_core_counts() {
        assert_eq!(Platform::Opteron.topology().num_cores(), 48);
        assert_eq!(Platform::Xeon.topology().num_cores(), 80);
        assert_eq!(Platform::Niagara.topology().num_cores(), 64);
        assert_eq!(Platform::Tilera.topology().num_cores(), 36);
    }

    #[test]
    fn opteron_die_structure() {
        let t = Platform::Opteron.topology();
        assert_eq!(t.die_of(0), 0);
        assert_eq!(t.die_of(5), 0);
        assert_eq!(t.die_of(6), 1);
        assert_eq!(t.die_of(47), 7);
        assert_eq!(t.distance(0, 1), DistClass::SameDie);
        assert_eq!(t.distance(0, 6), DistClass::SameMcm);
        assert_eq!(t.distance(0, 12), DistClass::OneHop); // die 2, MCM 1
        assert_eq!(t.distance(0, 36), DistClass::TwoHops); // die 6, MCM 3
                                                           // Maximum die distance is two hops.
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert_ne!(t.die_distance(a, b), DistClass::Zero);
                }
            }
        }
    }

    #[test]
    fn opteron_distance_symmetry() {
        let t = Platform::Opteron.topology();
        for a in 0..48 {
            for b in 0..48 {
                assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
    }

    #[test]
    fn xeon_twisted_hypercube_diameter_two() {
        let t = Platform::Xeon.topology();
        let mut one = 0;
        let mut two = 0;
        for a in 0..8 {
            for b in 0..8 {
                if a == b {
                    continue;
                }
                match t.die_distance(a, b) {
                    DistClass::OneHop => one += 1,
                    DistClass::TwoHops => two += 1,
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert!(one > 0 && two > 0);
    }

    #[test]
    fn niagara_hardware_threads() {
        let t = Platform::Niagara.topology();
        assert_eq!(t.physical_core_of(0), 0);
        assert_eq!(t.physical_core_of(7), 0);
        assert_eq!(t.physical_core_of(8), 1);
        assert_eq!(t.distance(0, 1), DistClass::SameCore);
        assert_eq!(t.distance(0, 8), DistClass::SameDie);
    }

    #[test]
    fn niagara_placement_spreads_over_cores() {
        let t = Platform::Niagara.topology();
        let p = t.placement(8);
        // The first 8 threads land on 8 distinct physical cores.
        let mut cores: Vec<_> = p.iter().map(|&c| t.physical_core_of(c)).collect();
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len(), 8);
    }

    #[test]
    fn tilera_mesh_distances() {
        let t = Platform::Tilera.topology();
        assert_eq!(t.tile_xy(0), (0, 0));
        assert_eq!(t.tile_xy(35), (5, 5));
        assert_eq!(t.mesh_hops(0, 35), 10);
        assert_eq!(t.mesh_hops(0, 1), 1);
        assert_eq!(t.distance(0, 35), DistClass::MeshHops(10));
    }

    #[test]
    fn tilera_two_memory_nodes() {
        let t = Platform::Tilera.topology();
        assert_eq!(t.mem_node_of(0), 0);
        assert_eq!(t.mem_node_of(35), 1);
    }

    #[test]
    fn multi_socket_placement_fills_sockets() {
        let t = Platform::Xeon.topology();
        let p = t.placement(20);
        assert!(p[..10].iter().all(|&c| t.die_of(c) == 0));
        assert!(p[10..].iter().all(|&c| t.die_of(c) == 1));
    }

    #[test]
    fn distance_ladder_matches_distance() {
        for p in Platform::ALL {
            let t = p.topology();
            for (class, core) in t.distance_ladder() {
                assert_eq!(t.distance(0, core), class, "{p:?} core {core}");
            }
        }
    }

    #[test]
    fn sweep_points_cover_full_machine() {
        for p in Platform::ALL {
            let t = p.topology();
            let pts = t.sweep_points();
            assert_eq!(*pts.first().unwrap(), 1);
            assert_eq!(*pts.last().unwrap(), t.num_cores());
        }
    }

    #[test]
    fn mops_conversion() {
        let t = Platform::Tilera.topology(); // 1.2 GHz
                                             // 1200 ops in 1200 cycles at 1.2 GHz = 1.2e9 ops/s = 1200 Mops/s.
        let m = t.mops(1200, 1200);
        assert!((m - 1200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn placement_rejects_oversubscription() {
        Platform::Tilera.topology().placement(37);
    }
}

//! Epoch-based reclamation for the optimistic read paths.
//!
//! The store's lock-free readers traverse chain nodes without holding
//! any lock, so a writer that unlinks a node cannot free it until every
//! reader that might still hold the pointer has moved on. PR 5 solved
//! this with a graveyard: retired nodes parked until a `&mut` quiesce
//! point — correct, but a long-lived server under churn can never
//! reclaim while traffic is flowing. This module replaces that with the
//! classic epoch scheme (Fraser's QSBR / Keir–Fraser epochs, the shape
//! crossbeam-epoch ships): reclamation proceeds *concurrently* with
//! live readers, bounded by a grace period of two global-epoch
//! advances.
//!
//! # Protocol
//!
//! A [`EpochDomain`] owns one global epoch word and a fixed array of
//! per-participant records, each on its own [`CachePadded`] line (the
//! paper's rule: scalability is governed by cache-line transfers, so
//! per-thread bookkeeping must not share lines). Three moves:
//!
//! * **Pin** ([`EpochDomain::pin`]): the reader publishes
//!   `(epoch << 1) | 1` into its own record and validates that the
//!   global epoch still matches, re-publishing if it moved. One store
//!   plus one load per pin, both on lines only this thread
//!   writes — **no shared RMW on the read path**. The pin store *and*
//!   the validation load are both `SeqCst`: together with
//!   [`EpochDomain::try_advance`]'s slot scan and epoch CAS they form
//!   a store-buffering (SB) litmus, and C11 forbids the
//!   both-sides-read-stale outcome only when every access in the
//!   litmus is `SeqCst`. The store alone being `SeqCst` is not enough:
//!   an Acquire validation load compiles to LDAPR on RCpc AArch64
//!   (Apple M-series, Neoverse V1+), which may be satisfied *before*
//!   the earlier STLR pin store is globally visible — the collector
//!   then scans the record as unpinned and advances twice while the
//!   reader believes its pin validated, freeing a node under a live
//!   reader.
//! * **Retire**: writers tag each unlinked node with the global epoch
//!   — read via the `SeqCst` flavor [`EpochDomain::epoch_sc`] —
//!   *after* a flushing operation (any RMW — the store's per-stripe
//!   backlog counter bump serves) has committed the unlink, and push it
//!   into a three-generation bag ([`EpochBags`]).
//! * **Advance/collect** ([`EpochDomain::try_advance`]): the epoch may
//!   move from `g` to `g + 1` only when every *pinned* participant is
//!   pinned at `g`; a bag tagged `e` is freed once the global epoch
//!   reaches `e + 2`.
//!
//! # Why the grace period is two epochs
//!
//! A reader pinned at `e` blocks the advance `e + 1 → e + 2`, so while
//! it is pinned the global epoch is at most `e + 1`. Conversely a node
//! retired at tag `g` was unlinked (and the unlink flushed) before the
//! tag was read, so any reader that finds the node pinned at some
//! `e_r` with `e_r ≤ g` (its pin validated against a global epoch no
//! newer than the tag). That reader holds the epoch below `e_r + 2 ≤
//! g + 2`; freeing only at `g + 2` therefore cannot touch a node a
//! pinned reader can still reach. One epoch of slack is not enough —
//! the `collecting_one_epoch_early_is_found` model demonstrates the
//! use-after-free — and more than two buys nothing, which is why the
//! bags keep exactly three generations (the one being filled plus the
//! two aging out).
//!
//! # What the model checker does — and does not — prove
//!
//! The `pinned_reader_blocks_collection` models explore this protocol
//! on the real types, and their weak-memory mode catches a weakened
//! (buffered) pin store: the collector scans the record while the pin
//! sits unflushed in the reader's store buffer. But that mode is a
//! **store-buffer (TSO) model** — loads are always satisfied from the
//! thread's own buffer or committed memory, never early — so it
//! cannot exhibit the RCpc load-before-store satisfaction described
//! above. The checker therefore validates the protocol under TSO
//! (x86) only; soundness on weaker machines (ARM) rests on the
//! all-`SeqCst` litmus choreography in the C11 model, not on the
//! model run.
//!
//! # Participants
//!
//! Threads register lazily: the first [`EpochDomain::pin`] on a thread
//! claims a free record slot (a CAS on the claim bitmap — off the hot
//! path, once per thread per domain) and caches the registration in
//! thread-local storage; the slot is released when the thread exits.
//! The claim bitmap deliberately uses host atomics rather than the
//! model-checked shadow atomics: registration is bookkeeping that runs
//! once per thread (and again at thread teardown, where the checker's
//! execution context may already be gone), not part of the protocol
//! under test. If every slot is taken, `pin` returns `None` and the
//! caller falls back to its locked path, which needs no grace period.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64 as HostAtomicU64, Ordering as HostOrdering};
use std::sync::Arc;

use crate::pad::CachePadded;
use crate::sync::atomic::{AtomicU64, Ordering};

/// Participant record slots per domain (one claim-bitmap word).
pub const MAX_PARTICIPANTS: usize = 64;

/// Retirement-bag generations: the epoch being filled plus the two
/// aging toward the grace-period boundary.
pub const GENERATIONS: usize = 3;

/// Epochs a retired node must age before it may be freed: a bag tagged
/// `e` is collectable once the global epoch reaches `e + FREE_LAG`.
pub const FREE_LAG: u64 = 2;

/// Monotonically increasing domain identities, for the thread-local
/// registration cache. Host atomic: identity allocation is not part of
/// the checked protocol.
static DOMAIN_IDS: HostAtomicU64 = HostAtomicU64::new(0);

/// One reclamation domain: a global epoch word plus per-participant
/// pinned-epoch records. Share it as an `Arc` — [`EpochDomain::pin`]
/// registers calling threads through it.
pub struct EpochDomain {
    /// The global epoch. Advances by one under [`EpochDomain::try_advance`];
    /// never moves while a participant is pinned at the previous value.
    global: CachePadded<AtomicU64>,
    /// Per-participant records, `(epoch << 1) | pinned`. Each record is
    /// written only by its owning thread; the collector reads them all.
    slots: Box<[CachePadded<AtomicU64>]>,
    /// Claim bitmap over `slots` (bit set = slot owned by some thread).
    /// Host atomic by design — see the module docs on registration.
    claimed: CachePadded<HostAtomicU64>,
    /// Identity for the thread-local registration cache.
    id: u64,
}

impl EpochDomain {
    /// Creates a fresh domain at epoch zero with no participants.
    #[must_use]
    pub fn new() -> EpochDomain {
        let slots = (0..MAX_PARTICIPANTS)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect();
        EpochDomain {
            global: CachePadded::new(AtomicU64::new(0)),
            slots,
            claimed: CachePadded::new(HostAtomicU64::new(0)),
            id: DOMAIN_IDS.fetch_add(1, HostOrdering::Relaxed),
        }
    }

    /// The current global epoch (an Acquire load). Right for collect
    /// decisions and monitoring, where a stale (smaller) value only
    /// delays frees — never for retire tagging, which must go through
    /// [`EpochDomain::epoch_sc`].
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.global.load(Ordering::Acquire)
    }

    /// The current global epoch as a `SeqCst` load — the retire-path
    /// flavor of [`EpochDomain::epoch`]. Retire tagging must order the
    /// tag read after the flushing RMW that commits the unlink (the
    /// store's per-stripe backlog bump) *in the `SeqCst` total order*.
    /// An Acquire tag load is not enough: on RCpc hardware it can be
    /// satisfied before the unlink's stores are globally visible, so a
    /// reader pinning at `tag + FREE_LAG` could still observe the
    /// stale chain pointer and reach a node whose bag is already
    /// collectable — exactly the grace-period hole the tag guards.
    #[must_use]
    pub fn epoch_sc(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    /// Pins the calling thread: until the returned guard drops, the
    /// global epoch cannot advance more than one step past the pinned
    /// value, so no node retired at or after it can be freed. Returns
    /// `None` when every participant slot is claimed by other live
    /// threads — the caller must then use a path that needs no grace
    /// period (the stores fall back to their locked reads).
    ///
    /// Nested pins on the same thread are free: only the outermost pin
    /// publishes; inner guards just hold it open.
    #[must_use]
    pub fn pin(self: &Arc<Self>) -> Option<PinGuard> {
        let cell = Participant::for_domain(self)?;
        if cell.depth.get() == 0 {
            let record = &cell.domain.slots[cell.slot];
            let global = &cell.domain.global;
            let mut e = global.load(Ordering::Acquire);
            loop {
                // SeqCst on BOTH sides of the validation: the store
                // must be committed (not sitting in a store buffer)
                // before the load, and the load must not be satisfied
                // early (RCpc LDAPR would) — this is one half of an SB
                // litmus against try_advance, forbidden only when
                // every access is SeqCst. The TSO checker exercises
                // the buffered-store half; the load half is C11-only.
                record.store((e << 1) | 1, Ordering::SeqCst);
                let now = global.load(Ordering::SeqCst);
                if now == e {
                    break;
                }
                e = now;
            }
        }
        cell.depth.set(cell.depth.get() + 1);
        Some(PinGuard { cell })
    }

    /// Attempts one epoch advance `g → g + 1`. Fails (returns `false`)
    /// when some participant is pinned at an epoch other than `g` —
    /// that participant's grace period is still open — or when another
    /// advancer won the race. Callers amortize this over their write
    /// traffic; it is a CAS on the shared epoch word and so never
    /// belongs on a read path.
    pub fn try_advance(&self) -> bool {
        // SeqCst throughout: the slot scan and epoch CAS are the
        // collector's half of the pin protocol's SB litmus (see
        // `pin`). In the SeqCst total order a validation load that
        // read `g` precedes the CAS `g → g + 1`, which precedes the
        // next advance's slot scan — so that scan must observe the
        // pin. Weaken any of these and RCpc hardware can miss a
        // validated pin and advance twice. Off the read path, so the
        // extra strength costs nothing that matters.
        let g = self.global.load(Ordering::SeqCst);
        let mut bits = self.claimed.load(HostOrdering::Acquire);
        while bits != 0 {
            let slot = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let record = self.slots[slot].load(Ordering::SeqCst);
            if record & 1 == 1 && record >> 1 != g {
                return false;
            }
        }
        // A slot claimed after the bitmap read is harmless: its first
        // pin validates against the *current* global epoch, so it can
        // only be pinned at g or later — never at the epoch this
        // advance is retiring.
        self.global
            .compare_exchange(g, g + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
    }

    /// Claims a free participant slot, if any.
    fn claim_slot(&self) -> Option<usize> {
        loop {
            let bits = self.claimed.load(HostOrdering::Acquire);
            if bits == u64::MAX {
                return None;
            }
            let slot = bits.trailing_ones() as usize;
            if self
                .claimed
                .compare_exchange(
                    bits,
                    bits | (1 << slot),
                    HostOrdering::AcqRel,
                    HostOrdering::Relaxed,
                )
                .is_ok()
            {
                return Some(slot);
            }
        }
    }

    /// Releases a participant slot at thread teardown. The record is
    /// left as the owner's last (always unpinned) value; a stale
    /// record can only delay an advance, never unblock one, and the
    /// next claimant overwrites it on its first pin.
    ///
    /// Under the checker this is a no-op: the claim bitmap is a host
    /// atomic while model time is virtual, so clearing it at OS-thread
    /// teardown would hand [`EpochDomain::try_advance`] a wall-clock
    /// race — whether the collector still scans an exited reader's
    /// slot would depend on real thread-exit timing, making the
    /// exploration nondeterministic. Model domains live for one
    /// execution and spawn a handful of threads, so leaking the slot
    /// (whose record already reads unpinned) costs nothing.
    fn release_slot(&self, slot: usize) {
        #[cfg(ssync_chk)]
        let _ = slot;
        #[cfg(not(ssync_chk))]
        self.claimed.fetch_and(!(1 << slot), HostOrdering::Release);
    }
}

impl Default for EpochDomain {
    fn default() -> EpochDomain {
        EpochDomain::new()
    }
}

impl std::fmt::Debug for EpochDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochDomain")
            .field("epoch", &self.epoch())
            .field(
                "participants",
                &self.claimed.load(HostOrdering::Relaxed).count_ones(),
            )
            .finish()
    }
}

/// One thread's registration with one domain, cached in TLS.
struct Participant {
    domain: Arc<EpochDomain>,
    slot: usize,
    /// Pin-nesting depth; only the outermost pin publishes.
    depth: Cell<u32>,
}

impl Participant {
    /// Finds (or creates) the calling thread's registration with
    /// `domain`. Most-recently-used domain first — a thread serving one
    /// store hits the front slot every time.
    fn for_domain(domain: &Arc<EpochDomain>) -> Option<Rc<Participant>> {
        PARTICIPANTS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(pos) = cache.iter().position(|p| p.domain.id == domain.id) {
                cache.swap(0, pos);
                return Some(Rc::clone(&cache[0]));
            }
            // Registrations for dropped domains (strong count 1 means
            // only this cache entry keeps it alive) are pruned before
            // the cache grows.
            if cache.len() >= 8 {
                cache.retain(|p| Arc::strong_count(&p.domain) > 1);
            }
            let slot = domain.claim_slot()?;
            let cell = Rc::new(Participant {
                domain: Arc::clone(domain),
                slot,
                depth: Cell::new(0),
            });
            cache.insert(0, Rc::clone(&cell));
            Some(cell)
        })
    }
}

impl Drop for Participant {
    fn drop(&mut self) {
        // Runs at thread exit (TLS teardown) or cache pruning; by then
        // every guard is gone, so the record is unpinned.
        self.domain.release_slot(self.slot);
    }
}

thread_local! {
    /// This thread's domain registrations, most recently used first.
    static PARTICIPANTS: RefCell<Vec<Rc<Participant>>> = const { RefCell::new(Vec::new()) };
}

/// An active pin. While any guard for a thread is live, no node
/// retired at or after the pinned epoch can be freed. Not `Send`: the
/// pin lives in the calling thread's participant record.
pub struct PinGuard {
    cell: Rc<Participant>,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let depth = self.cell.depth.get() - 1;
        self.cell.depth.set(depth);
        if depth == 0 {
            let record = &self.cell.domain.slots[self.cell.slot];
            // Release: the unpin must not pass earlier protected
            // traversal in program order. Loads cannot sink below a
            // later store, so Release (no flush) suffices.
            let e = record.load(Ordering::Relaxed) >> 1;
            record.store(e << 1, Ordering::Release);
        }
    }
}

impl std::fmt::Debug for PinGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinGuard")
            .field("slot", &self.cell.slot)
            .field("depth", &self.cell.depth.get())
            .finish()
    }
}

/// Three-generation retirement bags: retired items parked until their
/// tag epoch ages past the grace period. Single-owner (the stores keep
/// one per stripe, under the stripe lock); the epoch protocol is in
/// the tags, not in this container.
pub struct EpochBags<T> {
    bags: [Bag<T>; GENERATIONS],
}

struct Bag<T> {
    epoch: u64,
    items: Vec<T>,
}

impl<T> EpochBags<T> {
    /// Creates empty bags at epoch zero.
    #[must_use]
    pub const fn new() -> EpochBags<T> {
        EpochBags {
            bags: [
                Bag {
                    epoch: 0,
                    items: Vec::new(),
                },
                Bag {
                    epoch: 1,
                    items: Vec::new(),
                },
                Bag {
                    epoch: 2,
                    items: Vec::new(),
                },
            ],
        }
    }

    /// Retires `item` under epoch tag `tag` (the global epoch read
    /// after the unlink was flushed). When the tag's slot still holds
    /// the generation from three epochs back, those items are already
    /// past the grace period — the global epoch reached `tag`, which
    /// is at least their tag plus [`FREE_LAG`] — and are handed to
    /// `free` inline. Returns how many were freed.
    pub fn retire(&mut self, item: T, tag: u64, mut free: impl FnMut(T)) -> usize {
        let slot = (tag % GENERATIONS as u64) as usize;
        let bag = &mut self.bags[slot];
        let mut freed = 0;
        if bag.epoch != tag {
            debug_assert!(
                bag.epoch < tag,
                "epoch tags regressed: {} > {tag}",
                bag.epoch
            );
            freed = bag.items.len();
            for item in bag.items.drain(..) {
                free(item);
            }
            bag.epoch = tag;
        }
        bag.items.push(item);
        freed
    }

    /// Frees every bag whose tag has aged past the grace period under
    /// the current `global` epoch. Returns how many items were freed.
    pub fn collect(&mut self, global: u64, mut free: impl FnMut(T)) -> usize {
        let mut freed = 0;
        for bag in &mut self.bags {
            if !bag.items.is_empty() && global >= bag.epoch + FREE_LAG {
                freed += bag.items.len();
                for item in bag.items.drain(..) {
                    free(item);
                }
            }
        }
        freed
    }

    /// Shutdown drain: frees everything regardless of epoch. Only
    /// sound once the owner holds the structure exclusively (`&mut`
    /// store, `Drop`).
    pub fn drain_all(&mut self, mut free: impl FnMut(T)) -> usize {
        let mut freed = 0;
        for bag in &mut self.bags {
            freed += bag.items.len();
            for item in bag.items.drain(..) {
                free(item);
            }
        }
        freed
    }

    /// Items currently parked across all generations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bags.iter().map(|b| b.items.len()).sum()
    }

    /// Whether no items are parked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bags.iter().all(|b| b.items.is_empty())
    }

    /// Iterates the parked items (for the stores' debug-mode
    /// reachability audit at purge time).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.bags.iter().flat_map(|b| b.items.iter())
    }
}

impl<T> Default for EpochBags<T> {
    fn default() -> EpochBags<T> {
        EpochBags::new()
    }
}

impl<T> std::fmt::Debug for EpochBags<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_map();
        for bag in &self.bags {
            d.entry(&bag.epoch, &bag.items.len());
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_blocks_advance_past_one_epoch() {
        let dom = Arc::new(EpochDomain::new());
        let guard = dom.pin().expect("fresh domain has slots");
        assert_eq!(dom.epoch(), 0);
        // Pinned at 0: the advance 0 → 1 is allowed...
        assert!(dom.try_advance());
        assert_eq!(dom.epoch(), 1);
        // ...but 1 → 2 is fenced by the pin at 0.
        assert!(!dom.try_advance());
        assert_eq!(dom.epoch(), 1);
        drop(guard);
        assert!(dom.try_advance());
        assert_eq!(dom.epoch(), 2);
    }

    #[test]
    fn nested_pins_hold_a_single_registration() {
        let dom = Arc::new(EpochDomain::new());
        let outer = dom.pin().expect("slot");
        assert!(dom.try_advance());
        {
            // The inner pin rides the outer one: it must NOT republish
            // at the new epoch, or the outer guard's grace period
            // would silently shrink.
            let inner = dom.pin().expect("slot");
            assert!(!dom.try_advance(), "outer pin at 0 must still fence");
            drop(inner);
        }
        assert!(!dom.try_advance(), "outer guard still pinned at 0");
        drop(outer);
        assert!(dom.try_advance());
    }

    #[test]
    fn repeated_pins_on_one_thread_reuse_the_slot() {
        let dom = Arc::new(EpochDomain::new());
        for _ in 0..100 {
            let g = dom.pin().expect("slot");
            drop(g);
        }
        assert_eq!(
            dom.claimed.load(HostOrdering::Relaxed).count_ones(),
            1,
            "one thread must occupy exactly one slot"
        );
    }

    #[test]
    fn threads_register_and_release_their_slots() {
        let dom = Arc::new(EpochDomain::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let dom = Arc::clone(&dom);
                std::thread::spawn(move || {
                    let g = dom.pin().expect("4 threads fit in 64 slots");
                    drop(g);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("participant thread");
        }
        // TLS teardown released every slot (under the checker slots
        // deliberately leak — see `release_slot` — but the records
        // still read unpinned, so advances stay free).
        #[cfg(not(ssync_chk))]
        assert_eq!(dom.claimed.load(HostOrdering::Relaxed), 0);
        #[cfg(ssync_chk)]
        assert_eq!(dom.claimed.load(HostOrdering::Relaxed).count_ones(), 4);
        // And with nobody pinned the epoch is free to run.
        assert!(dom.try_advance());
    }

    #[test]
    fn bags_age_out_after_the_grace_period() {
        let dom = Arc::new(EpochDomain::new());
        let mut bags: EpochBags<u32> = EpochBags::new();
        let mut freed: Vec<u32> = Vec::new();
        assert_eq!(bags.retire(7, dom.epoch(), |x| freed.push(x)), 0);
        assert_eq!(bags.len(), 1);
        // One epoch of aging is not enough...
        assert!(dom.try_advance());
        assert_eq!(bags.collect(dom.epoch(), |x| freed.push(x)), 0);
        assert!(freed.is_empty());
        // ...two is.
        assert!(dom.try_advance());
        assert_eq!(bags.collect(dom.epoch(), |x| freed.push(x)), 1);
        assert_eq!(freed, [7]);
        assert!(bags.is_empty());
    }

    #[test]
    fn slot_reuse_frees_the_expired_generation_inline() {
        let mut bags: EpochBags<u32> = EpochBags::new();
        let mut freed: Vec<u32> = Vec::new();
        bags.retire(10, 0, |x| freed.push(x));
        bags.retire(11, 1, |x| freed.push(x));
        bags.retire(12, 2, |x| freed.push(x));
        assert!(freed.is_empty());
        // Tag 3 reuses slot 0: its occupant (tag 0) is two epochs past
        // at a global of 3, so it frees without a collect pass.
        assert_eq!(bags.retire(13, 3, |x| freed.push(x)), 1);
        assert_eq!(freed, [10]);
        assert_eq!(bags.len(), 3);
    }

    #[test]
    fn drain_all_ignores_epochs() {
        let mut bags: EpochBags<u32> = EpochBags::new();
        let mut freed = 0;
        bags.retire(1, 0, |_| freed += 1);
        bags.retire(2, 1, |_| freed += 1);
        assert_eq!(bags.drain_all(|_| freed += 1), 2);
        assert_eq!(freed, 2);
        assert!(bags.is_empty());
        assert_eq!(bags.drain_all(|_| freed += 1), 0);
    }

    #[test]
    fn concurrent_pinners_and_an_advancer_make_progress() {
        let dom = Arc::new(EpochDomain::new());
        let stop = Arc::new(HostAtomicU64::new(0));
        let pinners: Vec<_> = (0..2)
            .map(|_| {
                let dom = Arc::clone(&dom);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut pins = 0u64;
                    // Keep pinning until the advancer is done AND this
                    // thread has exercised the path a few times (on a
                    // small box the advancer can finish first).
                    while stop.load(HostOrdering::Relaxed) == 0 || pins < 16 {
                        let g = dom.pin().expect("slots available");
                        std::hint::black_box(&g);
                        drop(g);
                        pins += 1;
                    }
                    pins
                })
            })
            .collect();
        let mut advances = 0u64;
        while advances < 64 {
            if dom.try_advance() {
                advances += 1;
            }
        }
        stop.store(1, HostOrdering::Relaxed);
        for p in pinners {
            assert!(p.join().expect("pinner") > 0);
        }
        assert!(dom.epoch() >= 64);
    }
}

//! Back-off policies for spinning.
//!
//! The paper's `libslock` uses two flavours of back-off:
//!
//! * **Exponential** back-off in the test-and-test-and-set lock
//!   (Anderson \[4\], Herlihy & Shavit \[20\]): each failed attempt doubles
//!   the pause, bounded by a cap, which un-synchronizes the retries of the
//!   spinning cores and drains traffic off the contended line.
//! * **Proportional** back-off in the optimized ticket lock (Section 5.3,
//!   Figure 3): a ticket holder knows exactly how many threads are queued
//!   ahead (`ticket - current`), so it sleeps for a pause proportional to
//!   its queue position instead of re-reading the line continuously.

#[cfg(not(ssync_chk))]
use core::hint;

/// Under `--cfg ssync_chk`, every wait flavor degenerates to one model
/// scheduler yield: spinning is invisible to the checker (it is not a
/// shadow-atomic step), sleeping stalls the single-threaded exploration,
/// and the yield's loom-style semantics — not schedulable again until
/// another thread steps — are exactly what bounds a polling loop to one
/// retry per peer step. A loop that yields forever with no live peer is
/// reported as a livelock (lost wakeup).
#[cfg(ssync_chk)]
fn model_yield() {
    ssync_chk::thread::yield_now();
}

/// Bounded busy-wait for blocking poll loops: pure spinning for a
/// while (the fast path — a polled flag line is a local cache hit
/// until the peer writes it), then one OS yield per failed poll so
/// the loop stays live when threads outnumber cores. Without the
/// yield, a waiter on an oversubscribed host burns a full scheduling
/// quantum per handoff — on a single-core box that turns a
/// message-passing ping-pong from milliseconds into minutes.
///
/// Used by every blocking receive/send path in `ssync-mp` and the
/// server loops in `ssync-tm`/`ssync-ht`.
///
/// # Examples
///
/// ```
/// use ssync_core::SpinWait;
///
/// let mut ready = false; // stand-in for a polled flag
/// let mut wait = SpinWait::new();
/// while !ready {
///     ready = true; // poll the real condition here
///     wait.snooze();
/// }
/// ```
#[derive(Debug, Default)]
pub struct SpinWait {
    #[cfg_attr(ssync_chk, allow(dead_code))]
    polls: u32,
}

impl SpinWait {
    #[cfg_attr(ssync_chk, allow(dead_code))]
    const SPIN_LIMIT: u32 = 128;

    /// Starts a fresh wait (full spin budget).
    pub fn new() -> Self {
        Self { polls: 0 }
    }

    /// Call once per failed poll: spins while the budget lasts, then
    /// yields to the OS scheduler.
    pub fn snooze(&mut self) {
        #[cfg(ssync_chk)]
        model_yield();
        #[cfg(not(ssync_chk))]
        if self.polls < Self::SPIN_LIMIT {
            self.polls += 1;
            hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Escalating wait for *server* poll loops that can sit idle for long
/// stretches: spin like [`SpinWait`], then yield a bounded number of
/// times, then park in short, doubling sleeps (capped at
/// [`ParkingWait::MAX_SLEEP_US`]).
///
/// The distinction from [`SpinWait`] matters on boxes where runnable
/// threads outnumber cores: a yield-looping idle thread re-enters the
/// run queue every scheduling cycle, taxing every busy thread with an
/// extra context switch *forever*. One idle server is noise; a
/// replication deployment's worth of them (R backups per shard plus
/// idle primaries on read-only phases) is a measurable per-op cost.
/// Parking removes them from the run queue entirely; the price is up
/// to one capped sleep of added latency on the first message after an
/// idle period, which `reset()` (call it after every successful poll)
/// keeps off the busy path.
#[derive(Debug, Default)]
pub struct ParkingWait {
    #[cfg_attr(ssync_chk, allow(dead_code))]
    polls: u32,
    #[cfg_attr(ssync_chk, allow(dead_code))]
    sleep_us: u64,
}

impl ParkingWait {
    #[cfg_attr(ssync_chk, allow(dead_code))]
    const SPIN_LIMIT: u32 = 128;
    /// Yields before the first park. Deliberately long (milliseconds
    /// of idling on a loaded host): a server that is merely *between*
    /// requests must never sleep — only one idle on the scale of a
    /// workload phase should leave the run queue.
    #[cfg_attr(ssync_chk, allow(dead_code))]
    const YIELD_LIMIT: u32 = 2048;
    #[cfg_attr(ssync_chk, allow(dead_code))]
    const FIRST_SLEEP_US: u64 = 50;

    /// Longest single park, in microseconds — the worst-case latency a
    /// freshly arriving message pays after a long idle stretch.
    pub const MAX_SLEEP_US: u64 = 500;

    /// Starts fresh (full spin budget, no sleeping).
    pub fn new() -> Self {
        Self::default()
    }

    /// Call once per failed poll: spins, then yields, then parks in
    /// doubling sleeps.
    pub fn snooze(&mut self) {
        #[cfg(ssync_chk)]
        model_yield();
        #[cfg(not(ssync_chk))]
        if self.polls < Self::SPIN_LIMIT {
            self.polls += 1;
            hint::spin_loop();
        } else if self.polls < Self::SPIN_LIMIT + Self::YIELD_LIMIT {
            self.polls += 1;
            std::thread::yield_now();
        } else {
            let us = if self.sleep_us == 0 {
                Self::FIRST_SLEEP_US
            } else {
                (self.sleep_us * 2).min(Self::MAX_SLEEP_US)
            };
            self.sleep_us = us;
            std::thread::sleep(core::time::Duration::from_micros(us));
        }
    }

    /// Call after every successful poll: restores the full spin budget
    /// so a busy loop never sleeps.
    pub fn reset(&mut self) {
        self.polls = 0;
        self.sleep_us = 0;
    }
}

/// Default number of spin iterations corresponding to one "slot" of
/// proportional back-off — roughly the cost of an uncontended
/// acquire/release pair on the platforms of the paper.
pub const DEFAULT_SLOT_SPINS: u32 = 128;

/// Upper bound on a single exponential back-off pause, in spin iterations.
pub const DEFAULT_MAX_SPINS: u32 = 4096;

/// Exponential back-off state for TTAS-style spinning.
///
/// # Examples
///
/// ```
/// use ssync_core::Backoff;
///
/// let mut b = Backoff::new();
/// for _ in 0..4 {
///     b.spin(); // Pause, doubling each time.
/// }
/// assert!(b.current() > Backoff::new().current());
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    current: u32,
    max: u32,
}

impl Backoff {
    /// Creates a back-off starting at a single-digit pause, capped at
    /// [`DEFAULT_MAX_SPINS`].
    pub const fn new() -> Self {
        Self::with_bounds(4, DEFAULT_MAX_SPINS)
    }

    /// Creates a back-off with explicit initial and maximum pause lengths
    /// (in spin-loop iterations).
    pub const fn with_bounds(initial: u32, max: u32) -> Self {
        Self {
            current: if initial == 0 { 1 } else { initial },
            max,
        }
    }

    /// Current pause length in spin iterations.
    pub fn current(&self) -> u32 {
        self.current
    }

    /// Pauses for the current duration and doubles it (up to the cap).
    pub fn spin(&mut self) {
        #[cfg(ssync_chk)]
        model_yield();
        #[cfg(not(ssync_chk))]
        for _ in 0..self.current {
            hint::spin_loop();
        }
        self.current = (self.current.saturating_mul(2)).min(self.max);
    }

    /// Resets the pause to its initial length.
    pub fn reset(&mut self) {
        let initial = 4.min(self.max);
        self.current = initial;
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

/// Proportional back-off for ticket locks.
///
/// A waiter that holds ticket `t` while the lock serves ticket `c` has
/// exactly `t - c` predecessors; pausing for `slot * (t - c)` iterations
/// lets it wake up approximately when its turn arrives (Mellor-Crummey &
/// Scott \[29\], and Section 5.3 of the paper).
#[derive(Debug, Clone, Copy)]
pub struct ProportionalBackoff {
    slot_spins: u32,
    max_spins: u32,
}

impl ProportionalBackoff {
    /// Creates a proportional back-off with the default slot length.
    pub const fn new() -> Self {
        Self {
            slot_spins: DEFAULT_SLOT_SPINS,
            max_spins: DEFAULT_SLOT_SPINS * 64,
        }
    }

    /// Creates a proportional back-off with an explicit slot length.
    pub const fn with_slot(slot_spins: u32) -> Self {
        Self {
            slot_spins,
            max_spins: slot_spins.saturating_mul(64),
        }
    }

    /// Number of spin iterations for a waiter `queued` positions from the
    /// head of the queue.
    pub fn spins_for(&self, queued: u64) -> u32 {
        let queued = queued.min(u64::from(u32::MAX)) as u32;
        queued.saturating_mul(self.slot_spins).min(self.max_spins)
    }

    /// Pauses proportionally to the queue distance.
    pub fn wait(&self, queued: u64) {
        #[cfg(ssync_chk)]
        {
            let _ = queued;
            model_yield();
        }
        #[cfg(not(ssync_chk))]
        for _ in 0..self.spins_for(queued) {
            hint::spin_loop();
        }
    }
}

impl Default for ProportionalBackoff {
    fn default() -> Self {
        Self::new()
    }
}

/// Deadline-bounded retry pacing with jittered exponential sleeps, for
/// *request* retry loops (client redirects, leaderless shards) rather
/// than cache-line spinning.
///
/// The jitter matters for the same reason exponential back-off does in
/// `libslock`'s TTAS lock, one layer up: when a primary dies, every
/// client of that shard notices at once, and un-jittered retries would
/// re-arrive in the same convoy each round. The jitter is drawn from a
/// private xorshift stream seeded by the caller, so retry *timing* is
/// randomized while the op sequence stays deterministic.
///
/// # Examples
///
/// ```
/// use core::time::Duration;
/// use ssync_core::RetryPacer;
///
/// let mut pacer = RetryPacer::new(Duration::from_millis(50), 7);
/// let mut attempts = 0;
/// loop {
///     attempts += 1; // try the request here
///     if attempts >= 3 || !pacer.pause() {
///         break; // success path or budget exhausted
///     }
/// }
/// assert!(attempts >= 1);
/// ```
#[derive(Debug)]
pub struct RetryPacer {
    deadline: std::time::Instant,
    #[cfg_attr(ssync_chk, allow(dead_code))]
    sleep_us: u64,
    #[cfg_attr(ssync_chk, allow(dead_code))]
    rng: u64,
}

impl RetryPacer {
    #[cfg_attr(ssync_chk, allow(dead_code))]
    const FIRST_SLEEP_US: u64 = 20;
    #[cfg_attr(ssync_chk, allow(dead_code))]
    const MAX_SLEEP_US: u64 = 2_000;

    /// Starts a retry budget of `budget` from now. `seed` feeds the
    /// jitter stream (any value; zero is remapped internally).
    pub fn new(budget: core::time::Duration, seed: u64) -> Self {
        Self {
            deadline: std::time::Instant::now() + budget,
            sleep_us: 0,
            rng: seed | 1,
        }
    }

    /// True once the budget is spent: the caller should give up and
    /// surface a deadline error.
    pub fn expired(&self) -> bool {
        std::time::Instant::now() >= self.deadline
    }

    /// Call between attempts: sleeps for the next jittered pause and
    /// returns `true`, or returns `false` (without sleeping) once the
    /// deadline has passed. Pauses double from ~20µs to a 2ms cap,
    /// each scaled by a uniform ±50% jitter.
    pub fn pause(&mut self) -> bool {
        #[cfg(ssync_chk)]
        {
            // Under the checker a "sleep" is one model yield, and the
            // deadline check keeps its real-time meaning (the checker
            // never stalls a clock), so retry loops stay bounded.
            model_yield();
            !self.expired()
        }
        #[cfg(not(ssync_chk))]
        {
            if self.expired() {
                return false;
            }
            let us = if self.sleep_us == 0 {
                Self::FIRST_SLEEP_US
            } else {
                (self.sleep_us * 2).min(Self::MAX_SLEEP_US)
            };
            self.sleep_us = us;
            // xorshift64 step; jitter scales the pause into [us/2, 3us/2].
            let mut x = self.rng;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.rng = x;
            let jittered = us / 2 + x % us.max(1);
            std::thread::sleep(core::time::Duration::from_micros(jittered));
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_doubles_and_caps() {
        let mut b = Backoff::with_bounds(2, 16);
        let mut seen = Vec::new();
        for _ in 0..6 {
            seen.push(b.current());
            b.spin();
        }
        assert_eq!(seen, vec![2, 4, 8, 16, 16, 16]);
    }

    #[test]
    fn reset_restores_initial() {
        let mut b = Backoff::new();
        b.spin();
        b.spin();
        b.reset();
        assert_eq!(b.current(), 4);
    }

    #[test]
    fn zero_initial_is_promoted() {
        let b = Backoff::with_bounds(0, 8);
        assert_eq!(b.current(), 1);
    }

    #[test]
    fn proportional_scales_with_queue_position() {
        let p = ProportionalBackoff::with_slot(10);
        assert_eq!(p.spins_for(0), 0);
        assert_eq!(p.spins_for(3), 30);
        // Capped at 64 slots.
        assert_eq!(p.spins_for(1_000_000), 640);
    }

    #[test]
    fn proportional_wait_does_not_hang() {
        let p = ProportionalBackoff::new();
        p.wait(2);
    }

    #[test]
    fn retry_pacer_respects_its_deadline() {
        let mut pacer = RetryPacer::new(core::time::Duration::from_millis(10), 42);
        let mut pauses = 0u64;
        // Under the checker each pause is a bare yield rather than a
        // 20µs+ sleep, so vastly more pauses fit in the budget; the cap
        // only has to catch a pacer that never expires, not bound the
        // count tightly.
        let cap: u64 = if cfg!(ssync_chk) { 100_000_000 } else { 10_000 };
        while pacer.pause() {
            pauses += 1;
            assert!(pauses < cap, "pacer must eventually report expiry");
        }
        assert!(pacer.expired());
        // Sleeps double from 20µs toward the cap, so a 10ms budget
        // admits only a bounded number of pauses.
        assert!(pauses >= 1);
    }

    #[test]
    fn retry_pacer_with_spent_budget_never_sleeps() {
        let mut pacer = RetryPacer::new(core::time::Duration::ZERO, 0);
        assert!(pacer.expired());
        assert!(!pacer.pause());
    }
}

//! Small statistics helpers for the benchmark harnesses.
//!
//! The paper reports averages of repeated runs with a < 3% standard
//! deviation (Table 2 caption); these helpers compute the same summary
//! statistics for our measurements.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over `samples`.
    ///
    /// Returns `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some(Self {
            n,
            mean,
            stddev: var.sqrt(),
            min,
            max,
        })
    }

    /// Summary over durations, expressed in milliseconds — the unit the
    /// failover bench reports unavailability windows in.
    ///
    /// Returns `None` for an empty sample.
    pub fn of_durations_ms(samples: &[core::time::Duration]) -> Option<Self> {
        let ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        Self::of(&ms)
    }

    /// Relative standard deviation (stddev / mean), the paper's "< 3%"
    /// stability criterion. Zero when the mean is zero.
    pub fn rsd(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean.abs()
        }
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of a sample using linear
/// interpolation, or `None` for an empty sample.
pub fn quantile(samples: &mut [f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let pos = q * (samples.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(samples[lo])
    } else {
        let frac = pos - lo as f64;
        Some(samples[lo] * (1.0 - frac) + samples[hi] * frac)
    }
}

/// Geometric mean of strictly positive samples; `None` if empty or any
/// sample is non-positive.
pub fn geo_mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() || samples.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = samples.iter().map(|x| x.ln()).sum();
    Some((log_sum / samples.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.rsd(), 0.0);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - 1.2909944487358056).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_of_durations_is_in_milliseconds() {
        let s = Summary::of_durations_ms(&[
            core::time::Duration::from_millis(2),
            core::time::Duration::from_millis(4),
        ])
        .unwrap();
        assert!((s.mean - 3.0).abs() < 1e-9);
        assert!(Summary::of_durations_ms(&[]).is_none());
    }

    #[test]
    fn quantiles() {
        let mut v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&mut v, 0.0), Some(1.0));
        assert_eq!(quantile(&mut v, 1.0), Some(4.0));
        assert_eq!(quantile(&mut v, 0.5), Some(2.5));
    }

    #[test]
    fn geo_mean_basic() {
        let g = geo_mean(&[1.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-9);
        assert!(geo_mean(&[1.0, 0.0]).is_none());
        assert!(geo_mean(&[]).is_none());
    }
}

//! Statistics for the benchmark harnesses and the observability layer.
//!
//! The paper reports averages of repeated runs with a < 3% standard
//! deviation (Table 2 caption); the [`Summary`]/[`quantile`] helpers
//! compute the same summary statistics for our measurements. On top of
//! those, this module carries the live-metrics layer every serving
//! loop registers into:
//!
//! * [`Histogram`] — an HDR-style log-bucketed latency histogram:
//!   power-of-two major buckets × [`HIST_SUB_COUNT`] linear
//!   sub-buckets, so `record(ns)` is one index computation plus one
//!   `Relaxed` counter increment and any quantile read is within
//!   [`HIST_MAX_REL_ERROR`] of the true sample quantile.
//! * [`Registry`] — named counters and histograms a node exposes for
//!   live scraping over the `Stats` wire op.
//! * [`mono_ns`] — a process-wide monotonic nanosecond clock, the
//!   timebase open-loop latency stamps and server-side queue-wait
//!   splits share.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::pad::CachePadded;
use crate::sync::atomic::AtomicU64;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over `samples`.
    ///
    /// Returns `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some(Self {
            n,
            mean,
            stddev: var.sqrt(),
            min,
            max,
        })
    }

    /// Summary over durations, expressed in milliseconds — the unit the
    /// failover bench reports unavailability windows in.
    ///
    /// Returns `None` for an empty sample.
    pub fn of_durations_ms(samples: &[core::time::Duration]) -> Option<Self> {
        let ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        Self::of(&ms)
    }

    /// Relative standard deviation (stddev / mean), the paper's "< 3%"
    /// stability criterion. Zero when the mean is zero.
    pub fn rsd(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean.abs()
        }
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of a sample using linear
/// interpolation, or `None` for an empty sample **or a sample
/// containing NaN** — a pathological measurement degrades to "no
/// answer" instead of killing a bench run mid-sweep.
pub fn quantile(samples: &mut [f64], q: f64) -> Option<f64> {
    if samples.is_empty() || samples.iter().any(|x| x.is_nan()) {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    samples.sort_by(f64::total_cmp);
    let pos = q * (samples.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(samples[lo])
    } else {
        let frac = pos - lo as f64;
        Some(samples[lo] * (1.0 - frac) + samples[hi] * frac)
    }
}

/// Geometric mean of strictly positive samples; `None` if empty or any
/// sample is non-positive.
pub fn geo_mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() || samples.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = samples.iter().map(|x| x.ln()).sum();
    Some((log_sum / samples.len() as f64).exp())
}

// ---------------------------------------------------------------------------
// Monotonic timebase
// ---------------------------------------------------------------------------

static MONO_ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds on a process-wide monotonic clock (anchored at first
/// use). Every thread reads the same anchor, so a timestamp taken on a
/// client thread can be subtracted on a server thread — the property
/// the open-loop harness uses to split client-observed latency into
/// queue wait and apply time.
#[inline]
pub fn mono_ns() -> u64 {
    let anchor = *MONO_ANCHOR.get_or_init(Instant::now);
    anchor.elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Log-bucketed histogram
// ---------------------------------------------------------------------------

/// log2 of the sub-bucket count per power-of-two major bucket.
pub const HIST_SUB_BITS: u32 = 5;
/// Linear sub-buckets per major bucket (values below this are exact).
pub const HIST_SUB_COUNT: u64 = 1 << HIST_SUB_BITS;
/// Total bucket count: one exact bucket per value in
/// `0..HIST_SUB_COUNT`, then [`HIST_SUB_COUNT`] sub-buckets for each
/// of the remaining `64 - HIST_SUB_BITS` powers of two — the full
/// `u64` range in 1 920 counters.
pub const HIST_BUCKETS: usize = (64 - HIST_SUB_BITS as usize + 1) << HIST_SUB_BITS;
/// Worst-case relative error of any reported quantile: a bucket
/// spanning `[lo, lo + w)` has `w ≤ lo / HIST_SUB_COUNT`, and the
/// midpoint representative is at most `w / 2` from any member.
pub const HIST_MAX_REL_ERROR: f64 = 1.0 / HIST_SUB_COUNT as f64;

/// Maps a recorded value to its bucket index. One comparison, one
/// `leading_zeros`, two shifts — the whole cost of `record` beyond the
/// counter increment.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < HIST_SUB_COUNT {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = (v >> (exp - HIST_SUB_BITS)) & (HIST_SUB_COUNT - 1);
    ((u64::from(exp - HIST_SUB_BITS) + 1) * HIST_SUB_COUNT + sub) as usize
}

/// The `[lo, hi)` value range bucket `idx` covers (`hi` saturates at
/// `u64::MAX` for the top bucket).
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < HIST_BUCKETS, "bucket index out of range: {idx}");
    let idx = idx as u64;
    if idx < HIST_SUB_COUNT {
        return (idx, idx + 1);
    }
    let major = idx >> HIST_SUB_BITS;
    let sub = idx & (HIST_SUB_COUNT - 1);
    let exp = major - 1 + u64::from(HIST_SUB_BITS);
    let width = 1u64 << (exp - u64::from(HIST_SUB_BITS));
    let lo = (1u64 << exp) + sub * width;
    (lo, lo.saturating_add(width))
}

/// The representative value reported for bucket `idx` (its midpoint;
/// exact for the unit-width low buckets).
fn bucket_rep(idx: usize) -> u64 {
    let (lo, hi) = bucket_bounds(idx);
    lo + (hi - lo) / 2
}

/// An HDR-style log-bucketed histogram of `u64` observations
/// (nanoseconds, in this workspace).
///
/// `record` is wait-free: one index computation and one `Relaxed`
/// increment, no CAS loop and no ordering stronger than `Relaxed`
/// anywhere on the hot path. Recording threads are expected to own
/// their histogram (one per worker or per serving loop, merged at read
/// time); the atomics exist so a concurrent [`Histogram::snapshot`]
/// from a scraping thread is race-free, not to make cross-thread
/// recording into one array fast. The bucket array is padded as a
/// unit so adjacent histograms never share its head cache line.
pub struct Histogram {
    buckets: CachePadded<Box<[AtomicU64]>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        let buckets: Box<[AtomicU64]> = (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: CachePadded::new(buckets),
        }
    }

    /// Records one observation. Wait-free; safe to race with
    /// [`Histogram::snapshot`] from another thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Adds every count of `other` into `self`.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// A point-in-time copy of the bucket counts. Racing recorders are
    /// fine: each bucket is read atomically, and a record that lands
    /// mid-snapshot is either in this snapshot or the next.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Convenience: `snapshot().quantile(q)`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }
}

/// An owned, plain-integer copy of a [`Histogram`]'s buckets — what
/// travels in a `StatsReply` and what reports compute quantiles from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with every bucket at zero.
    pub fn empty() -> Self {
        Self {
            counts: vec![0; HIST_BUCKETS],
        }
    }

    /// Rebuilds a snapshot from sparse `(bucket, count)` pairs.
    /// Returns `None` on any out-of-range bucket index — the decode
    /// path for scraped payloads is total, like the wire layer's.
    pub fn from_sparse(pairs: &[(u16, u64)]) -> Option<Self> {
        let mut snap = Self::empty();
        for &(idx, count) in pairs {
            let slot = snap.counts.get_mut(idx as usize)?;
            *slot = slot.checked_add(count)?;
        }
        Some(snap)
    }

    /// The nonempty `(bucket, count)` pairs, in bucket order.
    pub fn nonempty(&self) -> impl Iterator<Item = (u16, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i as u16, c))
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds every count of `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest rank, reported as the
    /// containing bucket's midpoint — within [`HIST_MAX_REL_ERROR`] of
    /// the true sample quantile. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_rep(idx));
            }
        }
        unreachable!("cumulative count reached total before the last bucket")
    }

    /// The largest recorded value's bucket midpoint (`quantile(1.0)`).
    pub fn max(&self) -> Option<u64> {
        self.quantile(1.0)
    }
}

// ---------------------------------------------------------------------------
// Named-metric registry
// ---------------------------------------------------------------------------

/// A padded `Relaxed` event counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: CachePadded<AtomicU64>,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self {
            v: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A node's named metrics: counters and histograms, registered once at
/// startup (get-or-create under a mutex) and updated lock-free through
/// the returned [`Arc`] handles. [`Registry::snapshot`] is what the
/// `Stats` wire op serializes.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Arc<Counter>)>,
    hists: Vec<(String, Arc<Histogram>)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        // Registration and scraping never panic while holding the
        // lock, but a poisoned mutex should not take the metrics path
        // down with it.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter named `name`, created on first use. Registration
    /// order is snapshot order.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.locked();
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        inner.counters.push((name.to_string(), Arc::clone(&c)));
        c
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.locked();
        if let Some((_, h)) = inner.hists.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        inner.hists.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.locked();
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            hists: inner
                .hists
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A scraped copy of a [`Registry`]: named counter values and sparse
/// histogram buckets. This is the payload of the `StatsReply` wire
/// response; [`RegistrySnapshot::to_bytes`]/[`RegistrySnapshot::from_bytes`]
/// define its (little-endian, length-prefixed) encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// `(name, value)` per counter, in registration order.
    pub counters: Vec<(String, u64)>,
    /// `(name, buckets)` per histogram, in registration order.
    pub hists: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The buckets of histogram `name`, if present.
    pub fn hist(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Serializes the snapshot: `u16` counter count, then per counter
    /// `u8` name length + name + `u64` value; `u16` histogram count,
    /// then per histogram `u8` name length + name + `u32` pair count +
    /// sparse `(u16 bucket, u64 count)` pairs. Names longer than 255
    /// bytes are truncated at a char boundary.
    pub fn to_bytes(&self) -> Vec<u8> {
        fn push_name(out: &mut Vec<u8>, name: &str) {
            let mut end = name.len().min(255);
            while !name.is_char_boundary(end) {
                end -= 1;
            }
            out.push(end as u8);
            out.extend_from_slice(&name.as_bytes()[..end]);
        }
        let mut out = Vec::new();
        out.extend_from_slice(&(self.counters.len().min(u16::MAX as usize) as u16).to_le_bytes());
        for (name, value) in self.counters.iter().take(u16::MAX as usize) {
            push_name(&mut out, name);
            out.extend_from_slice(&value.to_le_bytes());
        }
        out.extend_from_slice(&(self.hists.len().min(u16::MAX as usize) as u16).to_le_bytes());
        for (name, snap) in self.hists.iter().take(u16::MAX as usize) {
            push_name(&mut out, name);
            let pairs: Vec<(u16, u64)> = snap.nonempty().collect();
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (idx, count) in pairs {
                out.extend_from_slice(&idx.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a serialized snapshot. Total: any truncation, non-UTF-8
    /// name, or out-of-range bucket index yields `None`, never a
    /// panic — scraped bytes are input, and input is never trusted.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        struct Cursor<'a>(&'a [u8]);
        impl<'a> Cursor<'a> {
            fn take(&mut self, n: usize) -> Option<&'a [u8]> {
                if self.0.len() < n {
                    return None;
                }
                let (head, rest) = self.0.split_at(n);
                self.0 = rest;
                Some(head)
            }
            fn u8(&mut self) -> Option<u8> {
                Some(self.take(1)?[0])
            }
            fn u16(&mut self) -> Option<u16> {
                Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
            }
            fn u32(&mut self) -> Option<u32> {
                Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
            }
            fn u64(&mut self) -> Option<u64> {
                Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
            }
            fn name(&mut self) -> Option<String> {
                let len = self.u8()? as usize;
                let raw = self.take(len)?;
                String::from_utf8(raw.to_vec()).ok()
            }
        }
        let mut cur = Cursor(bytes);
        let n_counters = cur.u16()?;
        let mut counters = Vec::with_capacity(n_counters as usize);
        for _ in 0..n_counters {
            let name = cur.name()?;
            counters.push((name, cur.u64()?));
        }
        let n_hists = cur.u16()?;
        let mut hists = Vec::with_capacity(n_hists as usize);
        for _ in 0..n_hists {
            let name = cur.name()?;
            let n_pairs = cur.u32()?;
            let mut pairs = Vec::with_capacity((n_pairs as usize).min(HIST_BUCKETS));
            for _ in 0..n_pairs {
                let idx = cur.u16()?;
                pairs.push((idx, cur.u64()?));
            }
            hists.push((name, HistogramSnapshot::from_sparse(&pairs)?));
        }
        if !cur.0.is_empty() {
            return None;
        }
        Some(Self { counters, hists })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.rsd(), 0.0);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - 1.2909944487358056).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_of_durations_is_in_milliseconds() {
        let s = Summary::of_durations_ms(&[
            core::time::Duration::from_millis(2),
            core::time::Duration::from_millis(4),
        ])
        .unwrap();
        assert!((s.mean - 3.0).abs() < 1e-9);
        assert!(Summary::of_durations_ms(&[]).is_none());
    }

    #[test]
    fn quantiles() {
        let mut v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&mut v, 0.0), Some(1.0));
        assert_eq!(quantile(&mut v, 1.0), Some(4.0));
        assert_eq!(quantile(&mut v, 0.5), Some(2.5));
    }

    #[test]
    fn geo_mean_basic() {
        let g = geo_mean(&[1.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-9);
        assert!(geo_mean(&[1.0, 0.0]).is_none());
        assert!(geo_mean(&[]).is_none());
    }

    #[test]
    fn quantile_with_nan_is_none_not_a_panic() {
        let mut v = vec![1.0, f64::NAN, 3.0];
        assert_eq!(quantile(&mut v, 0.5), None);
        let mut ok = vec![1.0, 3.0];
        assert_eq!(quantile(&mut ok, 0.5), Some(2.0));
    }

    #[test]
    fn bucket_index_is_monotone_and_matches_bounds() {
        // Every bucket's bounds contain exactly the values that map to
        // it; indices never decrease as values grow.
        let mut samples: Vec<u64> = (0..64u32)
            .flat_map(|exp| {
                [
                    1u64 << exp,
                    (1u64 << exp) + 1,
                    (1u64 << exp).wrapping_mul(2).wrapping_sub(1),
                ]
            })
            .collect();
        samples.sort_unstable();
        let mut last = 0usize;
        for v in samples {
            let idx = bucket_index(v);
            assert!(idx >= last, "index regressed at {v}");
            last = idx;
            let (lo, hi) = bucket_bounds(idx);
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "{v} outside [{lo},{hi})"
            );
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_are_within_the_relative_error_bound() {
        // A deterministic skewed sample (quadratic growth spans several
        // major buckets); compare against exact nearest-rank quantiles.
        let samples: Vec<u64> = (1..=10_000u64).map(|i| 50 + i * i / 7).collect();
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let est = h.quantile(q).unwrap() as f64;
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= HIST_MAX_REL_ERROR,
                "q={q}: est {est} vs exact {exact} (rel {rel})"
            );
        }
        assert_eq!(h.count(), samples.len() as u64);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let mk = |seed: u64, n: u64| {
            let h = Histogram::new();
            for i in 0..n {
                h.record(seed.wrapping_mul(i + 1) % 1_000_000);
            }
            h.snapshot()
        };
        let (a, b, c) = (mk(3, 100), mk(7, 200), mk(11, 50));
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // c + b + a
        let mut rev = c.clone();
        rev.merge(&b);
        rev.merge(&a);
        assert_eq!(left, rev);
        assert_eq!(left.count(), a.count() + b.count() + c.count());
    }

    #[test]
    fn empty_histogram_quantile_is_none() {
        assert_eq!(Histogram::new().quantile(0.5), None);
        assert_eq!(HistogramSnapshot::empty().max(), None);
    }

    #[test]
    fn registry_snapshot_roundtrips_through_bytes() {
        let reg = Registry::new();
        let reqs = reg.counter("srv.requests");
        reqs.add(42);
        reg.counter("srv.malformed"); // zero-valued counters survive
        let lat = reg.histogram("srv.apply_ns");
        for v in [3u64, 900, 70_000, 70_001, u64::MAX] {
            lat.record(v);
        }
        let snap = reg.snapshot();
        let bytes = snap.to_bytes();
        let back = RegistrySnapshot::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, snap);
        assert_eq!(back.counter("srv.requests"), Some(42));
        assert_eq!(back.counter("srv.malformed"), Some(0));
        assert_eq!(back.hist("srv.apply_ns").unwrap().count(), 5);
        // Same handle on re-registration.
        reg.counter("srv.requests").inc();
        assert_eq!(reg.snapshot().counter("srv.requests"), Some(43));
    }

    #[test]
    fn snapshot_decode_is_total_on_garbage() {
        assert_eq!(RegistrySnapshot::from_bytes(&[7]), None); // truncated
                                                              // Bucket index out of range.
        let mut bad = RegistrySnapshot::default();
        bad.hists.push(("h".into(), HistogramSnapshot::empty()));
        let mut bytes = bad.to_bytes();
        // Append a pair with an out-of-range index by hand.
        let len = bytes.len();
        bytes[len - 4..].copy_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&u16::MAX.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        assert_eq!(RegistrySnapshot::from_bytes(&bytes), None);
        // Trailing garbage after a valid snapshot.
        let mut ok = RegistrySnapshot::default().to_bytes();
        ok.push(0);
        assert_eq!(RegistrySnapshot::from_bytes(&ok), None);
    }

    #[test]
    fn mono_ns_is_monotone_and_shared_across_threads() {
        let a = mono_ns();
        let b = std::thread::spawn(mono_ns).join().unwrap();
        let c = mono_ns();
        assert!(a <= b && b <= c);
    }
}

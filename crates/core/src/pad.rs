//! Cache-line padding.
//!
//! Synchronization variables that are written by different cores must not
//! share a cache line, or every write by one core invalidates the other
//! core's copy ("false sharing"). The paper's `libslock` pads every
//! per-thread queue node and every lock word to a cache line; this module
//! provides the equivalent wrapper.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes.
///
/// 128 rather than 64 bytes: Intel's adjacent-line ("spatial") prefetcher
/// pulls cache lines in pairs, so two logically-independent 64-byte lines
/// can still ping-pong. Aligning to two lines defeats that, at a small
/// memory cost — the same trade-off `libslock` makes with its
/// `CACHE_LINE_SIZE`-sized lock structs.
///
/// # Examples
///
/// ```
/// use ssync_core::CachePadded;
/// use std::sync::atomic::AtomicUsize;
///
/// let counter = CachePadded::new(AtomicUsize::new(0));
/// assert_eq!(core::mem::align_of_val(&counter), 128);
/// ```
#[derive(Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

// SAFETY: `CachePadded<T>` is a transparent-by-behaviour wrapper; it adds
// alignment only, so it is `Send`/`Sync` exactly when `T` is. These impls
// restate the auto-derived bounds explicitly for documentation purposes.
unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-aligned cell.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        Self::new(self.value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_two_cache_lines() {
        assert_eq!(core::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(core::mem::size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(7usize);
        assert_eq!(*p, 7);
        *p = 9;
        assert_eq!(p.into_inner(), 9);
    }

    #[test]
    fn adjacent_elements_do_not_share_lines() {
        let v = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let a = &*v[0] as *const u8 as usize;
        let b = &*v[1] as *const u8 as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn debug_and_clone() {
        let p = CachePadded::new(3);
        let q = p.clone();
        assert_eq!(format!("{q:?}"), "CachePadded(3)");
    }
}

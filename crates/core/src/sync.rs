//! The workspace's atomic facade.
//!
//! Every lock-free path in the workspace imports its atomics from here
//! (directly, or through a crate-local `crate::sync` re-export) instead
//! of from `core::sync::atomic`:
//!
//! * **Production builds** re-export the real `core::sync::atomic`
//!   types. The facade is `pub use` only — codegen is byte-identical to
//!   importing std directly.
//! * **Under `RUSTFLAGS='--cfg ssync_chk'`** the same names resolve to
//!   the `ssync-chk` shadow atomics, which route every load/store/RMW
//!   through the model checker's deterministic scheduler whenever a
//!   model execution is active on the calling thread (and fall through
//!   to the real atomics otherwise, so ordinary tests still pass under
//!   the cfg).
//!
//! `Ordering` is the std enum in both configurations, so code mixing
//! facade atomics with explicitly std-imported `Ordering` still
//! compiles either way.

/// Model-aware spin hint. Production builds emit
/// `core::hint::spin_loop()`; under `--cfg ssync_chk` each call is one
/// scheduler yield instead. This is loom's rule applied here: a spin
/// loop that never yields looks to an exhaustive checker like an
/// unbounded run of one thread and trips the step limit, while a yield
/// suspends the spinner until some other thread makes a step — exactly
/// the fairness a real spin loop gets from the coherence fabric.
/// Every polling loop on a facade atomic must pause through this (or
/// through a `Backoff`/`SpinWait` flavor, which do the same).
#[inline]
pub fn cpu_relax() {
    #[cfg(ssync_chk)]
    ssync_chk::thread::yield_now();
    #[cfg(not(ssync_chk))]
    core::hint::spin_loop();
}

#[cfg(not(ssync_chk))]
pub mod atomic {
    pub use core::sync::atomic::{
        AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}

#[cfg(ssync_chk)]
pub mod atomic {
    pub use ssync_chk::sync::atomic::{
        AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}

//! Host core-count probes for tests and benchmarks.
//!
//! The paper's experiments pin one thread per hardware context; this
//! workspace's *native* tests (lock torture, channel ping-pong,
//! cross-crate stress) inherit that assumption but must still pass on
//! small CI boxes and laptops. These helpers let a test scale its
//! thread count to the host — or skip an assertion that is only
//! meaningful with real parallelism — instead of failing or livelocking
//! on a machine with one or two cores.

use std::num::NonZeroUsize;

/// Number of hardware threads the OS will schedule us on.
///
/// Falls back to 1 when the platform cannot report it, which is the
/// conservative choice for gating purposes.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// True when the host has at least `n` schedulable hardware threads.
///
/// Tests that *require* real parallelism (for example, asserting that
/// concurrent progress happens without preemption) should early-return
/// when this is false rather than flake:
///
/// ```
/// if !ssync_core::cores::has_cores(3) {
///     eprintln!("skipping: needs >2 physical cores");
///     return;
/// }
/// ```
pub fn has_cores(n: usize) -> bool {
    available_cores() >= n
}

/// Scales a test's requested thread count to the host:
/// `min(requested, available cores)`, then clamped up to 2 so that
/// concurrency is still exercised everywhere — meaning a `requested`
/// of 0 or 1 still yields 2. For a strictly serial run, don't call
/// this; spawn the one thread directly.
///
/// Oversubscription tests (more threads than cores *on purpose*)
/// should not use this either — they encode their thread count
/// directly.
pub fn test_threads(requested: usize) -> usize {
    requested.min(available_cores()).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_is_positive() {
        assert!(available_cores() >= 1);
    }

    #[test]
    fn test_threads_bounds() {
        assert_eq!(test_threads(1), 2);
        assert!(test_threads(64) >= 2);
        assert!(test_threads(64) <= 64.max(available_cores()));
        let cores = available_cores();
        assert_eq!(test_threads(usize::MAX), cores.max(2));
    }

    #[test]
    fn has_cores_is_monotone() {
        assert!(has_cores(1));
        if has_cores(8) {
            assert!(has_cores(4));
        }
    }
}

//! # ssync-core
//!
//! Shared primitives for the SSYNC-RS workspace, the Rust reproduction of
//! the SOSP'13 study *"Everything You Always Wanted to Know About
//! Synchronization but Were Afraid to Ask"* (David, Guerraoui, Trigonakis).
//!
//! This crate holds the pieces that every other crate needs:
//!
//! * [`CachePadded`] — cache-line sized alignment wrapper, the basic tool
//!   for avoiding false sharing in every lock and message-passing buffer.
//! * [`Backoff`] — exponential and proportional back-off, as used by the
//!   TTAS and ticket locks of the paper's `libslock`.
//! * [`topology`] — descriptions of the paper's four target platforms
//!   (Table 1): core counts, socket/die structure, hop distances, memory
//!   nodes, and the thread-placement policies of Sections 5.4 and 6.
//! * [`stats`] — small statistics helpers used by the benchmark harnesses.
//! * [`cores`] — host core-count probes, so native stress tests scale to
//!   the machine instead of failing on small ones.

pub mod backoff;
pub mod cores;
pub mod pad;
pub mod stats;
pub mod topology;

pub use backoff::{Backoff, ProportionalBackoff, SpinWait};
pub use pad::CachePadded;
pub use topology::{DistClass, Platform, Topology};

/// The cache-line size assumed throughout the workspace, in bytes.
///
/// All four platforms of the paper use 64-byte coherence granules. Message
/// buffers and per-thread lock slots are sized in units of this constant.
pub const CACHE_LINE_SIZE: usize = 64;

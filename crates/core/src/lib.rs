//! # ssync-core
//!
//! Shared primitives for the SSYNC-RS workspace, the Rust reproduction of
//! the SOSP'13 study *"Everything You Always Wanted to Know About
//! Synchronization but Were Afraid to Ask"* (David, Guerraoui, Trigonakis).
//!
//! This crate holds the pieces that every other crate needs:
//!
//! * [`CachePadded`] — cache-line sized alignment wrapper, the basic tool
//!   for avoiding false sharing in every lock and message-passing buffer.
//! * [`Backoff`] — exponential and proportional back-off, as used by the
//!   TTAS and ticket locks of the paper's `libslock`.
//! * [`epoch`] — epoch-based reclamation ([`EpochDomain`], [`EpochBags`])
//!   for the stores' lock-free read paths: per-participant `CachePadded`
//!   pin records, a two-epoch grace period, three-generation bags.
//! * [`topology`] — descriptions of the paper's four target platforms
//!   (Table 1): core counts, socket/die structure, hop distances, memory
//!   nodes, and the thread-placement policies of Sections 5.4 and 6.
//! * [`stats`] — summary statistics for the benchmark harnesses plus the
//!   observability layer: the log-bucketed [`Histogram`], the named-metric
//!   [`Registry`] serving loops register into, and the [`mono_ns`]
//!   timebase open-loop latency stamps share.
//! * [`cores`] — host core-count probes, so native stress tests scale to
//!   the machine instead of failing on small ones.

pub mod backoff;
pub mod cores;
pub mod epoch;
pub mod pad;
pub mod stats;
pub mod sync;
pub mod topology;

pub use backoff::{Backoff, ParkingWait, ProportionalBackoff, RetryPacer, SpinWait};
pub use epoch::{EpochBags, EpochDomain, PinGuard};
pub use pad::CachePadded;
pub use stats::{mono_ns, Counter, Histogram, HistogramSnapshot, Registry, RegistrySnapshot};
pub use topology::{DistClass, Platform, Topology};

/// The cache-line size assumed throughout the workspace, in bytes.
///
/// All four platforms of the paper use 64-byte coherence granules. Message
/// buffers and per-thread lock slots are sized in units of this constant.
pub const CACHE_LINE_SIZE: usize = 64;

/// The SplitMix64 finalizer: a fast, high-quality bijective mix of a
/// 64-bit word (Stafford's mix13 variant, the one `splitmix64` uses).
///
/// This is the workspace's one integer-hash primitive — shard routing
/// and workload rank scrambling both derive their hash families from it
/// by adding distinct offsets *before* the call, so the two stay
/// decorrelated but never drift apart structurally.
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::mix64;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(0), mix64(0));
        // A bijective finalizer maps a dense range without collisions.
        let mut seen: Vec<u64> = (0..512).map(mix64).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 512);
        // And flips roughly half the bits between neighbors.
        let d = (mix64(1) ^ mix64(2)).count_ones();
        assert!((16..=48).contains(&d), "poor avalanche: {d} bits");
    }
}

//! Coherence state transitions.
//!
//! [`apply`] mutates a line's directory record according to the operation
//! a core performs on it, following the protocol rules of Section 2 and 3
//! of the paper:
//!
//! * All four platforms: loads on Invalid install Exclusive; loads on
//!   Exclusive/Shared add a sharer; any write-class operation (store,
//!   atomic, `prefetchw`) invalidates all other copies and installs
//!   Modified at the writer.
//! * Opteron (MOESI): a load on a remotely Modified line moves it to
//!   *Owned* — the owner keeps its dirty copy and the requester receives
//!   a Shared copy, with no memory write-back.
//! * Xeon/Niagara/Tilera (MESI-family): a load on a remotely Modified
//!   line writes back and degrades the line to Shared. (The Xeon's
//!   Forward state is folded into Shared; see [`crate::memory::CohState`].)

use ssync_core::Platform;

use crate::memory::{CohState, Line, SharerSet};
use crate::program::MemOpKind;

/// Applies the state transition for `core` performing `op` on `line`.
///
/// The 64-bit value semantics (what a CAS/FAI/TAS/SWAP returns and
/// stores) are handled by the engine; this function only maintains the
/// coherence metadata.
pub fn apply(platform: Platform, line: &mut Line, core: usize, op: MemOpKind) {
    match op {
        MemOpKind::Load => apply_load(platform, line, core),
        MemOpKind::Store
        | MemOpKind::Cas
        | MemOpKind::Fai
        | MemOpKind::Tas
        | MemOpKind::Swap
        | MemOpKind::Prefetchw => apply_write(line, core),
        MemOpKind::Flush => {
            line.state = CohState::Invalid;
            line.owner = None;
            line.sharers.clear();
        }
    }
}

fn apply_load(platform: Platform, line: &mut Line, core: usize) {
    match line.state {
        CohState::Invalid => {
            line.state = CohState::Exclusive;
            line.owner = Some(core);
            line.sharers = SharerSet::EMPTY;
        }
        CohState::Exclusive => {
            if line.owner != Some(core) {
                // Second reader: both become sharers.
                let owner = line.owner.expect("E line has an owner");
                line.state = CohState::Shared;
                line.sharers.add(owner);
                line.sharers.add(core);
                line.owner = None;
            }
        }
        CohState::Modified => {
            if line.owner != Some(core) {
                let owner = line.owner.expect("M line has an owner");
                if matches!(platform, Platform::Opteron | Platform::Opteron2) {
                    // MOESI: the dirty copy stays with the owner (now O);
                    // the requester gets a shared copy.
                    line.state = CohState::Owned;
                    line.sharers.add(core);
                } else {
                    // MESI: write back, both become sharers.
                    line.state = CohState::Shared;
                    line.sharers.add(owner);
                    line.sharers.add(core);
                    line.owner = None;
                }
            }
        }
        CohState::Owned => {
            if line.owner != Some(core) {
                line.sharers.add(core);
            }
        }
        CohState::Shared => {
            line.sharers.add(core);
        }
    }
}

fn apply_write(line: &mut Line, core: usize) {
    // Any write-class operation ends with the writer holding the only
    // valid copy in Modified state (request-for-ownership + invalidation
    // of every other copy).
    line.state = CohState::Modified;
    line.owner = Some(core);
    line.sharers.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Memory;

    fn fresh() -> (Memory, crate::memory::LineId) {
        let mut m = Memory::new();
        let id = m.alloc(0);
        (m, id)
    }

    #[test]
    fn load_on_invalid_installs_exclusive() {
        let (mut m, id) = fresh();
        apply(Platform::Xeon, m.line_mut(id), 3, MemOpKind::Load);
        let l = m.line(id);
        assert_eq!(l.state, CohState::Exclusive);
        assert_eq!(l.owner, Some(3));
    }

    #[test]
    fn second_load_shares() {
        let (mut m, id) = fresh();
        apply(Platform::Xeon, m.line_mut(id), 3, MemOpKind::Load);
        apply(Platform::Xeon, m.line_mut(id), 5, MemOpKind::Load);
        let l = m.line(id);
        assert_eq!(l.state, CohState::Shared);
        assert!(l.sharers.contains(3) && l.sharers.contains(5));
        assert_eq!(l.owner, None);
    }

    #[test]
    fn store_installs_modified_and_invalidates() {
        let (mut m, id) = fresh();
        apply(Platform::Xeon, m.line_mut(id), 3, MemOpKind::Load);
        apply(Platform::Xeon, m.line_mut(id), 5, MemOpKind::Load);
        apply(Platform::Xeon, m.line_mut(id), 7, MemOpKind::Store);
        let l = m.line(id);
        assert_eq!(l.state, CohState::Modified);
        assert_eq!(l.owner, Some(7));
        assert!(l.sharers.is_empty());
    }

    #[test]
    fn moesi_load_on_modified_keeps_dirty_owner() {
        let (mut m, id) = fresh();
        apply(Platform::Opteron, m.line_mut(id), 2, MemOpKind::Store);
        apply(Platform::Opteron, m.line_mut(id), 9, MemOpKind::Load);
        let l = m.line(id);
        assert_eq!(l.state, CohState::Owned);
        assert_eq!(l.owner, Some(2));
        assert!(l.sharers.contains(9));
    }

    #[test]
    fn mesi_load_on_modified_degrades_to_shared() {
        let (mut m, id) = fresh();
        apply(Platform::Tilera, m.line_mut(id), 2, MemOpKind::Store);
        apply(Platform::Tilera, m.line_mut(id), 9, MemOpKind::Load);
        let l = m.line(id);
        assert_eq!(l.state, CohState::Shared);
        assert!(l.sharers.contains(2) && l.sharers.contains(9));
    }

    #[test]
    fn owner_reload_is_a_noop() {
        let (mut m, id) = fresh();
        apply(Platform::Xeon, m.line_mut(id), 2, MemOpKind::Store);
        apply(Platform::Xeon, m.line_mut(id), 2, MemOpKind::Load);
        let l = m.line(id);
        assert_eq!(l.state, CohState::Modified);
        assert_eq!(l.owner, Some(2));
    }

    #[test]
    fn atomics_behave_like_stores() {
        let (mut m, id) = fresh();
        for op in [
            MemOpKind::Cas,
            MemOpKind::Fai,
            MemOpKind::Tas,
            MemOpKind::Swap,
        ] {
            apply(Platform::Niagara, m.line_mut(id), 4, MemOpKind::Load);
            apply(Platform::Niagara, m.line_mut(id), 6, op);
            let l = m.line(id);
            assert_eq!(l.state, CohState::Modified);
            assert_eq!(l.owner, Some(6));
            assert!(l.sharers.is_empty());
        }
    }

    #[test]
    fn prefetchw_takes_ownership() {
        let (mut m, id) = fresh();
        apply(Platform::Opteron, m.line_mut(id), 2, MemOpKind::Store);
        apply(Platform::Opteron, m.line_mut(id), 9, MemOpKind::Load);
        apply(Platform::Opteron, m.line_mut(id), 9, MemOpKind::Prefetchw);
        let l = m.line(id);
        assert_eq!(l.state, CohState::Modified);
        assert_eq!(l.owner, Some(9));
        assert!(l.sharers.is_empty());
    }

    #[test]
    fn flush_invalidates() {
        let (mut m, id) = fresh();
        apply(Platform::Xeon, m.line_mut(id), 2, MemOpKind::Store);
        apply(Platform::Xeon, m.line_mut(id), 2, MemOpKind::Flush);
        let l = m.line(id);
        assert_eq!(l.state, CohState::Invalid);
        assert_eq!(l.owner, None);
        assert!(l.sharers.is_empty());
    }

    #[test]
    fn owned_line_extra_readers_accumulate() {
        let (mut m, id) = fresh();
        apply(Platform::Opteron, m.line_mut(id), 0, MemOpKind::Store);
        for c in [6, 12, 18] {
            apply(Platform::Opteron, m.line_mut(id), c, MemOpKind::Load);
        }
        let l = m.line(id);
        assert_eq!(l.state, CohState::Owned);
        assert_eq!(l.owner, Some(0));
        assert_eq!(l.sharers.count(), 3);
    }
}

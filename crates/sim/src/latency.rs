//! The per-platform cost model: Tables 2 and 3 of the paper, as code.
//!
//! [`LatencyModel::cost`] answers: *how many cycles does it take core C to
//! perform operation OP on a line in state S, given the line's owner,
//! sharers and home node?* The answer transcribes the paper's measured
//! tables plus the prose rules of Section 5:
//!
//! * **Opteron** — every transaction consults the home die's directory
//!   (probe filter). Latencies are indexed by the requester's distance to
//!   the *home* die, with a penalty when the owner is remote from the
//!   directory (Section 5.2: "if the directory is remote to both cores,
//!   the latencies increase proportionally to the distance"). Stores and
//!   atomics on Owned/Shared lines pay a **broadcast** (~3× a plain
//!   store) because the incomplete directory cannot tell whether sharing
//!   is node-local — the paper's key Opteron pathology.
//! * **Xeon** — within a socket the inclusive LLC serves everything
//!   locally; across sockets a snoop broadcast makes remote loads up to
//!   7.5× dearer. Write-class ops on lines shared by many sockets pay a
//!   small per-socket invalidation term (445 cycles when all 80 cores
//!   share, Section 5.2).
//! * **Niagara** — uniform: everything is an L1 (3) or L2 (24) access;
//!   atomics have per-operation costs (hardware TAS is the cheapest; FAI
//!   and SWAP are CAS-based and dearer).
//! * **Tilera** — costs grow with the mesh distance to the line's *home
//!   tile* (~2 cycles/hop) and, for write-class ops on shared lines, with
//!   the number of sharers to invalidate (up to ~200 cycles at 36
//!   sharers, Section 5.2).

use ssync_core::topology::{DistClass, Platform, Topology};

use crate::memory::{CohState, Line};
use crate::program::MemOpKind;

/// The cost of one memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cost {
    /// Cycles until the requesting core can proceed.
    pub latency: u64,
    /// Cycles the line's directory/bus slot stays busy (serialization
    /// with other requests for the same line).
    pub occupancy: u64,
    /// False for local cache hits, which neither wait for nor occupy the
    /// line's serialization slot.
    pub uses_line: bool,
}

impl Cost {
    fn local(latency: u64) -> Self {
        Cost {
            latency,
            occupancy: 0,
            uses_line: false,
        }
    }

    fn shared_read(latency: u64) -> Self {
        // Reads served by the LLC/directory without a dirty-owner probe
        // occupy the directory only briefly; concurrent readers mostly
        // proceed in parallel.
        Cost {
            latency,
            occupancy: LLC_READ_OCCUPANCY,
            uses_line: true,
        }
    }

    fn probe_read(latency: u64) -> Self {
        // Reads that pull data out of a remote dirty copy serialize for
        // about half their duration (the line transfer itself).
        Cost {
            latency,
            occupancy: latency / 2,
            uses_line: true,
        }
    }

    fn write(latency: u64) -> Self {
        // Write-class operations hold the line's directory slot for their
        // full duration: they are the serialization bottleneck the
        // paper's contended experiments expose.
        Cost {
            latency,
            occupancy: latency,
            uses_line: true,
        }
    }
}

/// Directory-slot occupancy of an LLC-served read, in cycles.
const LLC_READ_OCCUPANCY: u64 = 10;

/// Cost of an atomic operation on a locally Modified/Exclusive line on
/// the multi-sockets (x86 `lock`-prefixed op hitting L1, including the
/// implied fence) — Section 5.4 reports contended latency rising "from
/// approximately 20 to 120 cycles", 20 being this local case.
const X86_LOCAL_ATOMIC: u64 = 20;

/// Suspend cost charged to a parking thread (futex wait syscall path).
const PARK_COST: u64 = 1_000;

/// Cost charged to the thread executing an unpark (futex wake).
const UNPARK_COST: u64 = 300;

/// Delay between an unpark and the woken thread running again
/// (wake-up IPI plus scheduler latency).
const WAKE_LATENCY: u64 = 2_500;

/// Flat lookup tables precomputed from the platform topology, so that
/// the per-operation cost path is pure indexing — no die arithmetic, no
/// hypercube/XOR distance logic, no Manhattan-distance computation per
/// memory access (the `mem_op` hot path runs millions of times per
/// simulated window).
#[derive(Debug, Clone)]
struct DistMap {
    n_dies: usize,
    n_cores: usize,
    /// Die (socket) of each core.
    die_of: Vec<u8>,
    /// Physical core of each hardware context (Niagara: `core / 8`).
    phys_of: Vec<u16>,
    /// `[die_a * n_dies + die_b]` → Table 2 column index (Opteron
    /// 0..=3, Xeon 0..=2; unused on the single-sockets).
    die_class: Vec<u8>,
    /// `[die_a * n_dies + die_b]` → interconnect hops (the Opteron
    /// remote-directory penalty).
    die_hops: Vec<u8>,
    /// Tilera only: `[core * n_cores + tile]` → mesh hops (empty on the
    /// other platforms).
    mesh: Vec<u8>,
}

impl DistMap {
    fn new(topo: &Topology) -> Self {
        let n_cores = topo.num_cores();
        let n_dies = topo.num_dies();
        let die_of: Vec<u8> = (0..n_cores).map(|c| topo.die_of(c) as u8).collect();
        let phys_of: Vec<u16> = (0..n_cores)
            .map(|c| topo.physical_core_of(c) as u16)
            .collect();
        let mut die_class = vec![0u8; n_dies * n_dies];
        let mut die_hops = vec![0u8; n_dies * n_dies];
        for a in 0..n_dies {
            for b in 0..n_dies {
                if a == b {
                    continue;
                }
                die_class[a * n_dies + b] = match topo.platform() {
                    Platform::Opteron | Platform::Opteron2 => match topo.die_distance(a, b) {
                        DistClass::SameMcm => 1,
                        DistClass::OneHop => 2,
                        DistClass::TwoHops => 3,
                        _ => 0,
                    },
                    Platform::Xeon | Platform::Xeon2 => match topo.die_distance(a, b) {
                        DistClass::OneHop => 1,
                        _ => 2,
                    },
                    Platform::Niagara | Platform::Tilera => 0,
                };
                die_hops[a * n_dies + b] = match topo.platform() {
                    Platform::Niagara | Platform::Tilera => 0,
                    _ => match topo.die_distance(a, b) {
                        DistClass::TwoHops => 2,
                        _ => 1,
                    },
                };
            }
        }
        let mesh = if topo.platform() == Platform::Tilera {
            let mut m = vec![0u8; n_cores * n_cores];
            for a in 0..n_cores {
                for b in 0..n_cores {
                    m[a * n_cores + b] = topo.mesh_hops(a, b);
                }
            }
            m
        } else {
            Vec::new()
        };
        Self {
            n_dies,
            n_cores,
            die_of,
            phys_of,
            die_class,
            die_hops,
            mesh,
        }
    }

    #[inline]
    fn die_of(&self, core: usize) -> usize {
        self.die_of[core] as usize
    }

    #[inline]
    fn phys_of(&self, core: usize) -> usize {
        self.phys_of[core] as usize
    }

    #[inline]
    fn die_class(&self, da: usize, db: usize) -> usize {
        self.die_class[da * self.n_dies + db] as usize
    }

    #[inline]
    fn die_hops(&self, da: usize, db: usize) -> u64 {
        u64::from(self.die_hops[da * self.n_dies + db])
    }

    #[inline]
    fn mesh_hops(&self, a: usize, b: usize) -> u64 {
        u64::from(self.mesh[a * self.n_cores + b])
    }
}

/// Per-platform latency model.
///
/// # Examples
///
/// ```
/// use ssync_core::Platform;
/// use ssync_sim::latency::LatencyModel;
///
/// let m = LatencyModel::new(Platform::Opteron);
/// assert_eq!(m.platform(), Platform::Opteron);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyModel {
    platform: Platform,
    map: DistMap,
    /// Latency of a load hitting the requester's own cached copy,
    /// derived from [`LatencyModel::cost`] at construction so it can
    /// never drift from the per-platform `Cost::local` values.
    cached_load: u64,
}

impl LatencyModel {
    /// Creates the model for `platform`, precomputing its distance
    /// tables from the platform topology.
    pub fn new(platform: Platform) -> Self {
        let topo = platform.topology();
        let mut model = Self {
            platform,
            map: DistMap::new(&topo),
            cached_load: 0,
        };
        // Probe the model itself with a line core 0 holds Exclusive.
        let probe = Line {
            state: CohState::Exclusive,
            owner: Some(0),
            sharers: crate::memory::SharerSet::EMPTY,
            home: 0,
            value: 0,
            busy_until: 0,
        };
        let cost = model.cost(&probe, 0, MemOpKind::Load);
        debug_assert!(!cost.uses_line, "a cached load must be a local hit");
        model.cached_load = cost.latency;
        model
    }

    /// The platform this model describes.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Cost charged to a thread suspending itself ([`crate::Action::Park`]).
    pub fn park_cost(&self) -> u64 {
        PARK_COST
    }

    /// Cost charged to a thread executing an [`crate::Action::Unpark`].
    pub fn unpark_cost(&self) -> u64 {
        UNPARK_COST
    }

    /// Delay until a woken thread resumes.
    pub fn wake_latency(&self) -> u64 {
        WAKE_LATENCY
    }

    /// Sender-side cost of a hardware message (Tilera iMesh).
    pub fn hw_send_cost(&self) -> u64 {
        10
    }

    /// In-flight latency of a hardware message across `hops` mesh hops.
    pub fn hw_flight(&self, hops: u8) -> u64 {
        40 + hops as u64
    }

    /// Receiver-side cost of draining a hardware message.
    pub fn hw_recv_cost(&self) -> u64 {
        10
    }

    /// Table 3: local load latencies (L1 / L2 / LLC / RAM), used by the
    /// `table03` reproduction and as anchors for the remote model.
    pub fn local_levels(&self) -> [(&'static str, u64); 4] {
        match self.platform {
            Platform::Opteron | Platform::Opteron2 => {
                [("L1", 3), ("L2", 15), ("LLC", 40), ("RAM", 136)]
            }
            Platform::Xeon | Platform::Xeon2 => [("L1", 5), ("L2", 11), ("LLC", 44), ("RAM", 355)],
            Platform::Niagara => [("L1", 3), ("L2", 11), ("LLC", 24), ("RAM", 176)],
            Platform::Tilera => [("L1", 2), ("L2", 11), ("LLC", 45), ("RAM", 118)],
        }
    }

    /// Latency of a load that hits the requester's own cached copy (the
    /// poll cost of a spinning waiter between invalidations).
    pub fn cached_load_latency(&self) -> u64 {
        self.cached_load
    }

    /// Die (socket) of `core`, from the precomputed tables.
    pub(crate) fn die_of(&self, core: usize) -> usize {
        self.map.die_of(core)
    }

    /// Physical core of hardware context `core`.
    pub(crate) fn phys_of(&self, core: usize) -> usize {
        self.map.phys_of(core)
    }

    /// Mesh hops between two Tilera tiles.
    pub(crate) fn mesh_hops(&self, a: usize, b: usize) -> u8 {
        self.map.mesh_hops(a, b) as u8
    }

    /// The cost for `core` to perform `op` on `line` (before the protocol
    /// transition is applied).
    pub fn cost(&self, line: &Line, core: usize, op: MemOpKind) -> Cost {
        let mut cost = match self.platform {
            Platform::Opteron | Platform::Opteron2 => self.cost_opteron(line, core, op),
            Platform::Xeon | Platform::Xeon2 => self.cost_xeon(line, core, op),
            Platform::Niagara => self.cost_niagara(line, core, op),
            Platform::Tilera => self.cost_tilera(line, core, op),
        };
        if op == MemOpKind::Prefetchw {
            // `prefetchw` is a non-binding ownership hint with no data
            // dependency at the requester; directories overlap these
            // transfers, so the hint occupies the line slot for only a
            // fraction of its latency (this is what makes the Section
            // 5.3 spin-with-prefetchw optimization profitable).
            cost.occupancy /= 3;
        }
        cost
    }

    // ----- Opteron (directory at the home die; MOESI) -----

    fn cost_opteron(&self, line: &Line, core: usize, op: MemOpKind) -> Cost {
        // Index into the Table 2 Opteron columns by the requester's
        // distance to the home (directory) die.
        let idx = self.map.die_class(self.map.die_of(core), line.home);
        // Penalty when the dirty owner is remote from the directory
        // ("one extra hop adds an additional overhead of 80 cycles"; we
        // use 60/hop, which reproduces the paper's 312-cycle worst case).
        let owner_penalty = match line.owner {
            Some(o) if !matches!(op, MemOpKind::Flush) => {
                60 * self.map.die_hops(self.map.die_of(o), line.home)
            }
            _ => 0,
        };
        match op {
            MemOpKind::Load => {
                if line.cached_at(core) {
                    return Cost::local(3);
                }
                match line.state {
                    CohState::Modified => {
                        Cost::probe_read(idx4(idx, [81, 161, 172, 252]) + owner_penalty)
                    }
                    CohState::Owned => {
                        Cost::probe_read(idx4(idx, [83, 163, 175, 254]) + owner_penalty)
                    }
                    CohState::Exclusive => {
                        Cost::probe_read(idx4(idx, [83, 163, 175, 253]) + owner_penalty)
                    }
                    CohState::Shared => Cost::shared_read(idx4(idx, [83, 164, 176, 254])),
                    CohState::Invalid => Cost::shared_read(idx4(idx, [136, 237, 247, 327])),
                }
            }
            MemOpKind::Store | MemOpKind::Prefetchw => match line.state {
                CohState::Modified | CohState::Exclusive => {
                    if line.owner == Some(core) {
                        Cost::local(3)
                    } else {
                        Cost::write(idx4(idx, [83, 172, 191, 273]) + owner_penalty)
                    }
                }
                // The incomplete directory cannot bound sharing to a node:
                // stores on Owned/Shared broadcast invalidations system-wide.
                CohState::Owned => Cost::write(idx4(idx, [244, 255, 286, 291])),
                CohState::Shared => Cost::write(idx4(idx, [246, 255, 286, 296])),
                CohState::Invalid => Cost::write(idx4(idx, [136, 237, 247, 327]) + 10),
            },
            MemOpKind::Cas | MemOpKind::Fai | MemOpKind::Tas | MemOpKind::Swap => {
                match line.state {
                    CohState::Modified | CohState::Exclusive => {
                        if line.owner == Some(core) {
                            Cost::write(X86_LOCAL_ATOMIC)
                        } else {
                            Cost::write(idx4(idx, [110, 197, 216, 296]) + owner_penalty)
                        }
                    }
                    CohState::Owned | CohState::Shared => {
                        Cost::write(idx4(idx, [272, 283, 312, 332]))
                    }
                    CohState::Invalid => Cost::write(idx4(idx, [136, 237, 247, 327]) + 20),
                }
            }
            MemOpKind::Flush => Cost::write(idx4(idx, [136, 237, 247, 327])),
        }
    }

    // ----- Xeon (inclusive LLC per socket; snoop broadcast across) -----

    fn cost_xeon(&self, line: &Line, core: usize, op: MemOpKind) -> Cost {
        // Distance to the socket currently holding the data: the owner's
        // socket for M/E, the nearest sharer's for S (the inclusive LLC of
        // any holder's socket can serve), the home socket for Invalid.
        let holder = line
            .owner
            .or_else(|| self.nearest_sharer(line, core))
            .map(|c| self.map.die_of(c));
        let data_die = holder.unwrap_or(line.home);
        let idx = self.map.die_class(self.map.die_of(core), data_die);
        // Broadcast invalidation term: extra sockets holding sharers.
        let inval = 3 * self.sharer_sockets(line).saturating_sub(1) as u64;
        match op {
            MemOpKind::Load => {
                if line.cached_at(core) {
                    return Cost::local(5);
                }
                match line.state {
                    CohState::Modified | CohState::Owned => {
                        Cost::probe_read(idx3(idx, [109, 289, 400]))
                    }
                    CohState::Exclusive => Cost::probe_read(idx3(idx, [92, 273, 383])),
                    CohState::Shared => Cost::shared_read(idx3(idx, [44, 223, 334])),
                    CohState::Invalid => Cost::shared_read(idx3(idx, [355, 492, 601])),
                }
            }
            MemOpKind::Store | MemOpKind::Prefetchw => match line.state {
                CohState::Modified | CohState::Owned => {
                    if line.owner == Some(core) {
                        Cost::local(5)
                    } else {
                        Cost::write(idx3(idx, [115, 320, 431]))
                    }
                }
                CohState::Exclusive => {
                    if line.owner == Some(core) {
                        Cost::local(5)
                    } else {
                        Cost::write(idx3(idx, [115, 315, 425]))
                    }
                }
                CohState::Shared => Cost::write(idx3(idx, [116, 318, 428]) + inval),
                CohState::Invalid => Cost::write(idx3(idx, [355, 492, 601]) + 10),
            },
            MemOpKind::Cas | MemOpKind::Fai | MemOpKind::Tas | MemOpKind::Swap => {
                match line.state {
                    CohState::Modified | CohState::Owned | CohState::Exclusive => {
                        if line.owner == Some(core) {
                            Cost::write(X86_LOCAL_ATOMIC)
                        } else {
                            Cost::write(idx3(idx, [120, 324, 430]))
                        }
                    }
                    CohState::Shared => Cost::write(idx3(idx, [113, 312, 423]) + inval),
                    CohState::Invalid => Cost::write(idx3(idx, [355, 492, 601]) + 20),
                }
            }
            MemOpKind::Flush => Cost::write(idx3(idx, [355, 492, 601])),
        }
    }

    // ----- Niagara (uniform crossbar LLC; per-op atomic costs) -----

    fn cost_niagara(&self, line: &Line, core: usize, op: MemOpKind) -> Cost {
        let same_core = self.holder_on_same_physical_core(line, core);
        match op {
            MemOpKind::Load => {
                if line.cached_at(core) || same_core {
                    // The L1 is shared among the 8 hardware threads of a core.
                    Cost::local(3)
                } else if line.state == CohState::Invalid {
                    Cost::shared_read(176)
                } else {
                    Cost::shared_read(24)
                }
            }
            MemOpKind::Store | MemOpKind::Prefetchw => {
                // Write-through L1: every store has the latency of the L2,
                // "regardless of the previous state of the cache line and
                // the number of sharers" (Section 5.2).
                if line.state == CohState::Invalid {
                    Cost::write(176)
                } else {
                    Cost::write(24)
                }
            }
            MemOpKind::Cas | MemOpKind::Fai | MemOpKind::Tas | MemOpKind::Swap => {
                // Per-operation costs from Table 2: [CAS, FAI, TAS, SWAP].
                // FAI and SWAP are CAS-based on SPARC; TAS is a cheap
                // hardware primitive.
                let dirty = matches!(
                    line.state,
                    CohState::Modified | CohState::Exclusive | CohState::Owned
                );
                let lat = match (dirty, same_core || line.cached_at(core)) {
                    (true, true) => op_pick(op, [71, 108, 64, 95]),
                    (true, false) => op_pick(op, [66, 99, 55, 90]),
                    (false, true) => op_pick(op, [76, 99, 67, 93]),
                    (false, false) => op_pick(op, [66, 99, 55, 90]),
                };
                if line.state == CohState::Invalid {
                    Cost::write(176 + 24)
                } else {
                    Cost::write(lat)
                }
            }
            MemOpKind::Flush => Cost::write(176),
        }
    }

    // ----- Tilera (distributed LLC at home tiles; per-hop costs) -----

    fn cost_tilera(&self, line: &Line, core: usize, op: MemOpKind) -> Cost {
        let hops = self.map.mesh_hops(core, line.home);
        match op {
            MemOpKind::Load => {
                if line.cached_at(core) {
                    Cost::local(3)
                } else if line.state == CohState::Invalid {
                    Cost::shared_read(113 + 5 * hops)
                } else {
                    // Served by the home tile's L2 slice; the paper
                    // measures 45 cycles at one hop, +2 per extra hop.
                    Cost::shared_read(43 + 2 * hops)
                }
            }
            MemOpKind::Store | MemOpKind::Prefetchw => {
                // All stores update the home tile (Dynamic Distributed
                // Cache); invalidating sharers costs ~3 cycles each, up to
                // the paper's 200 cycles at 36 sharers.
                let sharer_cost = 3 * u64::from(line.sharers.count());
                match line.state {
                    CohState::Invalid => Cost::write(113 + 5 * hops + 10),
                    CohState::Shared | CohState::Owned => Cost::write(84 + 2 * hops + sharer_cost),
                    CohState::Modified | CohState::Exclusive => {
                        if line.owner == Some(core) {
                            // Still a home-tile write, but no remote probe.
                            Cost::write(24)
                        } else {
                            Cost::write(55 + 2 * hops)
                        }
                    }
                }
            }
            MemOpKind::Cas | MemOpKind::Fai | MemOpKind::Tas | MemOpKind::Swap => {
                // Atomics execute at the home tile: [CAS, FAI, TAS, SWAP]
                // at one hop are [77, 51, 70, 63]; +2 per extra hop. FAI
                // has dedicated hardware and is the cheapest (Section 5.4).
                let base = op_pick(op, [75, 49, 68, 61]);
                let sharer_cost = match line.state {
                    CohState::Shared | CohState::Owned => 3 * u64::from(line.sharers.count()),
                    _ => 0,
                };
                if line.state == CohState::Invalid {
                    Cost::write(113 + 5 * hops + 20)
                } else {
                    Cost::write(base + 2 * hops + sharer_cost)
                }
            }
            MemOpKind::Flush => Cost::write(113 + 5 * hops),
        }
    }

    /// True if the line's owner or any sharer sits on the same physical
    /// core as `core` (Niagara: the 8 hardware threads of a core share
    /// its L1).
    fn holder_on_same_physical_core(&self, line: &Line, core: usize) -> bool {
        let phys = self.map.phys_of(core);
        if let Some(o) = line.owner {
            if self.map.phys_of(o) == phys {
                return true;
            }
        }
        line.sharers.iter().any(|s| self.map.phys_of(s) == phys)
    }

    /// A sharer whose socket is nearest to `core` (the socket LLC that
    /// will serve a Shared load on the Xeon), preferring the requester's
    /// socket.
    fn nearest_sharer(&self, line: &Line, core: usize) -> Option<usize> {
        if line.sharers.is_empty() {
            return None;
        }
        let my_die = self.map.die_of(core);
        line.sharers
            .iter()
            .min_by_key(|&s| self.map.die_class(my_die, self.map.die_of(s)))
    }

    /// Number of distinct sockets holding sharer copies.
    fn sharer_sockets(&self, line: &Line) -> u32 {
        let mut mask: u64 = 0;
        for s in line.sharers.iter() {
            mask |= 1 << self.map.die_of(s);
        }
        if let Some(o) = line.owner {
            mask |= 1 << self.map.die_of(o);
        }
        mask.count_ones()
    }
}

/// Picks the per-operation latency from a `[CAS, FAI, TAS, SWAP]` row.
fn op_pick(op: MemOpKind, row: [u64; 4]) -> u64 {
    match op {
        MemOpKind::Cas => row[0],
        MemOpKind::Fai => row[1],
        MemOpKind::Tas => row[2],
        MemOpKind::Swap => row[3],
        _ => unreachable!("op_pick is for atomics only"),
    }
}

fn idx4(idx: usize, row: [u64; 4]) -> u64 {
    row[idx]
}

fn idx3(idx: usize, row: [u64; 3]) -> u64 {
    row[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{Memory, SharerSet};

    fn staged_line(home: usize, state: CohState, owner: Option<usize>, sharers: &[usize]) -> Line {
        let mut m = Memory::new();
        let id = m.alloc(home);
        {
            let l = m.line_mut(id);
            l.state = state;
            l.owner = owner;
            l.sharers = sharers.iter().copied().collect::<SharerSet>();
        }
        m.line(id).clone()
    }

    #[test]
    fn opteron_load_modified_matches_table2() {
        let model = LatencyModel::new(Platform::Opteron);
        // Owner on die 0 (home), requester at increasing distances.
        let line = staged_line(0, CohState::Modified, Some(0), &[]);
        let cases = [(1usize, 81), (6, 161), (12, 172), (36, 252)];
        for (core, want) in cases {
            let c = model.cost(&line, core, MemOpKind::Load);
            assert_eq!(c.latency, want, "requester {core}");
        }
    }

    #[test]
    fn opteron_store_on_shared_broadcasts() {
        let model = LatencyModel::new(Platform::Opteron);
        // Two sharers on the same die as the writer: still ~246 cycles.
        let line = staged_line(0, CohState::Shared, None, &[1, 2]);
        let c = model.cost(&line, 3, MemOpKind::Store);
        assert_eq!(c.latency, 246);
        // Versus 83 on an exclusively-held line.
        let line = staged_line(0, CohState::Exclusive, Some(1), &[]);
        let c = model.cost(&line, 3, MemOpKind::Store);
        assert_eq!(c.latency, 83);
    }

    #[test]
    fn opteron_remote_directory_penalty() {
        let model = LatencyModel::new(Platform::Opteron);
        // Requester two hops from home, owner two hops from home: the
        // paper's 312-cycle worst case for loads.
        let line = staged_line(0, CohState::Shared, None, &[37]);
        let c = model.cost(&line, 38, MemOpKind::Load);
        assert_eq!(c.latency, 254); // shared: served by directory
        let line = staged_line(0, CohState::Modified, Some(37), &[]);
        let c = model.cost(&line, 38, MemOpKind::Load);
        assert_eq!(c.latency, 252 + 120); // dirty: probe remote owner
    }

    #[test]
    fn xeon_intra_socket_locality() {
        let model = LatencyModel::new(Platform::Xeon);
        let line = staged_line(0, CohState::Shared, None, &[1]);
        assert_eq!(model.cost(&line, 2, MemOpKind::Load).latency, 44);
        // Crossing two hops: 7.5x dearer (334 vs 44).
        let line = staged_line(0, CohState::Shared, None, &[31]);
        let c = model.cost(&line, 2, MemOpKind::Load);
        assert_eq!(c.latency, 334);
    }

    #[test]
    fn xeon_store_shared_by_everyone_costs_445ish() {
        let model = LatencyModel::new(Platform::Xeon);
        let all: Vec<usize> = (0..80).collect();
        let line = staged_line(0, CohState::Shared, None, &all);
        let c = model.cost(&line, 0, MemOpKind::Store);
        // Base 116 (a sharer is in-socket) + 3 * 7 extra sockets = 137?
        // No: the nearest sharer is local, so idx 0: 116 + 21 = 137. The
        // paper's 445 measures all-socket invalidation *from a remote
        // socket*: sharers everywhere, writer two hops from home copy.
        assert!(c.latency >= 137, "got {}", c.latency);
        // From the farthest socket the cost approaches the paper's 445.
        let line2 = staged_line(0, CohState::Shared, None, &(0..10).collect::<Vec<_>>());
        let c2 = model.cost(&line2, 79, MemOpKind::Store);
        assert_eq!(c2.latency, 428); // one socket of sharers, two hops
    }

    #[test]
    fn niagara_uniformity() {
        let model = LatencyModel::new(Platform::Niagara);
        let line = staged_line(0, CohState::Modified, Some(0), &[]);
        // Same physical core (hw thread 1 of core 0): L1.
        assert_eq!(model.cost(&line, 1, MemOpKind::Load).latency, 3);
        // Any other core: L2, regardless of which.
        assert_eq!(model.cost(&line, 8, MemOpKind::Load).latency, 24);
        assert_eq!(model.cost(&line, 63, MemOpKind::Load).latency, 24);
        // Stores are L2 writes no matter the sharers.
        let line = staged_line(0, CohState::Shared, None, &(0..64).collect::<Vec<_>>());
        assert_eq!(model.cost(&line, 5, MemOpKind::Store).latency, 24);
    }

    #[test]
    fn niagara_tas_is_cheapest_atomic() {
        let model = LatencyModel::new(Platform::Niagara);
        let line = staged_line(0, CohState::Modified, Some(8), &[]);
        let tas = model.cost(&line, 16, MemOpKind::Tas).latency;
        let cas = model.cost(&line, 16, MemOpKind::Cas).latency;
        let fai = model.cost(&line, 16, MemOpKind::Fai).latency;
        assert!(tas < cas && cas < fai, "tas={tas} cas={cas} fai={fai}");
    }

    #[test]
    fn tilera_cost_grows_with_distance_and_sharers() {
        let model = LatencyModel::new(Platform::Tilera);
        // Home at tile 0; requester adjacent vs far corner.
        let line = staged_line(0, CohState::Exclusive, Some(2), &[]);
        let near = model.cost(&line, 1, MemOpKind::Load).latency;
        let far = model.cost(&line, 35, MemOpKind::Load).latency;
        assert_eq!(near, 45);
        assert_eq!(far, 63);
        // Store on a widely-shared line approaches 200 cycles.
        let line = staged_line(0, CohState::Shared, None, &(0..36).collect::<Vec<_>>());
        let c = model.cost(&line, 0, MemOpKind::Store);
        assert!(c.latency >= 190, "got {}", c.latency);
    }

    #[test]
    fn tilera_fai_is_fastest() {
        let model = LatencyModel::new(Platform::Tilera);
        let line = staged_line(0, CohState::Modified, Some(3), &[]);
        let fai = model.cost(&line, 7, MemOpKind::Fai).latency;
        for op in [MemOpKind::Cas, MemOpKind::Tas, MemOpKind::Swap] {
            assert!(model.cost(&line, 7, op).latency > fai);
        }
    }

    #[test]
    fn local_hits_bypass_serialization() {
        let model = LatencyModel::new(Platform::Xeon);
        let line = staged_line(0, CohState::Modified, Some(4), &[]);
        let c = model.cost(&line, 4, MemOpKind::Load);
        assert!(!c.uses_line);
        assert_eq!(c.latency, 5);
        let c = model.cost(&line, 4, MemOpKind::Store);
        assert!(!c.uses_line);
    }

    #[test]
    fn local_atomics_still_serialize() {
        let model = LatencyModel::new(Platform::Opteron);
        let line = staged_line(0, CohState::Modified, Some(4), &[]);
        let c = model.cost(&line, 4, MemOpKind::Cas);
        assert!(c.uses_line);
        assert_eq!(c.latency, X86_LOCAL_ATOMIC);
    }

    #[test]
    fn table3_anchors() {
        assert_eq!(
            LatencyModel::new(Platform::Opteron).local_levels()[3].1,
            136
        );
        assert_eq!(LatencyModel::new(Platform::Xeon).local_levels()[3].1, 355);
        assert_eq!(
            LatencyModel::new(Platform::Niagara).local_levels()[3].1,
            176
        );
        assert_eq!(LatencyModel::new(Platform::Tilera).local_levels()[3].1, 118);
    }
}

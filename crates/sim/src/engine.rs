//! The discrete-event engine.
//!
//! [`Sim`] owns the memory system, the latency model, and a set of
//! simulated threads. Threads are [`Program`] state machines; the engine
//! repeatedly pops the earliest-ready thread from an event queue, asks it
//! for its next [`Action`], charges the action's cost, applies its
//! semantics (value change + coherence transition for memory operations),
//! and re-schedules the thread at the completion time.
//!
//! Conflicting operations on one cache line serialize through the line's
//! `busy_until` timestamp — the simulator's stand-in for the directory /
//! bus arbitration that makes contended synchronization collapse on the
//! paper's multi-sockets.
//!
//! The engine is single-threaded and fully deterministic: ties in the
//! event queue break by insertion order, and all randomness comes from
//! per-thread `SmallRng`s seeded from the `Sim` seed.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ssync_core::topology::{Platform, Topology};

use crate::latency::LatencyModel;
use crate::memory::{CohState, LineId, Memory};
use crate::program::{Action, Env, MemOpKind, Program, WaitCond};
use crate::protocol;
use crate::stats::SimStats;

/// Hardware-message inbox capacity per thread: the engine models the
/// Tilera iMesh's bounded user-level queues, so senders stall when a
/// receiver falls behind (the backpressure that bounds Figure 10's
/// one-way throughput at the server's drain rate).
const HW_INBOX_CAPACITY: usize = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    /// Scheduled in the event queue.
    Ready,
    /// Waiting for a hardware message.
    RecvWait,
    /// Stalled sending a hardware message to a full inbox.
    SendWait,
    /// Suspended by [`Action::Park`].
    Parked,
    /// Registered on a line's wait-list ([`Action::SpinWait`]); no event
    /// is queued until a write to the line wakes the thread.
    SpinBlocked,
    /// Woken from a wait-list: the queued event is a spin re-poll (a
    /// real load of the spun-on line), not a program step.
    SpinPoll,
    /// Finished ([`Action::Done`]).
    Done,
}

/// Bookkeeping for a thread parked in [`Action::SpinWait`].
#[derive(Debug, Clone, Copy)]
struct SpinState {
    /// The line being polled.
    line: LineId,
    /// Resume condition on the line's value.
    cond: WaitCond,
    /// Between-poll pause, already scaled by the pipeline factor.
    pause: u64,
    /// Poll period: `pause` plus the cached-load latency (what one
    /// iteration of the equivalent explicit load/check/pause loop takes
    /// while the line stays locally cached).
    period: u64,
    /// Completion time of the unsatisfied poll that blocked the thread;
    /// poll boundaries are `anchor + pause + k * period`.
    anchor: u64,
    /// Elided poll boundaries already credited to the local-hit
    /// statistic (by a window boundary; see `credit_parked_polls`).
    credited: u64,
}

struct Thread {
    program: Box<dyn Program>,
    core: usize,
    state: ThreadState,
    /// Result to hand to the next `step` call.
    pending: Option<u64>,
    /// Unpark permit (see [`Action::Park`]).
    permit: bool,
    /// Spin-wait bookkeeping while in `SpinBlocked` / `SpinPoll`.
    spin: Option<SpinState>,
    /// Hardware message inbox: (available-at, payload).
    inbox: VecDeque<(u64, u64)>,
    /// Senders stalled on this thread's full inbox: (sender tid, payload).
    send_waiters: VecDeque<(usize, u64)>,
    /// Application-level operations completed (see [`Env::complete_op`]).
    ops: u64,
    /// Latency samples recorded by the program.
    samples: Vec<u64>,
    rng: SmallRng,
}

/// A simulation of one platform.
///
/// See the crate-level docs for an end-to-end example.
pub struct Sim {
    topo: Topology,
    model: LatencyModel,
    mem: Memory,
    threads: Vec<Thread>,
    /// Min-heap of (ready time, sequence, thread id).
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    seq: u64,
    now: u64,
    seed: u64,
    /// Number of spawned threads per physical core (Niagara hardware
    /// threads share their core's pipeline; `Pause` scales by this).
    core_load: Vec<u32>,
    /// Per-line wait-lists (indexed by line id, grown on demand): the
    /// threads parked in [`Action::SpinWait`] on that line. A write-class
    /// operation (or flush) on the line wakes every entry at its next
    /// poll boundary.
    wait_lists: Vec<Vec<usize>>,
    events: u64,
    stats: SimStats,
}

impl Sim {
    /// Creates a simulation of `platform` with a deterministic seed.
    pub fn new(platform: Platform, seed: u64) -> Self {
        let topo = platform.topology();
        let phys_cores = topo.num_cores();
        Self {
            model: LatencyModel::new(platform),
            mem: Memory::new(),
            threads: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: 0,
            seed,
            core_load: vec![0; phys_cores],
            wait_lists: Vec::new(),
            events: 0,
            stats: SimStats::default(),
            topo,
        }
    }

    /// The simulated platform's topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The latency model in force.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// The memory system (read access; use [`Sim::memory_mut`] to stage
    /// experiment-specific line states).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory access for experiment setup.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Current simulated time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total events processed (diagnostics).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Coherence-traffic counters accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Allocates a line homed at an explicit node/tile.
    pub fn alloc_line(&mut self, home: usize) -> LineId {
        self.mem.alloc(home)
    }

    /// Allocates a line homed local to `core`: on the core's memory node
    /// (die) on the multi-sockets, node 0 on the Niagara, and the core's
    /// own tile on the Tilera (whose "home" is an L2 slice, not a memory
    /// controller).
    pub fn alloc_line_for_core(&mut self, core: usize) -> LineId {
        let home = match self.topo.platform() {
            Platform::Tilera => core,
            _ => self.topo.mem_node_of(core),
        };
        self.mem.alloc(home)
    }

    /// Spawns a thread on `core`; returns its thread id. The thread's
    /// first step runs at the current simulated time.
    pub fn spawn_on_core(&mut self, core: usize, program: Box<dyn Program>) -> usize {
        assert!(core < self.topo.num_cores(), "core {core} out of range");
        let tid = self.threads.len();
        let phys = self.topo.physical_core_of(core);
        self.core_load[phys] += 1;
        self.threads.push(Thread {
            program,
            core,
            state: ThreadState::Ready,
            pending: None,
            permit: false,
            spin: None,
            inbox: VecDeque::new(),
            send_waiters: VecDeque::new(),
            ops: 0,
            samples: Vec::new(),
            rng: SmallRng::seed_from_u64(
                self.seed ^ (tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        });
        self.schedule(self.now, tid);
        tid
    }

    /// Operations completed by thread `tid` (see [`Env::complete_op`]).
    pub fn ops(&self, tid: usize) -> u64 {
        self.threads[tid].ops
    }

    /// Sum of completed operations over all threads.
    pub fn total_ops(&self) -> u64 {
        self.threads.iter().map(|t| t.ops).sum()
    }

    /// Latency samples recorded by thread `tid`.
    pub fn samples(&self, tid: usize) -> &[u64] {
        &self.threads[tid].samples
    }

    /// Runs until the event queue is empty (all threads `Done`, parked
    /// forever, or waiting for messages that never come).
    pub fn run_to_completion(&mut self) {
        self.run_until(u64::MAX);
    }

    /// Processes all events scheduled at or before `limit`. Threads whose
    /// next event lies beyond `limit` stay queued; `now` advances to the
    /// last processed event (at most `limit`).
    pub fn run_until(&mut self, limit: u64) {
        while let Some(&Reverse((t, _, _))) = self.queue.peek() {
            if t > limit {
                break;
            }
            let Reverse((t, _, tid)) = self.queue.pop().expect("peeked");
            self.now = t;
            self.events += 1;
            self.step_thread(tid);
        }
        if limit != u64::MAX {
            self.credit_parked_polls(limit);
        }
    }

    /// Credits the elided polls of still-parked spin-waiters up to a
    /// window boundary, so the local-hit statistic of a `run_until`
    /// measurement matches the explicit-polling engine (which would
    /// have processed those L1-hit poll events inside the window). The
    /// credit is remembered per waiter and subtracted again on wake-up,
    /// so resuming the simulation never double-counts. Skipped for
    /// `run_to_completion` (no boundary; a never-woken waiter has
    /// unbounded phantom polls, where the explicit engine would simply
    /// never terminate).
    fn credit_parked_polls(&mut self, limit: u64) {
        for thread in &mut self.threads {
            if thread.state != ThreadState::SpinBlocked {
                continue;
            }
            let spin = thread.spin.as_mut().expect("blocked thread spins");
            let first = spin.anchor + spin.pause;
            if limit < first {
                continue;
            }
            let in_window = (limit - first) / spin.period + 1;
            if in_window > spin.credited {
                self.stats.local_hits += in_window - spin.credited;
                spin.credited = in_window;
            }
        }
    }

    fn schedule(&mut self, at: u64, tid: usize) {
        self.seq += 1;
        self.queue.push(Reverse((at, self.seq, tid)));
    }

    fn step_thread(&mut self, tid: usize) {
        if self.threads[tid].state == ThreadState::SpinPoll {
            // Woken from a wait-list: this event is the poll that may
            // observe the write, not a program step.
            self.spin_poll(tid);
            return;
        }
        debug_assert_eq!(self.threads[tid].state, ThreadState::Ready);
        let now = self.now;
        // Split-borrow dance: take what the Env needs out of the thread.
        let thread = &mut self.threads[tid];
        let result = thread.pending.take();
        let core = thread.core;
        let mut env = Env {
            now,
            tid,
            core,
            rng: &mut thread.rng,
            ops: &mut thread.ops,
            samples: &mut thread.samples,
        };
        let action = thread.program.step(result, &mut env);
        // Fast path: the Load/Store/atomic dispatch the contended
        // experiments spend nearly all their events in.
        if let Some((op, line, operand, expected)) = action.mem_op_parts() {
            let (done, result) = self.mem_op(tid, line, op, operand, expected);
            self.threads[tid].pending = result;
            self.schedule(done, tid);
            return;
        }
        match action {
            Action::SpinWait { line, cond, pause } => {
                let factor = u64::from(self.pipeline_factor(core));
                let pause = pause.max(1) * factor;
                let period = pause + self.model.cached_load_latency();
                self.threads[tid].spin = Some(SpinState {
                    line,
                    cond,
                    pause,
                    period,
                    anchor: 0,
                    credited: 0,
                });
                self.spin_poll(tid);
            }
            Action::Pause(cycles) => {
                let factor = u64::from(self.pipeline_factor(core));
                self.schedule(now + cycles.max(1) * factor, tid);
            }
            Action::Park => {
                let thread = &mut self.threads[tid];
                if thread.permit {
                    // A wake arrived before the park: consume it.
                    thread.permit = false;
                    self.schedule(now + 1, tid);
                } else {
                    thread.state = ThreadState::Parked;
                    // The suspend cost is paid on the way down; it delays
                    // the earliest possible wake-up, which we implement by
                    // treating `now + park_cost` as the park point. A
                    // wake that arrives in that window is honoured after
                    // it (handled in `Action::Unpark` via max()).
                }
            }
            Action::Unpark(target) => {
                let wake_at = now + self.model.unpark_cost() + self.model.wake_latency();
                if target < self.threads.len() && self.threads[target].state == ThreadState::Parked
                {
                    self.threads[target].state = ThreadState::Ready;
                    self.threads[target].pending = None;
                    let park_floor = now + self.model.park_cost();
                    self.schedule(wake_at.max(park_floor), target);
                } else if target < self.threads.len() {
                    self.threads[target].permit = true;
                }
                self.schedule(now + self.model.unpark_cost(), tid);
            }
            Action::HwSend { to, payload } => {
                if to < self.threads.len() && self.threads[to].inbox.len() >= HW_INBOX_CAPACITY {
                    // Backpressure: stall until the receiver drains.
                    self.threads[to].send_waiters.push_back((tid, payload));
                    self.threads[tid].state = ThreadState::SendWait;
                } else {
                    let hops = self.hw_hops(core, to);
                    let avail = now + self.model.hw_send_cost() + self.model.hw_flight(hops);
                    if to < self.threads.len() {
                        self.threads[to].inbox.push_back((avail, payload));
                        if self.threads[to].state == ThreadState::RecvWait {
                            self.deliver_message(to);
                        }
                    }
                    self.schedule(now + self.model.hw_send_cost(), tid);
                }
            }
            Action::HwRecv => {
                if self.threads[tid].inbox.is_empty() {
                    self.threads[tid].state = ThreadState::RecvWait;
                } else {
                    self.deliver_message(tid);
                }
            }
            Action::Done => {
                self.threads[tid].state = ThreadState::Done;
            }
            Action::Load(..)
            | Action::Store(..)
            | Action::Cas(..)
            | Action::Fai(..)
            | Action::Tas(..)
            | Action::Swap(..)
            | Action::Prefetchw(..)
            | Action::Flush(..) => {
                unreachable!("memory operations are dispatched via mem_op_parts above")
            }
        }
    }

    /// Issues the (initial or wake-up) poll load of a [`Action::SpinWait`].
    ///
    /// The load is a full memory operation — it pays the real coherence
    /// cost and re-registers the thread as a sharer, so writers keep
    /// seeing spinning waiters in the sharer set. The condition is
    /// checked against the value the load observes (at processing time,
    /// like any load): satisfied, the thread resumes with the value at
    /// the load's completion; unsatisfied, the thread parks on the
    /// line's wait-list with poll boundaries anchored at that completion
    /// time. Registering at processing time (not completion) closes the
    /// window in which a write could slip past an in-flight poll and be
    /// lost.
    fn spin_poll(&mut self, tid: usize) {
        let spec = self.threads[tid].spin.expect("spin state set");
        let (done, result) = self.mem_op(tid, spec.line, MemOpKind::Load, None, None);
        let value = result.expect("loads produce a value");
        if spec.cond.satisfied(value) {
            let thread = &mut self.threads[tid];
            thread.spin = None;
            thread.state = ThreadState::Ready;
            thread.pending = Some(value);
            self.schedule(done, tid);
        } else {
            let thread = &mut self.threads[tid];
            thread.state = ThreadState::SpinBlocked;
            let spin = thread.spin.as_mut().expect("spin state set");
            spin.anchor = done;
            spin.credited = 0;
            let idx = spec.line as usize;
            if self.wait_lists.len() <= idx {
                self.wait_lists.resize_with(idx + 1, Vec::new);
            }
            self.wait_lists[idx].push(tid);
        }
    }

    /// Wakes every thread wait-listed on `line` after a write at `now`:
    /// each is scheduled for a real poll load at its first poll boundary
    /// at or after the write, and the elided polls before it (loads of
    /// the unchanged, locally cached line) are credited to the local-hit
    /// counter so traffic ratios match the explicit-polling engine.
    ///
    /// Exact-tie semantics: when the write's processing time lands
    /// precisely on a poll boundary, the wake poll (scheduled here,
    /// with a fresh seq) runs after the write and observes it, whereas
    /// an explicit loop's poll event at that timestamp could carry an
    /// older seq and read the pre-write value, re-polling one period
    /// later. The wait-list engine resolves the ambiguous tie as
    /// write-first; this is the one knowingly inexact case of the
    /// explicit-polling equivalence.
    fn wake_waiters(&mut self, line: LineId) {
        let now = self.now;
        let Some(list) = self.wait_lists.get_mut(line as usize) else {
            return;
        };
        if list.is_empty() {
            return;
        }
        let mut wakes: Vec<(u64, Reverse<u64>, usize)> = Vec::new();
        for tid in std::mem::take(list) {
            let spin = self.threads[tid].spin.expect("blocked thread spins");
            let first = spin.anchor + spin.pause;
            let (wake_at, elided) = if now <= first {
                (first, 0)
            } else {
                let k = (now - first).div_ceil(spin.period);
                (first + k * spin.period, k)
            };
            self.stats.local_hits += elided.saturating_sub(spin.credited);
            self.threads[tid].state = ThreadState::SpinPoll;
            wakes.push((wake_at, Reverse(spin.anchor), tid));
        }
        // Waiters whose wake boundaries coincide poll in reverse anchor
        // order: in the explicit-polling engine, a chain that joins an
        // aligned poll group later was scheduled by an older (lower-seq)
        // event, so it drains first at every shared boundary. The stable
        // sort keeps registration order for fully identical chains.
        wakes.sort_by_key(|&(at, anchor, _)| (at, anchor));
        for (wake_at, _, tid) in wakes {
            self.schedule(wake_at, tid);
        }
    }

    /// Pops the receiver's next message and schedules it to resume; a
    /// stalled sender (backpressure) is admitted into the freed slot.
    fn deliver_message(&mut self, tid: usize) {
        let now = self.now;
        let recv_cost = self.model.hw_recv_cost();
        let thread = &mut self.threads[tid];
        let (avail, payload) = thread.inbox.pop_front().expect("inbox non-empty");
        thread.state = ThreadState::Ready;
        thread.pending = Some(payload);
        let resume = avail.max(now) + recv_cost;
        self.schedule(resume, tid);
        if let Some((sender, queued_payload)) = self.threads[tid].send_waiters.pop_front() {
            let hops = self.hw_hops(self.threads[sender].core, tid);
            let at = now + self.model.hw_send_cost() + self.model.hw_flight(hops);
            self.threads[tid].inbox.push_back((at, queued_payload));
            self.threads[sender].state = ThreadState::Ready;
            self.threads[sender].pending = None;
            self.schedule(now + self.model.hw_send_cost(), sender);
        }
    }

    /// Mesh hops for hardware messages between two *threads*' cores
    /// (Tilera's iMesh; other platforms treat hardware channels as
    /// distance-free, which only the Tilera experiments use anyway).
    fn hw_hops(&self, from_core: usize, to_tid: usize) -> u8 {
        if to_tid >= self.threads.len() {
            return 0;
        }
        let to_core = self.threads[to_tid].core;
        match self.topo.platform() {
            Platform::Tilera => self.model.mesh_hops(from_core, to_core),
            _ => 0,
        }
    }

    /// Pipeline sharing factor: how many threads were spawned on this
    /// physical core (Niagara's 8 hardware threads share one pipeline,
    /// so local computation slows proportionally).
    fn pipeline_factor(&self, core: usize) -> u32 {
        self.core_load[self.model.phys_of(core)].max(1)
    }

    /// Performs one memory operation for `tid`: charges the cost,
    /// serializes through the line's `busy_until`, applies the value and
    /// coherence-state semantics, and wakes any spin-waiters on a write.
    /// Returns the completion time and the operation's result value; the
    /// caller decides how to resume the thread.
    fn mem_op(
        &mut self,
        tid: usize,
        line_id: LineId,
        op: MemOpKind,
        operand: Option<u64>,
        expected: Option<u64>,
    ) -> (u64, Option<u64>) {
        let now = self.now;
        let core = self.threads[tid].core;
        let platform = self.topo.platform();
        let cost = {
            let line = self.mem.line(line_id);
            self.model.cost(line, core, op)
        };
        // Traffic accounting (before the transition mutates the line).
        {
            let line = self.mem.line(line_id);
            if !cost.uses_line {
                self.stats.local_hits += 1;
            } else if let Some(owner) = line.owner.filter(|&o| o != core) {
                // The line moves out of another core's cache.
                self.stats.transfers += 1;
                if self.model.die_of(owner) != self.model.die_of(core) {
                    self.stats.cross_socket_transfers += 1;
                }
            } else {
                self.stats.llc_serves += 1;
            }
            if op.is_write_class() && line.state != CohState::Invalid {
                // Copies destroyed by this write: every sharer plus a
                // remote owner's copy.
                let copies = u64::from(line.sharers.count())
                    + u64::from(line.owner.is_some_and(|o| o != core));
                if copies > 0 {
                    self.stats.invalidations += 1;
                    self.stats.copies_invalidated += copies;
                }
            }
        }
        // A core performing an atomic on a line it already owns wins the
        // arbitration against in-flight remote requests: its retry hits
        // the local cache while remote RFOs are still travelling. This is
        // what keeps CAS-retry loops (CAS-based FAI) from degrading as
        // 1/N on the single-sockets (Figure 4) — and why the paper's
        // stress tests pause after success to prevent "long runs".
        let local_atomic = matches!(
            op,
            MemOpKind::Cas | MemOpKind::Fai | MemOpKind::Tas | MemOpKind::Swap
        ) && self.mem.line(line_id).owner == Some(core);
        let line = self.mem.line_mut(line_id);
        let start = if cost.uses_line && !local_atomic {
            now.max(line.busy_until)
        } else {
            now
        };
        if cost.uses_line {
            line.busy_until = line.busy_until.max(start + cost.occupancy);
        }
        // Value semantics: applied at processing time. Per-line order is
        // consistent because conflicting (write-class) operations
        // serialize via busy_until, and the engine processes events in
        // global time order.
        let old = line.value;
        let result = match op {
            MemOpKind::Load => Some(old),
            MemOpKind::Store => {
                line.value = operand.expect("store operand");
                None
            }
            MemOpKind::Cas => {
                if old == expected.expect("cas expected") {
                    line.value = operand.expect("cas new value");
                }
                Some(old)
            }
            MemOpKind::Fai => {
                line.value = old.wrapping_add(1);
                Some(old)
            }
            MemOpKind::Tas => {
                line.value = 1;
                Some(old)
            }
            MemOpKind::Swap => {
                line.value = operand.expect("swap operand");
                Some(old)
            }
            MemOpKind::Prefetchw | MemOpKind::Flush => None,
        };
        protocol::apply(platform, line, core, op);
        if op != MemOpKind::Load {
            // Any non-load invalidates remote copies: wake spin-waiters
            // so their next poll (a real miss) observes the change.
            self.wake_waiters(line_id);
        }
        (start + cost.latency, result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::fn_program;

    /// A program that performs a fixed list of actions, ignoring results.
    fn scripted(actions: Vec<Action>) -> Box<dyn Program> {
        let mut iter = actions.into_iter();
        fn_program(move |_r, _env| iter.next().unwrap_or(Action::Done))
    }

    #[test]
    fn fai_counts_atomically() {
        let mut sim = Sim::new(Platform::Niagara, 1);
        let line = sim.alloc_line_for_core(0);
        for i in 0..4 {
            sim.spawn_on_core(i * 8, scripted(vec![Action::Fai(line); 25]));
        }
        sim.run_to_completion();
        assert_eq!(sim.memory().line(line).value, 100);
    }

    #[test]
    fn cas_success_and_failure() {
        let mut sim = Sim::new(Platform::Xeon, 1);
        let line = sim.alloc_line(0);
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let r2 = results.clone();
        let mut step = 0;
        sim.spawn_on_core(
            0,
            fn_program(move |r, _env| {
                if let Some(v) = r {
                    r2.borrow_mut().push(v);
                }
                step += 1;
                match step {
                    1 => Action::Cas(line, 0, 7), // succeeds: 0 -> 7
                    2 => Action::Cas(line, 0, 9), // fails: value is 7
                    _ => Action::Done,
                }
            }),
        );
        sim.run_to_completion();
        assert_eq!(*results.borrow(), vec![0, 7]);
        assert_eq!(sim.memory().line(line).value, 7);
    }

    #[test]
    fn contended_writes_serialize() {
        // Two cores hammering one line: total time must be at least the
        // sum of occupancies, not the max.
        let mut sim = Sim::new(Platform::Xeon, 1);
        let line = sim.alloc_line(0);
        let n = 50;
        sim.spawn_on_core(0, scripted(vec![Action::Fai(line); n]));
        sim.spawn_on_core(1, scripted(vec![Action::Fai(line); n]));
        sim.run_to_completion();
        // Each contended atomic costs >= 20 cycles of occupancy.
        assert!(sim.now() >= (2 * n as u64 - 2) * 20);
        assert_eq!(sim.memory().line(line).value, 2 * n as u64);
    }

    #[test]
    fn local_spinning_does_not_serialize() {
        // A spinner load-hitting its own cached copy advances only its
        // own clock; 1000 cheap loads cost 1000 * L1 latency.
        let mut sim = Sim::new(Platform::Xeon, 1);
        let line = sim.alloc_line(0);
        let mut first = true;
        sim.spawn_on_core(
            0,
            fn_program(move |_r, _env| {
                if first {
                    first = false;
                }
                Action::Load(line)
            }),
        );
        sim.run_until(5_000);
        // First load is a miss; the rest are L1 hits at 5 cycles each.
        assert!(sim.events() > 900, "events: {}", sim.events());
    }

    #[test]
    fn pause_scales_with_niagara_core_sharing() {
        let mut sim = Sim::new(Platform::Niagara, 1);
        // Two hardware threads on physical core 0.
        let t0 = sim.spawn_on_core(0, scripted(vec![Action::Pause(100), Action::Done]));
        let _t1 = sim.spawn_on_core(1, scripted(vec![Action::Pause(100), Action::Done]));
        sim.run_to_completion();
        let _ = t0;
        // Each pause takes 200 cycles (factor 2).
        assert_eq!(sim.now(), 200);
    }

    #[test]
    fn park_unpark_roundtrip() {
        let mut sim = Sim::new(Platform::Opteron, 1);
        let line = sim.alloc_line(0);
        // Thread 0 parks; thread 1 stores then unparks it; thread 0 then
        // stores a flag to prove it resumed.
        let mut s0 = 0;
        sim.spawn_on_core(
            0,
            fn_program(move |_r, _env| {
                s0 += 1;
                match s0 {
                    1 => Action::Park,
                    2 => Action::Store(line, 42),
                    _ => Action::Done,
                }
            }),
        );
        let mut s1 = 0;
        sim.spawn_on_core(
            6,
            fn_program(move |_r, _env| {
                s1 += 1;
                match s1 {
                    1 => Action::Pause(10_000),
                    2 => Action::Unpark(0),
                    _ => Action::Done,
                }
            }),
        );
        sim.run_to_completion();
        assert_eq!(sim.memory().line(line).value, 42);
        // The parked thread resumed only after the unpark + wake latency.
        assert!(sim.now() >= 10_000 + 2_500);
    }

    #[test]
    fn unpark_before_park_grants_permit() {
        let mut sim = Sim::new(Platform::Opteron, 1);
        let line = sim.alloc_line(0);
        let mut s0 = 0;
        sim.spawn_on_core(
            0,
            fn_program(move |_r, _env| {
                s0 += 1;
                match s0 {
                    1 => Action::Pause(5_000),
                    2 => Action::Park, // permit already granted: no sleep
                    3 => Action::Store(line, 7),
                    _ => Action::Done,
                }
            }),
        );
        sim.spawn_on_core(6, scripted(vec![Action::Unpark(0), Action::Done]));
        sim.run_to_completion();
        assert_eq!(sim.memory().line(line).value, 7);
        // No 2500-cycle wake latency: the permit made Park immediate.
        assert!(sim.now() < 8_000, "now: {}", sim.now());
    }

    #[test]
    fn hardware_messages_deliver_in_order() {
        let mut sim = Sim::new(Platform::Tilera, 1);
        let line = sim.alloc_line(0);
        let mut s0 = 0;
        sim.spawn_on_core(
            0,
            fn_program(move |_r, _env| {
                s0 += 1;
                match s0 {
                    1 => Action::HwSend { to: 1, payload: 11 },
                    2 => Action::HwSend { to: 1, payload: 22 },
                    _ => Action::Done,
                }
            }),
        );
        let mut got = Vec::new();
        let mut stored = false;
        sim.spawn_on_core(
            35,
            fn_program(move |r, _env| {
                if let Some(v) = r {
                    got.push(v);
                }
                match got.len() {
                    0 | 1 => Action::HwRecv,
                    _ if !stored => {
                        stored = true;
                        Action::Store(line, got[0] * 100 + got[1])
                    }
                    _ => Action::Done,
                }
            }),
        );
        sim.run_to_completion();
        assert_eq!(sim.memory().line(line).value, 1122);
    }

    #[test]
    fn hw_message_latency_tracks_distance() {
        // One-way latency corner to corner vs adjacent (Figure 9's axis).
        for (receiver_core, min_t, max_t) in [(1usize, 50, 75), (35, 55, 85)] {
            let mut sim = Sim::new(Platform::Tilera, 1);
            sim.spawn_on_core(
                0,
                scripted(vec![Action::HwSend { to: 1, payload: 5 }, Action::Done]),
            );
            sim.spawn_on_core(receiver_core, {
                let mut done = false;
                fn_program(move |r, _env| {
                    if r.is_some() || done {
                        return Action::Done;
                    }
                    done = true;
                    Action::HwRecv
                })
            });
            sim.run_to_completion();
            assert!(
                sim.now() >= min_t && sim.now() <= max_t,
                "core {receiver_core}: {} not in [{min_t},{max_t}]",
                sim.now()
            );
        }
    }

    /// An explicit load / check / pause poll loop, the pattern
    /// [`Action::SpinWait`] replaces: spin until `line == target`, then
    /// store 1 to `flag` and finish.
    fn explicit_spinner(line: LineId, target: u64, pause: u64, flag: LineId) -> Box<dyn Program> {
        let mut st = 0u8;
        fn_program(move |r, _env| match st {
            0 => {
                st = 1;
                Action::Load(line)
            }
            1 => {
                if r.expect("load result") == target {
                    st = 3;
                    Action::Store(flag, 1)
                } else {
                    st = 2;
                    Action::Pause(pause)
                }
            }
            2 => {
                st = 1;
                Action::Load(line)
            }
            _ => Action::Done,
        })
    }

    /// The same spinner expressed with one `SpinWait` action.
    fn waitlist_spinner(line: LineId, target: u64, pause: u64, flag: LineId) -> Box<dyn Program> {
        let mut st = 0u8;
        fn_program(move |_r, _env| match st {
            0 => {
                st = 1;
                Action::SpinWait {
                    line,
                    cond: WaitCond::Eq(target),
                    pause,
                }
            }
            1 => {
                st = 2;
                Action::Store(flag, 1)
            }
            _ => Action::Done,
        })
    }

    /// A writer that pauses, then stores `value` to `line`.
    fn delayed_writer(delay: u64, line: LineId, value: u64) -> Box<dyn Program> {
        scripted(vec![Action::Pause(delay), Action::Store(line, value)])
    }

    #[test]
    fn spin_wait_matches_explicit_polling_exactly() {
        // The wait-list path must reproduce the explicit poll loop's
        // timing and traffic cycle-for-cycle: same completion time, same
        // stats (elided local-hit polls are credited on wake). Only the
        // event count may differ — that is the optimization.
        for platform in Platform::ALL {
            let run = |explicit: bool| {
                let mut sim = Sim::new(platform, 42);
                let line = sim.alloc_line(0);
                let flag = sim.alloc_line(0);
                let spinner = if explicit {
                    explicit_spinner(line, 1, 4, flag)
                } else {
                    waitlist_spinner(line, 1, 4, flag)
                };
                sim.spawn_on_core(0, spinner);
                let writer_core = sim.topology().num_cores() - 1;
                sim.spawn_on_core(writer_core, delayed_writer(10_000, line, 1));
                sim.run_to_completion();
                (sim.now(), *sim.stats(), sim.events())
            };
            let (t_exp, stats_exp, events_exp) = run(true);
            let (t_wl, stats_wl, events_wl) = run(false);
            assert_eq!(t_wl, t_exp, "{platform:?}: completion time");
            assert_eq!(stats_wl, stats_exp, "{platform:?}: traffic stats");
            assert!(
                events_wl * 10 < events_exp,
                "{platform:?}: wait-list should collapse events ({events_wl} vs {events_exp})"
            );
        }
    }

    #[test]
    fn spin_wait_windowed_stats_match_explicit_polling() {
        // run_until must credit the elided polls of threads still
        // parked at the window boundary, so windowed traffic stats
        // match the explicit engine; resuming afterwards must not
        // double-count them.
        let run = |explicit: bool| {
            let mut sim = Sim::new(Platform::Opteron, 7);
            let line = sim.alloc_line(0);
            let flag = sim.alloc_line(0);
            let spinner = if explicit {
                explicit_spinner(line, 1, 4, flag)
            } else {
                waitlist_spinner(line, 1, 4, flag)
            };
            sim.spawn_on_core(0, spinner);
            sim.spawn_on_core(36, delayed_writer(20_000, line, 1));
            // Window ends mid-spin: the waiter is still parked.
            sim.run_until(5_000);
            let mid = *sim.stats();
            sim.run_until(8_000); // second boundary: no double credit
            let mid2 = *sim.stats();
            sim.run_to_completion();
            (mid, mid2, *sim.stats(), sim.now())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn spin_wait_satisfied_immediately_acts_like_load() {
        let mut sim = Sim::new(Platform::Xeon, 1);
        let line = sim.alloc_line(0);
        sim.memory_mut().line_mut(line).value = 7;
        let got = std::rc::Rc::new(std::cell::Cell::new(0));
        let got2 = got.clone();
        let mut st = 0;
        sim.spawn_on_core(0, {
            fn_program(move |r, _env| match st {
                0 => {
                    st = 1;
                    Action::SpinWait {
                        line,
                        cond: WaitCond::Ne(0),
                        pause: 4,
                    }
                }
                _ => {
                    got2.set(r.expect("spin result"));
                    Action::Done
                }
            })
        });
        sim.run_to_completion();
        assert_eq!(got.get(), 7);
        // One Invalid-state load: 355 cycles on the Xeon.
        assert_eq!(sim.now(), 355);
    }

    #[test]
    fn spin_wait_ne_wakes_on_any_change() {
        let mut sim = Sim::new(Platform::Opteron, 3);
        let line = sim.alloc_line(0);
        let flag = sim.alloc_line(0);
        sim.spawn_on_core(0, waitlist_spinner(line, 5, 4, flag));
        // Two writes: the first (to 3) wakes the waiter but fails the
        // Eq(5) condition, re-registering it; the second satisfies it.
        sim.spawn_on_core(
            12,
            scripted(vec![
                Action::Pause(5_000),
                Action::Store(line, 3),
                Action::Pause(5_000),
                Action::Store(line, 5),
            ]),
        );
        sim.run_to_completion();
        assert_eq!(sim.memory().line(flag).value, 1);
        assert!(sim.now() >= 10_000);
    }

    #[test]
    fn spin_wait_thundering_herd_serializes_like_polling() {
        // Many waiters on one line: all wake on the release and their
        // poll misses serialize through busy_until, as explicit polls do.
        let run = |explicit: bool| {
            let mut sim = Sim::new(Platform::Opteron, 9);
            let line = sim.alloc_line(0);
            let mut flags = Vec::new();
            for w in 0..8usize {
                let flag = sim.alloc_line(0);
                flags.push(flag);
                let spinner = if explicit {
                    explicit_spinner(line, 1, 4, flag)
                } else {
                    waitlist_spinner(line, 1, 4, flag)
                };
                sim.spawn_on_core(w * 6, spinner);
            }
            sim.spawn_on_core(1, delayed_writer(2_000, line, 1));
            sim.run_to_completion();
            (sim.now(), *sim.stats())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn spin_wait_write_racing_in_flight_poll_is_not_lost() {
        // The writer's store lands while the waiter's first poll (a slow
        // Invalid-state miss) is still in flight. Registration happens at
        // poll *processing* time, so the wake is still delivered.
        let mut sim = Sim::new(Platform::Xeon, 1);
        let line = sim.alloc_line(0);
        let flag = sim.alloc_line(0);
        sim.spawn_on_core(0, waitlist_spinner(line, 1, 4, flag));
        // First poll processed at t=0 (completes ~355); write at t=50.
        sim.spawn_on_core(79, delayed_writer(50, line, 1));
        sim.run_to_completion();
        assert_eq!(sim.memory().line(flag).value, 1);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut sim = Sim::new(Platform::Opteron, 99);
            let line = sim.alloc_line(0);
            for c in 0..8 {
                sim.spawn_on_core(c * 6, scripted(vec![Action::Fai(line); 20]));
            }
            sim.run_to_completion();
            (sim.now(), sim.memory().line(line).value, sim.events())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_stops_at_limit() {
        let mut sim = Sim::new(Platform::Xeon, 1);
        let line = sim.alloc_line(0);
        sim.spawn_on_core(0, scripted(vec![Action::Fai(line); 1000]));
        sim.run_until(500);
        assert!(sim.now() <= 500);
        let ops_mid = sim.memory().line(line).value;
        sim.run_to_completion();
        assert!(sim.memory().line(line).value > ops_mid);
    }

    #[test]
    fn complete_op_counts() {
        let mut sim = Sim::new(Platform::Niagara, 1);
        let line = sim.alloc_line(0);
        let tid = sim.spawn_on_core(0, {
            let mut n = 0;
            fn_program(move |_r, env| {
                n += 1;
                if n > 10 {
                    return Action::Done;
                }
                env.complete_op();
                Action::Fai(line)
            })
        });
        sim.run_to_completion();
        assert_eq!(sim.ops(tid), 10);
        assert_eq!(sim.total_ops(), 10);
    }
}

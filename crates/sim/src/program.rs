//! The simulated-thread execution interface.
//!
//! A simulated thread is a state machine implementing [`Program`]: at
//! every step it receives the result of its previous action and returns
//! the next [`Action`]. The engine charges the action's latency, updates
//! the memory system, and re-schedules the thread at the completion time.
//! Everything the SSYNC stack does — spinning on a flag, taking a ticket,
//! enqueuing on an MCS queue, exchanging a message — decomposes into
//! these actions.

use rand::rngs::SmallRng;

use crate::memory::LineId;

/// The kind of a memory operation, used by the latency model and the
/// protocol transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOpKind {
    /// Plain load.
    Load,
    /// Plain store.
    Store,
    /// Compare-and-swap.
    Cas,
    /// Fetch-and-increment.
    Fai,
    /// Test-and-set.
    Tas,
    /// Atomic swap (exchange).
    Swap,
    /// x86 `prefetchw`: acquire the line in Modified state without a
    /// data operation (the Section 5.3 optimization).
    Prefetchw,
    /// Evict the line from all caches, writing back (used to stage the
    /// "Invalid" rows of Table 2).
    Flush,
}

impl MemOpKind {
    /// True for operations that install the requester as Modified owner.
    pub fn is_write_class(self) -> bool {
        !matches!(self, MemOpKind::Load | MemOpKind::Flush)
    }
}

/// The predicate a [`Action::SpinWait`] waits for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitCond {
    /// Wait until the line's value equals the operand.
    Eq(u64),
    /// Wait until the line's value differs from the operand.
    Ne(u64),
}

impl WaitCond {
    /// True if `value` satisfies the condition.
    pub fn satisfied(self, value: u64) -> bool {
        match self {
            WaitCond::Eq(x) => value == x,
            WaitCond::Ne(x) => value != x,
        }
    }
}

/// One step of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Load the line's value; the next step receives it as `result`.
    Load(LineId),
    /// Store a value.
    Store(LineId, u64),
    /// Compare-and-swap: if the value equals `.1`, replace it with `.2`.
    /// The next step receives the *old* value (success iff old == `.1`).
    Cas(LineId, u64, u64),
    /// Fetch-and-increment; the next step receives the old value.
    Fai(LineId),
    /// Test-and-set: set the value to 1; the next step receives the old
    /// value (0 means the TAS "won").
    Tas(LineId),
    /// Swap in a new value; the next step receives the old value.
    Swap(LineId, u64),
    /// Prefetch the line in Modified state (no value change).
    Prefetchw(LineId),
    /// Evict the line everywhere (write-back); staging only.
    Flush(LineId),
    /// Local computation for the given number of cycles (scaled by the
    /// hardware-thread sharing factor on Niagara).
    Pause(u64),
    /// Spin on a line until its value satisfies the condition, polling
    /// every `pause` cycles of local work between re-reads. Semantically
    /// identical to the explicit `Load` / check / `Pause(pause)` loop —
    /// the first load is issued immediately, polls of an unchanged
    /// cached line cost local-hit latency, and the poll that observes a
    /// writer's invalidation pays the full coherence miss — but the
    /// engine parks the thread on the line's wait-list instead of
    /// scheduling one event per poll, and a write wakes it at the first
    /// poll boundary at or after the write. The next step receives the
    /// first polled value that satisfied the condition.
    SpinWait {
        /// The line to poll.
        line: LineId,
        /// Resume when the line's value satisfies this.
        cond: WaitCond,
        /// Local-work cycles between polls (as `Pause`, scaled by the
        /// hardware-thread sharing factor).
        pause: u64,
    },
    /// Suspend until another thread issues [`Action::Unpark`] for this
    /// thread. Like `std::thread::park`, a pending unpark "permit" makes
    /// `Park` return immediately. Models the futex sleep of a Pthread
    /// mutex; the engine charges the suspend/wake costs.
    Park,
    /// Wake the given thread (by thread id), granting a permit if it is
    /// not currently parked.
    Unpark(usize),
    /// Hardware message passing (Tilera iMesh): enqueue a word for the
    /// receiving *thread*. Delivery latency depends on mesh distance.
    HwSend {
        /// Receiving thread id.
        to: usize,
        /// Payload word.
        payload: u64,
    },
    /// Receive the next hardware message; blocks until one is available.
    /// The next step receives the payload.
    HwRecv,
    /// Terminate this thread.
    Done,
}

impl Action {
    /// Decomposes a memory-operation action into `(op, line, operand,
    /// expected)` for the engine's single dispatch path; `None` for
    /// non-memory actions.
    pub fn mem_op_parts(&self) -> Option<(MemOpKind, LineId, Option<u64>, Option<u64>)> {
        Some(match *self {
            Action::Load(line) => (MemOpKind::Load, line, None, None),
            Action::Store(line, v) => (MemOpKind::Store, line, Some(v), None),
            Action::Cas(line, expected, new) => (MemOpKind::Cas, line, Some(new), Some(expected)),
            Action::Fai(line) => (MemOpKind::Fai, line, None, None),
            Action::Tas(line) => (MemOpKind::Tas, line, None, None),
            Action::Swap(line, v) => (MemOpKind::Swap, line, Some(v), None),
            Action::Prefetchw(line) => (MemOpKind::Prefetchw, line, None, None),
            Action::Flush(line) => (MemOpKind::Flush, line, None, None),
            _ => return None,
        })
    }
}

/// Per-step environment handed to [`Program::step`].
pub struct Env<'a> {
    /// Current simulated time (cycles).
    pub now: u64,
    /// This thread's id (spawn order).
    pub tid: usize,
    /// The core this thread runs on.
    pub core: usize,
    /// Deterministic per-thread randomness.
    pub rng: &'a mut SmallRng,
    pub(crate) ops: &'a mut u64,
    pub(crate) samples: &'a mut Vec<u64>,
}

impl Env<'_> {
    /// Records the completion of one application-level operation (a full
    /// lock acquire/release, one hash-table lookup, ...). The benchmark
    /// harnesses compute throughput from these counters.
    pub fn complete_op(&mut self) {
        *self.ops += 1;
    }

    /// Records a latency sample (cycles); used by the latency-oriented
    /// experiments (Figures 3, 6, 9 and Table 2).
    pub fn record_sample(&mut self, cycles: u64) {
        self.samples.push(cycles);
    }
}

/// A simulated thread.
///
/// `step` is called with the result of the previous action:
///
/// * `None` on the first step and after non-value actions
///   (Store/Prefetchw/Flush/Pause/Park/Unpark/HwSend),
/// * `Some(value)` after Load/Cas/Fai/Tas/Swap/SpinWait/HwRecv.
pub trait Program {
    /// Produces the thread's next action.
    fn step(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Action;
}

/// A sub-state-machine that runs embedded in a larger program (the sim
/// lock algorithms expose acquire/release as `SubProgram`s so that
/// workloads can compose them).
pub trait SubProgram {
    /// Produces the next action, or `None` when the sub-program finished.
    /// `result` carries the previous action's value, as for [`Program`].
    fn substep(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Option<Action>;
}

/// Runs a closure-based program: convenient for tests and simple
/// workloads. The closure is the `step` function.
pub struct FnProgram<F>(pub F);

impl<F> Program for FnProgram<F>
where
    F: FnMut(Option<u64>, &mut Env<'_>) -> Action,
{
    fn step(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Action {
        (self.0)(result, env)
    }
}

/// Boxes a closure as a [`Program`], pinning down the closure's
/// higher-ranked signature (plain `Box::new(FnProgram(..))` often fails
/// inference on the `&mut Env<'_>` lifetime).
pub fn fn_program<F>(f: F) -> Box<dyn Program>
where
    F: FnMut(Option<u64>, &mut Env<'_>) -> Action + 'static,
{
    Box::new(FnProgram(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_class_covers_rmw_and_stores() {
        assert!(MemOpKind::Store.is_write_class());
        assert!(MemOpKind::Cas.is_write_class());
        assert!(MemOpKind::Prefetchw.is_write_class());
        assert!(!MemOpKind::Load.is_write_class());
        assert!(!MemOpKind::Flush.is_write_class());
    }
}

//! Coherence-traffic statistics.
//!
//! The paper's method is to *explain* scalability through coherence
//! traffic; [`SimStats`] gives programs run on the simulator the same
//! explanatory handle: how many operations hit locally, how many moved a
//! line between cores, how many crossed a socket, and how many
//! invalidated sharers. The engine updates these on every memory
//! operation.

/// Aggregate coherence-traffic counters for one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Memory operations that hit the requester's own cached copy.
    pub local_hits: u64,
    /// Operations served by the LLC/directory without a dirty-owner
    /// probe (Shared/Invalid reads).
    pub llc_serves: u64,
    /// Operations that pulled the line out of another core's cache.
    pub transfers: u64,
    /// Transfers whose previous holder was on a different die/socket.
    pub cross_socket_transfers: u64,
    /// Write-class operations that invalidated at least one sharer copy.
    pub invalidations: u64,
    /// Total sharer copies invalidated.
    pub copies_invalidated: u64,
}

impl SimStats {
    /// Fraction of non-local operations that crossed a socket; `None`
    /// when no transfers happened.
    pub fn cross_socket_ratio(&self) -> Option<f64> {
        if self.transfers == 0 {
            None
        } else {
            Some(self.cross_socket_transfers as f64 / self.transfers as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero_transfers() {
        let s = SimStats::default();
        assert_eq!(s.cross_socket_ratio(), None);
        let s = SimStats {
            transfers: 4,
            cross_socket_transfers: 1,
            ..Default::default()
        };
        assert_eq!(s.cross_socket_ratio(), Some(0.25));
    }
}

//! # ssync-sim
//!
//! A deterministic discrete-event simulator of the four many-core
//! platforms of the SOSP'13 synchronization study (AMD Opteron, Intel
//! Xeon, Sun Niagara 2, Tilera TILE-Gx36), at the granularity the paper
//! itself analyses: **cache lines, coherence states, and the per-state /
//! per-distance latencies of its Tables 2 and 3**.
//!
//! ## Why a simulator
//!
//! The paper's central claim is that "scalability of synchronization is
//! mainly a property of the hardware": the behaviour of every lock and
//! every concurrent data structure it measures is explained by the cost
//! of moving one cache line between cores, as a function of the line's
//! MESI state and the cores' distance. Those per-operation costs are
//! exactly what the paper reports (Tables 2/3), so feeding them into a
//! model with per-line serialization lets the *contended* behaviour
//! (Figures 3–12) emerge from the synchronization algorithms themselves.
//! Tables 2/3 match by construction; the figures are genuine outputs.
//!
//! ## Model
//!
//! * [`memory`] — one record per cache line: global coherence state
//!   (MESI + Owned for the Opteron's MOESI), owner, sharer set, home
//!   node/tile, a 64-bit value, and a `busy_until` serialization point.
//! * [`protocol`] — the state transitions each operation induces.
//! * [`latency`] — the per-platform cost model transcribing Tables 2/3
//!   and the prose rules of Section 5 (Opteron's broadcast on
//!   owned/shared stores, Xeon's inclusive-LLC locality, Niagara's
//!   uniformity, Tilera's per-hop and per-sharer costs).
//! * [`engine`] — the event loop: simulated threads are [`program::Program`]
//!   state machines that issue [`program::Action`]s; the engine charges
//!   latencies, serializes conflicting line accesses, and advances time.
//!
//! Capacity misses and evictions are not modelled: the paper's
//! microbenchmark working sets fit in cache, and its "Invalid" rows are
//! reproduced with an explicit flush operation.
//!
//! ## Example
//!
//! ```
//! use ssync_core::Platform;
//! use ssync_sim::engine::Sim;
//! use ssync_sim::program::{Action, Env, Program};
//!
//! /// Increment a shared counter 10 times, then stop.
//! struct Incr { line: ssync_sim::memory::LineId, left: u32 }
//! impl Program for Incr {
//!     fn step(&mut self, _r: Option<u64>, _env: &mut Env<'_>) -> Action {
//!         if self.left == 0 { return Action::Done; }
//!         self.left -= 1;
//!         Action::Fai(self.line)
//!     }
//! }
//!
//! let mut sim = Sim::new(Platform::Niagara, 42);
//! let line = sim.alloc_line_for_core(0);
//! sim.spawn_on_core(0, Box::new(Incr { line, left: 10 }));
//! sim.spawn_on_core(8, Box::new(Incr { line, left: 10 }));
//! sim.run_to_completion();
//! assert_eq!(sim.memory().line(line).value, 20);
//! ```

pub mod engine;
pub mod latency;
pub mod memory;
pub mod program;
pub mod protocol;
pub mod stats;

pub use engine::Sim;
pub use latency::LatencyModel;
pub use memory::{CohState, Line, LineId, Memory, SharerSet};
pub use program::{Action, Env, Program, WaitCond};
pub use stats::SimStats;

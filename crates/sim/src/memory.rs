//! The simulated memory system: one record per cache line.
//!
//! The simulator tracks, for every allocated line, the *global* picture a
//! coherence directory would hold: which core owns it (Modified /
//! Exclusive / Owned), which cores share it, where its home memory node
//! (or, on the Tilera, home tile) is, plus a 64-bit value — enough for
//! lock words, flags, tickets and counters — and the `busy_until`
//! timestamp that serializes conflicting directory transactions.

/// Identifier of a simulated cache line.
pub type LineId = u64;

/// Global coherence state of a line (MESI, plus MOESI's Owned for the
/// Opteron). The Xeon's Forward state is a bandwidth optimization of
/// Shared and is folded into [`CohState::Shared`]; its effect is part of
/// the "load from shared" latencies the model transcribes from Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CohState {
    /// No cache holds the line; memory is up to date.
    Invalid,
    /// One or more caches hold a clean copy.
    Shared,
    /// Exactly one cache holds a clean copy.
    Exclusive,
    /// Exactly one cache holds a dirty copy.
    Modified,
    /// MOESI: the owner holds a dirty copy *and* other caches hold shared
    /// copies (Opteron only).
    Owned,
}

/// A set of cores (up to 128, enough for the 80-core Xeon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharerSet(u128);

impl SharerSet {
    /// The empty set.
    pub const EMPTY: SharerSet = SharerSet(0);

    /// Adds a core.
    pub fn add(&mut self, core: usize) {
        debug_assert!(core < 128);
        self.0 |= 1 << core;
    }

    /// Removes a core.
    pub fn remove(&mut self, core: usize) {
        self.0 &= !(1 << core);
    }

    /// Membership test.
    pub fn contains(&self, core: usize) -> bool {
        self.0 & (1 << core) != 0
    }

    /// Number of cores in the set.
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// True if no cores are in the set.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Removes all cores.
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Iterates over member cores in increasing order. Runs in O(set
    /// size) by peeling the lowest set bit each step, not O(128) — this
    /// sits on the latency model's per-operation path (sharer-socket
    /// counts, nearest-sharer searches).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(i)
        })
    }
}

impl FromIterator<usize> for SharerSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = SharerSet::EMPTY;
        for c in iter {
            s.add(c);
        }
        s
    }
}

/// Directory record of one cache line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Global coherence state.
    pub state: CohState,
    /// Core holding the line in M/E/O state (`None` for Invalid/Shared).
    pub owner: Option<usize>,
    /// Cores holding a Shared copy (excludes the owner in O state; the
    /// owner's dirty copy is tracked by `owner`).
    pub sharers: SharerSet,
    /// Home memory node (Opteron/Xeon: die; Niagara: 0) or home tile
    /// (Tilera: the L2 slice that acts as the line's LLC).
    pub home: usize,
    /// The 64-bit word the synchronization algorithms operate on.
    pub value: u64,
    /// Directory/bus serialization point: a conflicting transaction on
    /// this line cannot start before this simulated time.
    pub busy_until: u64,
}

impl Line {
    fn new(home: usize) -> Self {
        Self {
            state: CohState::Invalid,
            owner: None,
            sharers: SharerSet::EMPTY,
            home,
            value: 0,
            busy_until: 0,
        }
    }

    /// True if `core` has a valid cached copy (any state).
    pub fn cached_at(&self, core: usize) -> bool {
        self.owner == Some(core) || self.sharers.contains(core)
    }
}

/// The simulated memory: an arena of cache lines.
#[derive(Debug, Default)]
pub struct Memory {
    lines: Vec<Line>,
}

impl Memory {
    /// Creates an empty memory system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh line homed at `home` (a memory node, or a tile on
    /// the Tilera), starting Invalid with value 0.
    pub fn alloc(&mut self, home: usize) -> LineId {
        let id = self.lines.len() as LineId;
        self.lines.push(Line::new(home));
        id
    }

    /// Immutable access to a line.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`Memory::alloc`].
    pub fn line(&self, id: LineId) -> &Line {
        &self.lines[id as usize]
    }

    /// Mutable access to a line (used by the engine and by experiment
    /// setup code that needs to stage a precise coherence state).
    pub fn line_mut(&mut self, id: LineId) -> &mut Line {
        &mut self.lines[id as usize]
    }

    /// Number of allocated lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True if no lines are allocated.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharer_set_basics() {
        let mut s = SharerSet::EMPTY;
        assert!(s.is_empty());
        s.add(0);
        s.add(79);
        assert!(s.contains(0) && s.contains(79) && !s.contains(40));
        assert_eq!(s.count(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 79]);
        s.remove(0);
        assert_eq!(s.count(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn sharer_set_from_iter() {
        let s: SharerSet = [1, 2, 3].into_iter().collect();
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn sharer_set_iter_sparse_and_high_bits() {
        let s: SharerSet = [0, 1, 63, 64, 101, 127].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 63, 64, 101, 127]);
        assert_eq!(SharerSet::EMPTY.iter().count(), 0);
        let lone: SharerSet = [127].into_iter().collect();
        assert_eq!(lone.iter().collect::<Vec<_>>(), vec![127]);
        // Dense set round-trips in order.
        let dense: SharerSet = (0..128).collect();
        assert!(dense.iter().eq(0..128));
    }

    #[test]
    fn alloc_and_access() {
        let mut m = Memory::new();
        assert!(m.is_empty());
        let a = m.alloc(0);
        let b = m.alloc(3);
        assert_eq!(m.len(), 2);
        assert_eq!(m.line(a).home, 0);
        assert_eq!(m.line(b).home, 3);
        assert_eq!(m.line(a).state, CohState::Invalid);
        m.line_mut(a).value = 7;
        assert_eq!(m.line(a).value, 7);
    }

    #[test]
    fn cached_at_covers_owner_and_sharers() {
        let mut m = Memory::new();
        let a = m.alloc(0);
        {
            let l = m.line_mut(a);
            l.state = CohState::Owned;
            l.owner = Some(3);
            l.sharers.add(5);
        }
        assert!(m.line(a).cached_at(3));
        assert!(m.line(a).cached_at(5));
        assert!(!m.line(a).cached_at(4));
    }
}

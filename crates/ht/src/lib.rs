//! # ssync-ht
//!
//! A native Rust port of `ssht`, the paper's concurrent hash table
//! (Section 4.3): `put` / `get` / `remove` over fixed buckets, each
//! protected by one pluggable lock from `ssync-locks` — or served by
//! dedicated server threads over `ssync-mp` channels, the configuration
//! that wins Figure 11's high-contention workloads.
//!
//! * [`table`] — the lock-based table, generic over the lock algorithm.
//! * [`mp_table`] — the message-passing variant: partitioned ownership,
//!   one thread per partition, blocking round-trip operations.
//!
//! # Examples
//!
//! ```
//! use ssync_ht::HashTable;
//! use ssync_locks::TicketLock;
//!
//! let ht: HashTable<TicketLock> = HashTable::new(64);
//! ht.put(1, 10);
//! assert_eq!(ht.get(1), Some(10));
//! assert_eq!(ht.remove(1), Some(10));
//! assert_eq!(ht.get(1), None);
//! ```

pub mod mp_table;
pub mod table;

pub use mp_table::MpHashTable;
pub use table::HashTable;

/// The key type of the study's workloads (64-bit integers, Section 6.3).
pub type Key = u64;

/// The value type: one word stands in for the 64-byte payload (the
/// payload size affects cache traffic, which the simulator models; the
/// native table cares about semantics).
pub type Value = u64;

/// The bucket index for a key: multiplicative hashing (Fibonacci
/// constant), as cheap as `ssht`'s and with good dispersion for
/// sequential keys.
pub fn bucket_of(key: Key, buckets: usize) -> usize {
    debug_assert!(buckets > 0);
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_is_stable_and_in_range() {
        for k in 0..1000 {
            let b = bucket_of(k, 12);
            assert!(b < 12);
            assert_eq!(b, bucket_of(k, 12));
        }
    }

    #[test]
    fn bucket_of_disperses_sequential_keys() {
        let mut hits = vec![0usize; 16];
        for k in 0..1600 {
            hits[bucket_of(k, 16)] += 1;
        }
        // No bucket holds more than 3x its fair share.
        assert!(hits.iter().all(|&h| h < 300), "{hits:?}");
    }
}

//! The message-passing hash table: partitioned ownership.
//!
//! Buckets are partitioned across dedicated *server* threads; clients
//! never touch table memory. An operation is a round trip over
//! `ssync-mp` channels: the client sends `(op, key, value)` and blocks on
//! the reply, exactly the blocking configuration the paper runs in
//! Figure 11 (where it wins every high-contention workload: the data
//! stays in the owning server's cache and no lock is ever taken).

use std::collections::HashMap;
use std::thread::JoinHandle;

use ssync_core::SpinWait;
use ssync_mp::channel::{channel, Receiver, Sender};
use ssync_mp::hub::ServerHub;

use crate::{bucket_of, Key, Value};

const OP_GET: u64 = 1;
const OP_PUT: u64 = 2;
const OP_REMOVE: u64 = 3;
const OP_SHUTDOWN: u64 = 4;

/// A handle to a partitioned, server-owned hash table.
///
/// Create with [`MpHashTable::spawn`], obtain one [`MpTableClient`] per
/// client thread with [`MpHashTable::client`], and drop the handle to
/// shut the servers down.
///
/// # Examples
///
/// ```
/// let (table, mut clients) = ssync_ht::MpHashTable::spawn(2, 64, 1);
/// let client = clients.remove(0);
/// assert_eq!(client.put(7, 70), None);
/// assert_eq!(client.get(7), Some(70));
/// assert_eq!(client.remove(7), Some(70));
/// drop(client);
/// table.shutdown();
/// ```
pub struct MpHashTable {
    servers: Vec<JoinHandle<()>>,
    shutdown_txs: Vec<Sender>,
}

/// Per-thread client endpoint.
pub struct MpTableClient {
    /// One request channel per server, plus the reply channel this
    /// client blocks on (servers reply on the per-client channel).
    requests: Vec<Sender>,
    replies: Vec<Receiver>,
    buckets: usize,
    servers: usize,
}

impl MpHashTable {
    /// Spawns `n_servers` server threads owning `buckets` buckets in
    /// round-robin partition, wired to `n_clients` client endpoints.
    pub fn spawn(
        n_servers: usize,
        buckets: usize,
        n_clients: usize,
    ) -> (MpHashTable, Vec<MpTableClient>) {
        assert!(n_servers > 0 && buckets > 0 && n_clients > 0);
        // Channel matrix: requests[s][c], replies[s][c].
        let mut req_rx: Vec<Vec<Receiver>> = Vec::new();
        let mut rep_tx: Vec<Vec<Sender>> = Vec::new();
        let mut clients: Vec<MpTableClient> = (0..n_clients)
            .map(|_| MpTableClient {
                requests: Vec::new(),
                replies: Vec::new(),
                buckets,
                servers: n_servers,
            })
            .collect();
        let mut shutdown_txs = Vec::new();
        let mut shutdown_rxs = Vec::new();
        for _ in 0..n_servers {
            let mut rx_row = Vec::new();
            let mut tx_row = Vec::new();
            for client in clients.iter_mut() {
                let (req_s, req_r) = channel();
                let (rep_s, rep_r) = channel();
                client.requests.push(req_s);
                client.replies.push(rep_r);
                rx_row.push(req_r);
                tx_row.push(rep_s);
            }
            let (st, sr) = channel();
            shutdown_txs.push(st);
            shutdown_rxs.push(sr);
            req_rx.push(rx_row);
            rep_tx.push(tx_row);
        }
        let mut servers = Vec::new();
        for (s, (rx_row, tx_row)) in req_rx.into_iter().zip(rep_tx).enumerate() {
            let shutdown = shutdown_rxs.remove(0);
            servers.push(std::thread::spawn(move || {
                server_loop(s, rx_row, tx_row, shutdown);
            }));
        }
        (
            MpHashTable {
                servers,
                shutdown_txs,
            },
            clients,
        )
    }

    /// Stops the server threads (all clients must be dropped first, or
    /// in-flight requests may be abandoned).
    pub fn shutdown(self) {
        for tx in &self.shutdown_txs {
            tx.send([OP_SHUTDOWN, 0, 0, 0, 0, 0, 0]);
        }
        for h in self.servers {
            h.join().expect("server thread panicked");
        }
    }
}

fn server_loop(
    _server_id: usize,
    requests: Vec<Receiver>,
    replies: Vec<Sender>,
    shutdown: Receiver,
) {
    // The server's partition, keyed by bucket then key. A HashMap per
    // bucket keeps the ownership structure of `ssht` without re-doing
    // the open-chaining details (the native table covers those).
    let mut data: HashMap<usize, HashMap<Key, Value>> = HashMap::new();
    let mut hub = ServerHub::new(requests);
    let mut wait = SpinWait::new();
    loop {
        if shutdown.try_recv().is_some() {
            return;
        }
        let Some((client, msg)) = hub.try_recv_from_any() else {
            wait.snooze();
            continue;
        };
        wait = SpinWait::new();
        let [op, key, value, bucket, ..] = msg;
        let bucket = bucket as usize;
        let entry = data.entry(bucket).or_default();
        let (found, old) = match op {
            OP_GET => match entry.get(&key) {
                Some(v) => (1, *v),
                None => (0, 0),
            },
            OP_PUT => match entry.insert(key, value) {
                Some(v) => (1, v),
                None => (0, 0),
            },
            OP_REMOVE => match entry.remove(&key) {
                Some(v) => (1, v),
                None => (0, 0),
            },
            _ => (0, 0),
        };
        replies[client].send([found, old, 0, 0, 0, 0, 0]);
    }
}

impl MpTableClient {
    fn request(&self, op: u64, key: Key, value: Value) -> Option<Value> {
        let bucket = bucket_of(key, self.buckets);
        let server = bucket % self.servers;
        self.requests[server].send([op, key, value, bucket as u64, 0, 0, 0]);
        let [found, old, ..] = self.replies[server].recv();
        (found == 1).then_some(old)
    }

    /// Looks a key up (blocking round trip).
    pub fn get(&self, key: Key) -> Option<Value> {
        self.request(OP_GET, key, 0)
    }

    /// Inserts or updates; returns the previous value if any.
    pub fn put(&self, key: Key, value: Value) -> Option<Value> {
        self.request(OP_PUT, key, value)
    }

    /// Removes a key; returns its value if present.
    pub fn remove(&self, key: Key) -> Option<Value> {
        self.request(OP_REMOVE, key, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_client_semantics() {
        let (table, mut clients) = MpHashTable::spawn(2, 32, 1);
        let c = clients.remove(0);
        assert_eq!(c.put(1, 10), None);
        assert_eq!(c.put(1, 11), Some(10));
        assert_eq!(c.get(1), Some(11));
        assert_eq!(c.remove(1), Some(11));
        assert_eq!(c.get(1), None);
        drop(c);
        table.shutdown();
    }

    #[test]
    fn multiple_clients_disjoint_keys() {
        let (table, clients) = MpHashTable::spawn(3, 64, 4);
        std::thread::scope(|s| {
            for (i, c) in clients.into_iter().enumerate() {
                s.spawn(move || {
                    let base = i as u64 * 1_000;
                    for k in 0..100 {
                        assert_eq!(c.put(base + k, k), None);
                    }
                    for k in 0..100 {
                        assert_eq!(c.get(base + k), Some(k));
                    }
                    for k in 0..100 {
                        assert_eq!(c.remove(base + k), Some(k));
                    }
                });
            }
        });
        table.shutdown();
    }

    #[test]
    fn keys_route_to_stable_servers() {
        let (table, mut clients) = MpHashTable::spawn(4, 16, 2);
        let a = clients.remove(0);
        let b = clients.remove(0);
        // Writes through one client are visible through the other.
        a.put(42, 420);
        assert_eq!(b.get(42), Some(420));
        b.put(42, 421);
        assert_eq!(a.get(42), Some(421));
        drop((a, b));
        table.shutdown();
    }
}

//! The lock-based hash table.
//!
//! Fixed bucket count, separate chaining inside a bucket vector, one
//! lock per bucket. The lock algorithm is a type parameter, which is how
//! the Figure 11 experiments swap all of `libslock`'s locks through one
//! table; `ssht` exposes the same knob via its build configuration.

use ssync_locks::{Lock, RawLock};

use crate::{bucket_of, Key, Value};

/// One bucket: a chained entry list behind its own lock.
type Bucket<R> = Lock<Vec<(Key, Value)>, R>;

/// A concurrent fixed-bucket hash table protected by per-bucket locks.
pub struct HashTable<R: RawLock + Default> {
    buckets: Box<[Bucket<R>]>,
}

impl<R: RawLock + Default> HashTable<R> {
    /// Creates a table with `buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "hash table needs at least one bucket");
        Self {
            buckets: (0..buckets).map(|_| Lock::new(Vec::new())).collect(),
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Inserts or updates; returns the previous value if any.
    pub fn put(&self, key: Key, value: Value) -> Option<Value> {
        let mut bucket = self.buckets[bucket_of(key, self.buckets.len())].lock();
        for slot in bucket.iter_mut() {
            if slot.0 == key {
                return Some(core::mem::replace(&mut slot.1, value));
            }
        }
        bucket.push((key, value));
        None
    }

    /// Looks a key up.
    pub fn get(&self, key: Key) -> Option<Value> {
        let bucket = self.buckets[bucket_of(key, self.buckets.len())].lock();
        bucket.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Removes a key; returns its value if present.
    pub fn remove(&self, key: Key) -> Option<Value> {
        let mut bucket = self.buckets[bucket_of(key, self.buckets.len())].lock();
        let pos = bucket.iter().position(|(k, _)| *k == key)?;
        Some(bucket.swap_remove(pos).1)
    }

    /// Total number of entries (takes every bucket lock; statistics).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.lock().len()).sum()
    }

    /// True if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_locks::{ClhLock, McsLock, TasLock, TicketLock};

    #[test]
    fn put_get_remove_semantics() {
        let ht: HashTable<TicketLock> = HashTable::new(8);
        assert_eq!(ht.put(1, 10), None);
        assert_eq!(ht.put(1, 11), Some(10));
        assert_eq!(ht.get(1), Some(11));
        assert_eq!(ht.remove(1), Some(11));
        assert_eq!(ht.remove(1), None);
        assert!(ht.is_empty());
    }

    #[test]
    fn colliding_keys_coexist() {
        // With one bucket, everything collides.
        let ht: HashTable<TasLock> = HashTable::new(1);
        for k in 0..100 {
            ht.put(k, k * 2);
        }
        assert_eq!(ht.len(), 100);
        for k in 0..100 {
            assert_eq!(ht.get(k), Some(k * 2));
        }
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        let ht: HashTable<McsLock> = HashTable::new(16);
        // Each thread owns a disjoint key range; its view must be
        // perfectly sequential regardless of other threads.
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ht = &ht;
                s.spawn(move || {
                    let base = t * 10_000;
                    for i in 0..300 {
                        let k = base + i;
                        assert_eq!(ht.put(k, i), None);
                        assert_eq!(ht.get(k), Some(i));
                        if i % 3 == 0 {
                            assert_eq!(ht.remove(k), Some(i));
                        }
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(ht.len(), 4 * 200);
    }

    #[test]
    fn works_with_queue_locks() {
        let ht: HashTable<ClhLock> = HashTable::new(4);
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let ht = &ht;
                s.spawn(move || {
                    for i in 0..200 {
                        ht.put(i, t);
                        ht.get(i);
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(ht.len(), 200);
    }

    #[test]
    #[should_panic]
    fn zero_buckets_rejected() {
        let _ = HashTable::<TicketLock>::new(0);
    }
}

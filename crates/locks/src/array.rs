//! Anderson array-based queue lock.
//!
//! Each waiter spins on its own slot of a fixed array (one cache line per
//! slot), and release sets the *next* slot's flag, handing the lock over
//! with a single line transfer (Herlihy & Shavit \[20\], §7.5). The array
//! bounds the number of simultaneous waiters, which is why the paper
//! classifies ARRAY with the simple locks: queue behaviour, but a static,
//! per-lock memory footprint of `capacity` cache lines.

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use ssync_core::CachePadded;

use crate::raw::RawLock;

/// Default number of waiter slots (enough for the largest platform of the
/// study, the 80-core Xeon, with headroom).
pub const DEFAULT_CAPACITY: usize = 128;

/// Anderson array lock.
///
/// # Examples
///
/// ```
/// use ssync_locks::{ArrayLock, RawLock};
///
/// let lock = ArrayLock::with_capacity(8);
/// let t = lock.lock();
/// lock.unlock(t);
/// ```
#[derive(Debug)]
pub struct ArrayLock {
    /// `slots[i]` is true when the owner of ticket `i % capacity` may run.
    slots: Box<[CachePadded<AtomicBool>]>,
    /// Monotonically increasing ticket counter.
    tail: AtomicU64,
}

impl ArrayLock {
    /// Creates a lock able to queue up to `capacity` threads at once.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ArrayLock capacity must be non-zero");
        let mut slots = Vec::with_capacity(capacity);
        // Slot 0 starts "runnable": the first ticket acquires immediately.
        slots.push(CachePadded::new(AtomicBool::new(true)));
        for _ in 1..capacity {
            slots.push(CachePadded::new(AtomicBool::new(false)));
        }
        Self {
            slots: slots.into_boxed_slice(),
            tail: AtomicU64::new(0),
        }
    }

    /// Waiter capacity (exceeding it wraps the array and deadlocks, as in
    /// the original algorithm; callers size it to the thread count).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn slot_of(&self, ticket: u64) -> usize {
        (ticket % self.slots.len() as u64) as usize
    }
}

impl Default for ArrayLock {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl RawLock for ArrayLock {
    /// The ticket (slot index is `ticket % capacity`).
    type Token = u64;

    const NAME: &'static str = "ARRAY";

    fn lock(&self) -> Self::Token {
        let ticket = self.tail.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[self.slot_of(ticket)];
        while !slot.load(Ordering::Acquire) {
            ssync_core::sync::cpu_relax();
        }
        // Re-arm the slot for its next use (capacity tickets later).
        slot.store(false, Ordering::Relaxed);
        ticket
    }

    fn try_lock(&self) -> Option<Self::Token> {
        let ticket = self.tail.load(Ordering::Relaxed);
        let slot = &self.slots[self.slot_of(ticket)];
        if !slot.load(Ordering::Acquire) {
            return None;
        }
        // The head slot is runnable; race to claim that ticket.
        self.tail
            .compare_exchange(ticket, ticket + 1, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|t| {
                slot.store(false, Ordering::Relaxed);
                t
            })
    }

    fn unlock(&self, token: Self::Token) {
        let next = &self.slots[self.slot_of(token + 1)];
        next.store(true, Ordering::Release);
    }

    fn is_locked(&self) -> bool {
        // The lock is free iff the slot for the next ticket is runnable: a
        // runnable head slot means the next locker proceeds immediately.
        let head = self.tail.load(Ordering::Relaxed);
        !self.slots[self.slot_of(head)].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::test_support;
    use std::sync::Arc;

    #[test]
    fn protocol() {
        test_support::protocol_smoke(&ArrayLock::default());
    }

    #[test]
    fn mutual_exclusion_under_threads() {
        test_support::counter_torture(Arc::new(ArrayLock::with_capacity(8)), 4, 3_000);
    }

    #[test]
    fn slots_wrap_around() {
        let lock = ArrayLock::with_capacity(2);
        for _ in 0..10 {
            let t = lock.lock();
            lock.unlock(t);
        }
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        ArrayLock::with_capacity(0);
    }
}

//! Thread-to-cluster registry for hierarchical locks.
//!
//! Hierarchical locks (HCLH, HTICKET) batch lock handoffs within a
//! *cluster* — a socket or die — to avoid paying cross-socket coherence
//! traffic on every handoff (Sections 2 and 6.1 of the paper). The lock
//! itself cannot know which socket the calling thread runs on, so the
//! application declares it once per thread, exactly like `libslock`'s
//! per-thread initialization functions.
//!
//! On a real deployment the cluster is the NUMA node of the core the
//! thread is pinned to; the benchmark harnesses derive it from
//! [`ssync_core::Topology::die_of`].

use std::cell::Cell;

thread_local! {
    static CLUSTER: Cell<usize> = const { Cell::new(0) };
}

/// Declares the calling thread's cluster (socket/die) id.
///
/// Hierarchical locks group handoffs by this id. Threads that never call
/// this default to cluster 0, which makes hierarchical locks behave like
/// their flat counterparts.
///
/// # Examples
///
/// ```
/// ssync_locks::set_thread_cluster(1);
/// assert_eq!(ssync_locks::cluster::current_cluster(), 1);
/// ```
pub fn set_thread_cluster(cluster: usize) {
    CLUSTER.with(|c| c.set(cluster));
}

/// The calling thread's cluster id (0 unless set).
pub fn current_cluster() -> usize {
    CLUSTER.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_zero() {
        std::thread::spawn(|| assert_eq!(current_cluster(), 0))
            .join()
            .unwrap();
    }

    #[test]
    fn set_is_thread_local() {
        set_thread_cluster(3);
        assert_eq!(current_cluster(), 3);
        std::thread::spawn(|| {
            assert_eq!(current_cluster(), 0);
            set_thread_cluster(5);
            assert_eq!(current_cluster(), 5);
        })
        .join()
        .unwrap();
        assert_eq!(current_cluster(), 3);
        set_thread_cluster(0);
    }
}

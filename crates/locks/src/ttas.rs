//! Test-and-test-and-set lock with exponential back-off.
//!
//! TTAS spins with plain *loads* on a locally cached copy of the flag and
//! only attempts the atomic swap once it observes the lock free, so the
//! waiting cores share the line in S state instead of ping-ponging it in
//! M state. Combined with exponential back-off after failed swaps
//! (Anderson \[4\], Herlihy & Shavit \[20\]), this removes most of the
//! coherence storm of plain TAS while keeping its single-word footprint.

use crate::sync::atomic::{AtomicBool, Ordering};

use ssync_core::Backoff;

use crate::raw::RawLock;

/// Test-and-test-and-set lock with exponential back-off.
///
/// # Examples
///
/// ```
/// use ssync_locks::{RawLock, TtasLock};
///
/// let lock = TtasLock::default();
/// let t = lock.lock();
/// lock.unlock(t);
/// assert!(!lock.is_locked());
/// ```
#[derive(Debug, Default)]
pub struct TtasLock {
    flag: AtomicBool,
}

impl TtasLock {
    /// Creates a new, unlocked TTAS lock.
    pub const fn new() -> Self {
        Self {
            flag: AtomicBool::new(false),
        }
    }
}

impl RawLock for TtasLock {
    type Token = ();

    const NAME: &'static str = "TTAS";

    fn lock(&self) -> Self::Token {
        let mut backoff = Backoff::new();
        loop {
            // Read-only spin phase: wait until the line says "free".
            while self.flag.load(Ordering::Relaxed) {
                ssync_core::sync::cpu_relax();
            }
            // Atomic phase: a single swap attempt.
            if !self.flag.swap(true, Ordering::Acquire) {
                return;
            }
            // Lost the race: back off exponentially before re-reading.
            backoff.spin();
        }
    }

    fn try_lock(&self) -> Option<Self::Token> {
        if !self.flag.load(Ordering::Relaxed) && !self.flag.swap(true, Ordering::Acquire) {
            Some(())
        } else {
            None
        }
    }

    fn unlock(&self, _token: Self::Token) {
        self.flag.store(false, Ordering::Release);
    }

    fn is_locked(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::test_support;
    use std::sync::Arc;

    #[test]
    fn protocol() {
        test_support::protocol_smoke(&TtasLock::new());
    }

    #[test]
    fn mutual_exclusion_under_threads() {
        test_support::counter_torture(Arc::new(TtasLock::new()), 4, 3_000);
    }

    #[test]
    fn try_lock_fails_fast_when_held() {
        let lock = TtasLock::new();
        lock.lock();
        // try_lock must not spin: it observes the held flag and bails.
        assert!(lock.try_lock().is_none());
        lock.unlock(());
    }
}

//! Cooperative (blocking) mutex — the Pthread-mutex stand-in.
//!
//! The paper's ninth lock is the stock `pthread_mutex_t`: on contention
//! the thread is queued and *suspended* by the kernel instead of
//! busy-waiting. Its distinguishing results are (a) it never wins when
//! each thread has a core to itself (Section 6.1.2: "there is no scenario
//! in which Pthread Mutexes perform the best"), and (b) it is the right
//! choice when threads outnumber cores, because spinning then burns the
//! very cycles the holder needs.
//!
//! We model it with `parking_lot::RawMutex`: an adaptive small-spin-then-
//! park mutex, the same structure as glibc's adaptive `pthread_mutex`
//! (short optimistic spin, then a futex-style sleep). `parking_lot` is one
//! of the sanctioned foundation crates of this workspace; the simulator's
//! version (`ssync-simsync`) models the suspension cost explicitly.

use parking_lot::lock_api::RawMutex as _;

use crate::raw::RawLock;

/// Blocking mutex (Pthread-mutex model), backed by `parking_lot`.
///
/// # Examples
///
/// ```
/// use ssync_locks::{MutexLock, RawLock};
///
/// let lock = MutexLock::default();
/// let t = lock.lock();
/// assert!(lock.try_lock().is_none());
/// lock.unlock(t);
/// ```
pub struct MutexLock {
    raw: parking_lot::RawMutex,
}

impl core::fmt::Debug for MutexLock {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MutexLock")
            .field("locked", &self.is_locked())
            .finish()
    }
}

impl MutexLock {
    /// Creates a new, unlocked mutex.
    pub const fn new() -> Self {
        Self {
            raw: parking_lot::RawMutex::INIT,
        }
    }
}

impl Default for MutexLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RawLock for MutexLock {
    type Token = ();

    const NAME: &'static str = "MUTEX";

    fn lock(&self) -> Self::Token {
        self.raw.lock();
    }

    fn try_lock(&self) -> Option<Self::Token> {
        self.raw.try_lock().then_some(())
    }

    fn unlock(&self, _token: Self::Token) {
        // SAFETY: `RawLock`'s contract requires the caller to pass the
        // token of a held acquisition, so the mutex is locked by us.
        unsafe { self.raw.unlock() };
    }

    fn is_locked(&self) -> bool {
        self.raw.is_locked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::test_support;
    use std::sync::Arc;

    #[test]
    fn protocol() {
        test_support::protocol_smoke(&MutexLock::new());
    }

    #[test]
    fn mutual_exclusion_under_threads() {
        test_support::counter_torture(Arc::new(MutexLock::new()), 4, 3_000);
    }

    #[test]
    fn oversubscribed_threads_make_progress() {
        // More threads than cores (this machine has few): the parking
        // path must hand the lock over without livelock.
        test_support::counter_torture(Arc::new(MutexLock::new()), 16, 500);
    }
}

//! Runtime lock-algorithm selection.
//!
//! The paper's experiments sweep *all* locks over every workload; the
//! benchmark harnesses therefore need to pick the algorithm at runtime.
//! [`AnyLock`] is an enum-dispatch wrapper over every algorithm in the
//! crate, and [`LockKind`] enumerates them in the order the paper's
//! figures list them.

use crate::array::ArrayLock;
use crate::clh::ClhLock;
use crate::mcs::McsLock;
use crate::mutex::MutexLock;
use crate::raw::RawLock;
use crate::tas::TasLock;
use crate::ticket::{TicketLock, TicketLockNoBackoff};
use crate::ttas::TtasLock;
use crate::{HclhLock, HticketLock};

/// The lock algorithms of the study, in the paper's figure order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// Test-and-set spin lock.
    Tas,
    /// Test-and-test-and-set with exponential back-off.
    Ttas,
    /// Ticket lock with proportional back-off.
    Ticket,
    /// Anderson array lock.
    Array,
    /// Blocking mutex (Pthread model).
    Mutex,
    /// MCS queue lock.
    Mcs,
    /// CLH queue lock.
    Clh,
    /// Hierarchical CLH (cohort of CLH locks).
    Hclh,
    /// Hierarchical ticket lock (cohort of ticket locks).
    Hticket,
    /// Non-optimized ticket lock (Figure 3 baseline; not part of the
    /// paper's nine).
    TicketNoBackoff,
}

impl LockKind {
    /// The nine locks of the study, in Figure 6's order.
    pub const ALL: [LockKind; 9] = [
        LockKind::Tas,
        LockKind::Ttas,
        LockKind::Ticket,
        LockKind::Array,
        LockKind::Mutex,
        LockKind::Mcs,
        LockKind::Clh,
        LockKind::Hclh,
        LockKind::Hticket,
    ];

    /// The non-hierarchical subset, used on the single-socket platforms
    /// ("given the uniform structure of the platforms, we do not use
    /// hierarchical locks on the single-socket machines", Section 6.1.2).
    pub const FLAT: [LockKind; 7] = [
        LockKind::Tas,
        LockKind::Ttas,
        LockKind::Ticket,
        LockKind::Array,
        LockKind::Mutex,
        LockKind::Mcs,
        LockKind::Clh,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            LockKind::Tas => TasLock::NAME,
            LockKind::Ttas => TtasLock::NAME,
            LockKind::Ticket => TicketLock::NAME,
            LockKind::Array => ArrayLock::NAME,
            LockKind::Mutex => MutexLock::NAME,
            LockKind::Mcs => McsLock::NAME,
            LockKind::Clh => ClhLock::NAME,
            LockKind::Hclh => "HCLH",
            LockKind::Hticket => "HTICKET",
            LockKind::TicketNoBackoff => TicketLockNoBackoff::NAME,
        }
    }

    /// True for the hierarchical (cluster-aware) locks.
    pub fn is_hierarchical(self) -> bool {
        matches!(self, LockKind::Hclh | LockKind::Hticket)
    }
}

/// A lock whose algorithm is chosen at runtime.
///
/// # Examples
///
/// ```
/// use ssync_locks::{AnyLock, LockKind, RawLock};
///
/// for kind in LockKind::ALL {
///     let lock = AnyLock::new(kind, 2);
///     let t = lock.lock();
///     lock.unlock(t);
/// }
/// ```
pub enum AnyLock {
    /// See [`TasLock`].
    Tas(TasLock),
    /// See [`TtasLock`].
    Ttas(TtasLock),
    /// See [`TicketLock`].
    Ticket(TicketLock),
    /// See [`ArrayLock`].
    Array(ArrayLock),
    /// See [`MutexLock`].
    Mutex(MutexLock),
    /// See [`McsLock`].
    Mcs(McsLock),
    /// See [`ClhLock`].
    Clh(ClhLock),
    /// See [`HclhLock`].
    Hclh(HclhLock),
    /// See [`HticketLock`].
    Hticket(HticketLock),
    /// See [`TicketLockNoBackoff`].
    TicketNoBackoff(TicketLockNoBackoff),
}

/// Token for [`AnyLock`]; mirrors the variant that produced it.
pub enum AnyToken {
    /// Token of [`TasLock`].
    Tas(()),
    /// Token of [`TtasLock`].
    Ttas(()),
    /// Token of [`TicketLock`].
    Ticket(u64),
    /// Token of [`ArrayLock`].
    Array(u64),
    /// Token of [`MutexLock`].
    Mutex(()),
    /// Token of [`McsLock`].
    Mcs(<McsLock as RawLock>::Token),
    /// Token of [`ClhLock`].
    Clh(<ClhLock as RawLock>::Token),
    /// Token of [`HclhLock`].
    Hclh(<HclhLock as RawLock>::Token),
    /// Token of [`HticketLock`].
    Hticket(<HticketLock as RawLock>::Token),
    /// Token of [`TicketLockNoBackoff`].
    TicketNoBackoff(u64),
}

impl AnyLock {
    /// Creates a lock of the given kind; `clusters` parameterizes the
    /// hierarchical locks (ignored by the flat ones).
    pub fn new(kind: LockKind, clusters: usize) -> Self {
        match kind {
            LockKind::Tas => AnyLock::Tas(TasLock::new()),
            LockKind::Ttas => AnyLock::Ttas(TtasLock::new()),
            LockKind::Ticket => AnyLock::Ticket(TicketLock::new()),
            LockKind::Array => AnyLock::Array(ArrayLock::default()),
            LockKind::Mutex => AnyLock::Mutex(MutexLock::new()),
            LockKind::Mcs => AnyLock::Mcs(McsLock::new()),
            LockKind::Clh => AnyLock::Clh(ClhLock::new()),
            LockKind::Hclh => AnyLock::Hclh(HclhLock::new(clusters.max(1))),
            LockKind::Hticket => AnyLock::Hticket(HticketLock::new(clusters.max(1))),
            LockKind::TicketNoBackoff => AnyLock::TicketNoBackoff(TicketLockNoBackoff::new()),
        }
    }

    /// The kind this lock was built as.
    pub fn kind(&self) -> LockKind {
        match self {
            AnyLock::Tas(_) => LockKind::Tas,
            AnyLock::Ttas(_) => LockKind::Ttas,
            AnyLock::Ticket(_) => LockKind::Ticket,
            AnyLock::Array(_) => LockKind::Array,
            AnyLock::Mutex(_) => LockKind::Mutex,
            AnyLock::Mcs(_) => LockKind::Mcs,
            AnyLock::Clh(_) => LockKind::Clh,
            AnyLock::Hclh(_) => LockKind::Hclh,
            AnyLock::Hticket(_) => LockKind::Hticket,
            AnyLock::TicketNoBackoff(_) => LockKind::TicketNoBackoff,
        }
    }
}

impl RawLock for AnyLock {
    type Token = AnyToken;

    const NAME: &'static str = "ANY";

    fn lock(&self) -> AnyToken {
        match self {
            // TAS/TTAS/MUTEX tokens are unit: acquire, then wrap.
            AnyLock::Tas(l) => {
                l.lock();
                AnyToken::Tas(())
            }
            AnyLock::Ttas(l) => {
                l.lock();
                AnyToken::Ttas(())
            }
            AnyLock::Ticket(l) => AnyToken::Ticket(l.lock()),
            AnyLock::Array(l) => AnyToken::Array(l.lock()),
            AnyLock::Mutex(l) => {
                l.lock();
                AnyToken::Mutex(())
            }
            AnyLock::Mcs(l) => AnyToken::Mcs(l.lock()),
            AnyLock::Clh(l) => AnyToken::Clh(l.lock()),
            AnyLock::Hclh(l) => AnyToken::Hclh(l.lock()),
            AnyLock::Hticket(l) => AnyToken::Hticket(l.lock()),
            AnyLock::TicketNoBackoff(l) => AnyToken::TicketNoBackoff(l.lock()),
        }
    }

    fn try_lock(&self) -> Option<AnyToken> {
        match self {
            AnyLock::Tas(l) => l.try_lock().map(AnyToken::Tas),
            AnyLock::Ttas(l) => l.try_lock().map(AnyToken::Ttas),
            AnyLock::Ticket(l) => l.try_lock().map(AnyToken::Ticket),
            AnyLock::Array(l) => l.try_lock().map(AnyToken::Array),
            AnyLock::Mutex(l) => l.try_lock().map(AnyToken::Mutex),
            AnyLock::Mcs(l) => l.try_lock().map(AnyToken::Mcs),
            AnyLock::Clh(l) => l.try_lock().map(AnyToken::Clh),
            AnyLock::Hclh(l) => l.try_lock().map(AnyToken::Hclh),
            AnyLock::Hticket(l) => l.try_lock().map(AnyToken::Hticket),
            AnyLock::TicketNoBackoff(l) => l.try_lock().map(AnyToken::TicketNoBackoff),
        }
    }

    fn unlock(&self, token: AnyToken) {
        match (self, token) {
            (AnyLock::Tas(l), AnyToken::Tas(t)) => l.unlock(t),
            (AnyLock::Ttas(l), AnyToken::Ttas(t)) => l.unlock(t),
            (AnyLock::Ticket(l), AnyToken::Ticket(t)) => l.unlock(t),
            (AnyLock::Array(l), AnyToken::Array(t)) => l.unlock(t),
            (AnyLock::Mutex(l), AnyToken::Mutex(t)) => l.unlock(t),
            (AnyLock::Mcs(l), AnyToken::Mcs(t)) => l.unlock(t),
            (AnyLock::Clh(l), AnyToken::Clh(t)) => l.unlock(t),
            (AnyLock::Hclh(l), AnyToken::Hclh(t)) => l.unlock(t),
            (AnyLock::Hticket(l), AnyToken::Hticket(t)) => l.unlock(t),
            (AnyLock::TicketNoBackoff(l), AnyToken::TicketNoBackoff(t)) => l.unlock(t),
            _ => panic!("AnyLock::unlock called with a token from a different lock kind"),
        }
    }

    fn is_locked(&self) -> bool {
        match self {
            AnyLock::Tas(l) => l.is_locked(),
            AnyLock::Ttas(l) => l.is_locked(),
            AnyLock::Ticket(l) => l.is_locked(),
            AnyLock::Array(l) => l.is_locked(),
            AnyLock::Mutex(l) => l.is_locked(),
            AnyLock::Mcs(l) => l.is_locked(),
            AnyLock::Clh(l) => l.is_locked(),
            AnyLock::Hclh(l) => l.is_locked(),
            AnyLock::Hticket(l) => l.is_locked(),
            AnyLock::TicketNoBackoff(l) => l.is_locked(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::test_support;
    use std::sync::Arc;

    #[test]
    fn every_kind_passes_protocol_smoke() {
        for kind in LockKind::ALL {
            let lock = AnyLock::new(kind, 2);
            test_support::protocol_smoke(&lock);
            assert_eq!(lock.kind(), kind);
        }
    }

    #[test]
    fn every_kind_provides_mutual_exclusion() {
        for kind in LockKind::ALL {
            test_support::counter_torture(Arc::new(AnyLock::new(kind, 2)), 3, 2_000);
        }
    }

    #[test]
    fn names_match_the_paper() {
        let names: Vec<_> = LockKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            ["TAS", "TTAS", "TICKET", "ARRAY", "MUTEX", "MCS", "CLH", "HCLH", "HTICKET"]
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_token_panics() {
        let a = AnyLock::new(LockKind::Tas, 1);
        let b = AnyLock::new(LockKind::Ticket, 1);
        let t = b.lock();
        a.unlock(t);
    }

    #[test]
    fn flat_subset_excludes_hierarchical() {
        assert!(LockKind::FLAT.iter().all(|k| !k.is_hierarchical()));
    }
}

//! Ticket lock, with and without proportional back-off.
//!
//! A ticket lock is two counters on one line: `next` (tickets handed out)
//! and `current` (ticket being served). Acquire = fetch-and-increment of
//! `next`, then wait until `current` equals your ticket; release =
//! increment `current`. It is FIFO-fair and occupies a single cache line,
//! and the paper's headline practical finding is that a *well implemented*
//! ticket lock is the best choice in most low-contention workloads
//! ("simple locks are powerful").
//!
//! "Well implemented" is Section 5.3 / Figure 3 of the paper: a waiter
//! knows its queue distance (`ticket - current`), so it should back off
//! *proportionally* instead of hammering the line. [`TicketLock`] applies
//! proportional back-off; [`TicketLockNoBackoff`] is the non-optimized
//! baseline kept for the Figure 3 ablation. (The paper's third variant,
//! `prefetchw`, is an x86 hint with no stable Rust equivalent; it is
//! modelled in the simulator — see `ssync-simsync`.)

use crate::sync::atomic::{AtomicU64, Ordering};

use ssync_core::ProportionalBackoff;

use crate::raw::RawLock;

/// Ticket lock with proportional back-off (the paper's optimized TICKET).
///
/// # Examples
///
/// ```
/// use ssync_locks::{RawLock, TicketLock};
///
/// let lock = TicketLock::default();
/// let a = lock.lock();
/// lock.unlock(a);
/// let b = lock.try_lock().unwrap();
/// lock.unlock(b);
/// ```
#[derive(Debug, Default)]
pub struct TicketLock {
    next: AtomicU64,
    current: AtomicU64,
}

impl TicketLock {
    /// Creates a new, unlocked ticket lock.
    pub const fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
            current: AtomicU64::new(0),
        }
    }

    /// Number of threads queued behind the current holder (advisory).
    pub fn queue_length(&self) -> u64 {
        let next = self.next.load(Ordering::Relaxed);
        let current = self.current.load(Ordering::Relaxed);
        next.saturating_sub(current).saturating_sub(1)
    }

    fn wait_for_turn(&self, ticket: u64, backoff: Option<ProportionalBackoff>) {
        loop {
            let current = self.current.load(Ordering::Acquire);
            if current == ticket {
                return;
            }
            match backoff {
                Some(b) => b.wait(ticket - current),
                None => ssync_core::sync::cpu_relax(),
            }
        }
    }
}

impl RawLock for TicketLock {
    /// The ticket number; also used by the cohort locks to detect waiters.
    type Token = u64;

    const NAME: &'static str = "TICKET";

    fn lock(&self) -> Self::Token {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        self.wait_for_turn(ticket, Some(ProportionalBackoff::new()));
        ticket
    }

    fn try_lock(&self) -> Option<Self::Token> {
        let current = self.current.load(Ordering::Acquire);
        // Only take a ticket if the lock looks free *and* we win the race
        // to be the next ticket; otherwise taking a ticket would force us
        // to wait (tickets cannot be returned).
        self.next
            .compare_exchange(current, current + 1, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .filter(|&t| self.current.load(Ordering::Acquire) == t)
    }

    fn unlock(&self, token: Self::Token) {
        debug_assert_eq!(self.current.load(Ordering::Relaxed), token);
        // Sole writer position: only the holder increments `current`.
        self.current.store(token + 1, Ordering::Release);
    }

    fn is_locked(&self) -> bool {
        let next = self.next.load(Ordering::Relaxed);
        let current = self.current.load(Ordering::Relaxed);
        next != current
    }
}

/// Ticket lock that spins continuously, the "non-optimized" Figure 3
/// baseline. Identical protocol, no back-off.
#[derive(Debug, Default)]
pub struct TicketLockNoBackoff {
    inner: TicketLock,
}

impl TicketLockNoBackoff {
    /// Creates a new, unlocked lock.
    pub const fn new() -> Self {
        Self {
            inner: TicketLock::new(),
        }
    }
}

impl RawLock for TicketLockNoBackoff {
    type Token = u64;

    const NAME: &'static str = "TICKET-NOBO";

    fn lock(&self) -> Self::Token {
        let ticket = self.inner.next.fetch_add(1, Ordering::Relaxed);
        self.inner.wait_for_turn(ticket, None);
        ticket
    }

    fn try_lock(&self) -> Option<Self::Token> {
        self.inner.try_lock()
    }

    fn unlock(&self, token: Self::Token) {
        self.inner.unlock(token);
    }

    fn is_locked(&self) -> bool {
        self.inner.is_locked()
    }
}

impl crate::cohort::CohortLocal for TicketLock {
    fn has_waiters(&self, token: &Self::Token) -> bool {
        // We hold ticket `token`; anything past `token + 1` is a waiter.
        self.next.load(Ordering::Relaxed) > token + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::CohortLocal;
    use crate::raw::test_support;
    use std::sync::Arc;

    #[test]
    fn protocol() {
        test_support::protocol_smoke(&TicketLock::new());
        test_support::protocol_smoke(&TicketLockNoBackoff::new());
    }

    #[test]
    fn has_waiters_tracks_queue() {
        let lock = TicketLock::new();
        let t = lock.lock();
        assert!(!lock.has_waiters(&t));
        lock.next.fetch_add(1, Ordering::Relaxed); // fake waiter
        assert!(lock.has_waiters(&t));
        lock.next.fetch_sub(1, Ordering::Relaxed);
        lock.unlock(t);
    }

    #[test]
    fn mutual_exclusion_under_threads() {
        test_support::counter_torture(Arc::new(TicketLock::new()), 4, 3_000);
        test_support::counter_torture(Arc::new(TicketLockNoBackoff::new()), 4, 2_000);
    }

    #[test]
    fn tickets_are_fifo() {
        let lock = TicketLock::new();
        let a = lock.lock();
        assert_eq!(a, 0);
        lock.unlock(a);
        let b = lock.lock();
        assert_eq!(b, 1);
        lock.unlock(b);
    }

    #[test]
    fn queue_length_counts_waiters() {
        let lock = TicketLock::new();
        let t = lock.lock();
        assert_eq!(lock.queue_length(), 0);
        // Simulate a waiter by taking a ticket directly.
        lock.next.fetch_add(1, Ordering::Relaxed);
        assert_eq!(lock.queue_length(), 1);
        // Undo the fake waiter before unlocking so the state stays sane.
        lock.next.fetch_sub(1, Ordering::Relaxed);
        lock.unlock(t);
    }

    #[test]
    fn try_lock_does_not_block_queue() {
        let lock = TicketLock::new();
        let t = lock.lock();
        for _ in 0..10 {
            assert!(lock.try_lock().is_none());
        }
        lock.unlock(t);
        // The failed try_locks must not have consumed tickets.
        let t2 = lock.lock();
        lock.unlock(t2);
    }
}

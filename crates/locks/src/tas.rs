//! Test-and-set spin lock.
//!
//! The simplest possible lock: a single flag word, acquired by an atomic
//! `swap` (the paper's TAS). Every acquisition attempt is a write, so
//! under contention all spinners keep stealing the cache line from each
//! other in Modified state — the classic scalability failure that
//! motivates every other algorithm in this crate (Anderson \[4\]).
//!
//! The paper nevertheless finds TAS highly competitive at low contention
//! and on platforms with a cheap hardware TAS (Niagara), where it is the
//! best lock for several hash-table workloads (Figure 11).

use crate::sync::atomic::{AtomicBool, Ordering};

use crate::raw::RawLock;

/// Test-and-set spin lock.
///
/// # Examples
///
/// ```
/// use ssync_locks::{RawLock, TasLock};
///
/// let lock = TasLock::default();
/// let t = lock.lock();
/// assert!(lock.try_lock().is_none());
/// lock.unlock(t);
/// ```
#[derive(Debug, Default)]
pub struct TasLock {
    flag: AtomicBool,
}

impl TasLock {
    /// Creates a new, unlocked TAS lock.
    pub const fn new() -> Self {
        Self {
            flag: AtomicBool::new(false),
        }
    }
}

impl RawLock for TasLock {
    type Token = ();

    const NAME: &'static str = "TAS";

    fn lock(&self) -> Self::Token {
        // Spin directly on the atomic swap: every retry is a store, which
        // is exactly the behaviour the paper measures for TAS.
        while self.flag.swap(true, Ordering::Acquire) {
            ssync_core::sync::cpu_relax();
        }
    }

    fn try_lock(&self) -> Option<Self::Token> {
        if self.flag.swap(true, Ordering::Acquire) {
            None
        } else {
            Some(())
        }
    }

    fn unlock(&self, _token: Self::Token) {
        self.flag.store(false, Ordering::Release);
    }

    fn is_locked(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::test_support;
    use std::sync::Arc;

    #[test]
    fn protocol() {
        test_support::protocol_smoke(&TasLock::new());
    }

    #[test]
    fn mutual_exclusion_under_threads() {
        test_support::counter_torture(Arc::new(TasLock::new()), 4, 3_000);
    }

    #[test]
    fn reacquire_after_unlock() {
        let lock = TasLock::new();
        for _ in 0..100 {
            lock.lock();
            lock.unlock(());
        }
        assert!(!lock.is_locked());
    }
}

//! Lock cohorting: the generic hierarchical lock combinator.
//!
//! The paper's two hierarchical locks — HCLH (Luchangco et al. \[27\])
//! and the hierarchical ticket lock (designed by the authors, then found
//! to match Dice, Marathe & Shavit's *lock cohorting* \[14\]) — share one
//! structure: a per-cluster *local* lock plus one *global* lock. A thread
//! first acquires its cluster's local lock, then the global lock. On
//! release, if another thread of the same cluster is waiting and the
//! cohort has not exceeded its pass budget, the holder releases only the
//! local lock and leaves the global lock with the cohort; the next local
//! owner inherits it without any cross-socket traffic.
//!
//! [`CohortLock<G, L>`] implements this generically, following \[14\]:
//! the global lock must be *thread-oblivious* (acquired by one cohort
//! member, released by another — true for our ticket and CLH locks, whose
//! tokens are self-contained) and the local lock must support *cohort
//! detection* ([`CohortLocal::has_waiters`]).

use core::cell::UnsafeCell;

use ssync_core::CachePadded;

use crate::cluster::current_cluster;
use crate::raw::RawLock;

/// Maximum consecutive local handoffs before the global lock must be
/// released, bounding unfairness toward other clusters (\[14\] uses the
/// same knob; 64 matches common cohort-lock implementations).
pub const DEFAULT_MAX_PASSES: u32 = 64;

/// A lock that can report whether another thread is currently queued
/// behind the holder — the *alone?* predicate of lock cohorting.
pub trait CohortLocal: RawLock {
    /// True if at least one thread is waiting on this lock right now
    /// (advisory: may race with new arrivals, which only affects the
    /// pass/release heuristic, never correctness).
    fn has_waiters(&self, token: &Self::Token) -> bool;
}

/// Per-cluster state: the local lock plus the baton the cohort passes
/// around. The baton fields are protected by the local lock.
struct LocalUnit<G: RawLock, L: CohortLocal> {
    lock: L,
    /// The global token, present while this cohort owns the global lock.
    global_token: UnsafeCell<Option<G::Token>>,
    /// True if the releasing cohort member left the global lock acquired
    /// for the next local owner.
    top_granted: UnsafeCell<bool>,
    /// Consecutive local passes since the cohort acquired the global lock.
    passes: UnsafeCell<u32>,
}

// SAFETY: the `UnsafeCell` fields are read and written only while holding
// `lock`, which serializes all access (see every `unsafe` block below).
// `G::Token: Send` is required because the token may be stored by one
// thread and taken by another cohort member.
unsafe impl<G: RawLock, L: CohortLocal> Sync for LocalUnit<G, L> where G::Token: Send {}

/// Generic cohort (hierarchical) lock over a global lock `G` and
/// per-cluster local locks `L`.
///
/// # Examples
///
/// ```
/// use ssync_locks::{CohortLock, RawLock, TicketLock};
///
/// // A hierarchical ticket lock for a 2-cluster machine.
/// let lock: CohortLock<TicketLock, TicketLock> = CohortLock::new(2);
/// let t = lock.lock();
/// lock.unlock(t);
/// ```
pub struct CohortLock<G: RawLock, L: CohortLocal> {
    global: G,
    locals: Box<[CachePadded<LocalUnit<G, L>>]>,
    max_passes: u32,
}

/// Token for a cohort acquisition.
pub struct CohortToken<L> {
    cluster: usize,
    local: L,
}

impl<G, L> CohortLock<G, L>
where
    G: RawLock + Default,
    L: CohortLocal + Default,
    G::Token: Send,
{
    /// Creates a cohort lock for `clusters` clusters with the default
    /// pass budget.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    pub fn new(clusters: usize) -> Self {
        Self::with_max_passes(clusters, DEFAULT_MAX_PASSES)
    }

    /// Creates a cohort lock with an explicit local pass budget.
    pub fn with_max_passes(clusters: usize, max_passes: u32) -> Self {
        assert!(clusters > 0, "cohort lock needs at least one cluster");
        let locals = (0..clusters)
            .map(|_| {
                CachePadded::new(LocalUnit {
                    lock: L::default(),
                    global_token: UnsafeCell::new(None),
                    top_granted: UnsafeCell::new(false),
                    passes: UnsafeCell::new(0),
                })
            })
            .collect();
        Self {
            global: G::default(),
            locals,
            max_passes,
        }
    }

    /// Number of clusters this lock was built for.
    pub fn clusters(&self) -> usize {
        self.locals.len()
    }

    fn unit(&self, cluster: usize) -> &LocalUnit<G, L> {
        &self.locals[cluster % self.locals.len()]
    }
}

impl<G, L> Default for CohortLock<G, L>
where
    G: RawLock + Default,
    L: CohortLocal + Default,
    G::Token: Send,
{
    /// A single-cluster cohort lock (degenerates to `L` over `G`); the
    /// benchmark harnesses construct per-topology instances explicitly.
    fn default() -> Self {
        Self::new(1)
    }
}

impl<G, L> RawLock for CohortLock<G, L>
where
    G: RawLock + Default,
    L: CohortLocal + Default,
    G::Token: Send,
{
    type Token = CohortToken<L::Token>;

    const NAME: &'static str = "COHORT";

    fn lock(&self) -> Self::Token {
        let cluster = current_cluster() % self.locals.len();
        let unit = self.unit(cluster);
        let local = unit.lock.lock();
        // SAFETY: baton fields are protected by the local lock, held here.
        unsafe {
            if *unit.top_granted.get() {
                // The previous cohort member left the global lock to us.
                *unit.top_granted.get() = false;
            } else {
                let gtok = self.global.lock();
                *unit.global_token.get() = Some(gtok);
                *unit.passes.get() = 0;
            }
        }
        CohortToken { cluster, local }
    }

    fn try_lock(&self) -> Option<Self::Token> {
        let cluster = current_cluster() % self.locals.len();
        let unit = self.unit(cluster);
        let local = unit.lock.try_lock()?;
        // SAFETY: baton fields are protected by the local lock, held here.
        unsafe {
            if *unit.top_granted.get() {
                *unit.top_granted.get() = false;
                return Some(CohortToken { cluster, local });
            }
            if let Some(gtok) = self.global.try_lock() {
                *unit.global_token.get() = Some(gtok);
                *unit.passes.get() = 0;
                return Some(CohortToken { cluster, local });
            }
        }
        unit.lock.unlock(local);
        None
    }

    fn unlock(&self, token: Self::Token) {
        let unit = self.unit(token.cluster);
        // SAFETY: baton fields are protected by the local lock, which we
        // hold until the `unlock` calls below.
        unsafe {
            let passes = &mut *unit.passes.get();
            if *passes < self.max_passes && unit.lock.has_waiters(&token.local) {
                // Pass within the cohort: keep the global lock, hand the
                // local lock (and the baton) to the next local waiter.
                *passes += 1;
                *unit.top_granted.get() = true;
                unit.lock.unlock(token.local);
            } else {
                // Release globally: another cluster's turn.
                let gtok = (*unit.global_token.get())
                    .take()
                    .expect("cohort invariant: global token present at global release");
                *passes = 0;
                self.global.unlock(gtok);
                unit.lock.unlock(token.local);
            }
        }
    }

    fn is_locked(&self) -> bool {
        self.global.is_locked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clh::ClhLock;
    use crate::cluster::set_thread_cluster;
    use crate::raw::test_support;
    use crate::ticket::TicketLock;
    use std::sync::Arc;

    type Hticket = CohortLock<TicketLock, TicketLock>;
    type Hclh = CohortLock<ClhLock, ClhLock>;

    #[test]
    fn protocol_hticket() {
        test_support::protocol_smoke(&Hticket::new(2));
    }

    #[test]
    fn protocol_hclh() {
        test_support::protocol_smoke(&Hclh::new(2));
    }

    #[test]
    fn mutual_exclusion_single_cluster() {
        test_support::counter_torture(Arc::new(Hticket::new(1)), 4, 2_000);
        test_support::counter_torture(Arc::new(Hclh::new(1)), 4, 2_000);
    }

    #[test]
    fn mutual_exclusion_across_clusters() {
        // Threads map themselves onto two clusters.
        let lock = Arc::new(Hticket::new(2));
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for i in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    set_thread_cluster(i % 2);
                    for _ in 0..5_000 {
                        let t = lock.lock();
                        let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                        std::hint::black_box(v);
                        counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                        lock.unlock(t);
                    }
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 20_000);
    }

    #[test]
    fn pass_budget_bounds_local_handoffs() {
        // With max_passes = 0 every release is global; the lock must still
        // be correct.
        let lock = Arc::new(Hticket::with_max_passes(2, 0));
        test_support::counter_torture(lock, 4, 5_000);
    }

    #[test]
    fn cluster_ids_wrap() {
        let lock = Hticket::new(2);
        set_thread_cluster(7); // 7 % 2 == cluster 1
        let t = lock.lock();
        lock.unlock(t);
        set_thread_cluster(0);
    }

    #[test]
    #[should_panic]
    fn zero_clusters_rejected() {
        let _ = Hticket::new(0);
    }
}

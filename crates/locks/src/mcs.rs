//! MCS queue lock (Mellor-Crummey & Scott \[29\]).
//!
//! Waiters form an explicit linked list: each arrival swaps itself into
//! the lock's tail pointer, links behind its predecessor, and spins on a
//! flag in *its own* queue node. Release hands the lock to the successor
//! by writing that successor's flag. Exactly one thread spins on any
//! cache line, which is what makes MCS (and CLH) "the most resilient to
//! contention" in the paper's Figure 5.
//!
//! # Node management
//!
//! The original algorithm threads a caller-provided `qnode` through
//! acquire/release. In Rust we allocate nodes from a thread-local free
//! list and carry the node pointer in the [`RawLock::Token`], so the
//! public interface stays uniform across algorithms. A node is recycled
//! once `unlock` has either removed it from the tail or handed the lock
//! to its successor — after which no other thread can reach it.

use crate::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use core::ptr;
use std::cell::RefCell;

use ssync_core::CachePadded;

use crate::raw::RawLock;

/// A queue node. One cache line: `next` and `locked` are written by
/// different threads but within one handoff, matching libslock's layout.
#[derive(Debug)]
pub struct McsNode {
    next: AtomicPtr<CachePadded<McsNode>>,
    locked: AtomicBool,
}

impl McsNode {
    fn new() -> Self {
        Self {
            next: AtomicPtr::new(ptr::null_mut()),
            locked: AtomicBool::new(false),
        }
    }
}

thread_local! {
    /// Per-thread free list of MCS nodes (recycled across acquisitions and
    /// across distinct locks; a node is exclusively owned between `lock`
    /// and `unlock`).
    // The Box is load-bearing (not `clippy::vec_box` noise): queue links
    // are raw pointers to the nodes, so nodes must not move when the
    // pool Vec reallocates.
    #[allow(clippy::vec_box)]
    static NODE_POOL: RefCell<Vec<Box<CachePadded<McsNode>>>> = const { RefCell::new(Vec::new()) };
}

fn pool_get() -> *mut CachePadded<McsNode> {
    NODE_POOL.with(|p| {
        let node = p
            .borrow_mut()
            .pop()
            .unwrap_or_else(|| Box::new(CachePadded::new(McsNode::new())));
        Box::into_raw(node)
    })
}

/// Returns a node to the calling thread's pool.
///
/// # Safety
///
/// `node` must have come from [`pool_get`] and must not be reachable by
/// any other thread.
unsafe fn pool_put(node: *mut CachePadded<McsNode>) {
    // SAFETY: by the function contract the pointer is a live, exclusively
    // owned allocation produced by `Box::into_raw` in `pool_get`.
    let boxed = unsafe { Box::from_raw(node) };
    // chk: the node is exclusively owned here (function contract) —
    // these are plain resets, not publications.
    boxed.next.store(ptr::null_mut(), Ordering::Relaxed);
    boxed.locked.store(false, Ordering::Relaxed);
    NODE_POOL.with(|p| p.borrow_mut().push(boxed));
}

/// MCS queue lock.
///
/// # Examples
///
/// ```
/// use ssync_locks::{McsLock, RawLock};
///
/// let lock = McsLock::default();
/// let t = lock.lock();
/// assert!(lock.is_locked());
/// lock.unlock(t);
/// ```
#[derive(Debug, Default)]
pub struct McsLock {
    tail: AtomicPtr<CachePadded<McsNode>>,
}

impl McsLock {
    /// Creates a new, unlocked MCS lock.
    pub const fn new() -> Self {
        Self {
            tail: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

/// Token: the queue node of this acquisition.
pub struct McsToken {
    node: *mut CachePadded<McsNode>,
}

// SAFETY: the token is only a capability to unlock; the node it points to
// is owned by the holding thread until `unlock`. Sending the token (and
// thus unlocking from another thread) is sound because the node contents
// are atomics and the pool recycle happens on the unlocking thread.
unsafe impl Send for McsToken {}

impl RawLock for McsLock {
    type Token = McsToken;

    const NAME: &'static str = "MCS";

    fn lock(&self) -> Self::Token {
        let node = pool_get();
        // SAFETY: `node` is exclusively ours until it is linked below.
        let node_ref = unsafe { &*node };
        // chk: pre-publication init; the AcqRel swap below publishes.
        node_ref.next.store(ptr::null_mut(), Ordering::Relaxed);
        node_ref.locked.store(true, Ordering::Relaxed);

        let pred = self.tail.swap(node, Ordering::AcqRel);
        if !pred.is_null() {
            // SAFETY: a non-null predecessor is a node currently queued;
            // its owner cannot recycle it before it has linked us in and
            // handed us the lock (see `unlock`).
            unsafe { &*pred }.next.store(node, Ordering::Release);
            while node_ref.locked.load(Ordering::Acquire) {
                ssync_core::sync::cpu_relax();
            }
        }
        McsToken { node }
    }

    fn try_lock(&self) -> Option<Self::Token> {
        let node = pool_get();
        // SAFETY: `node` is exclusively ours until published via the CAS.
        let node_ref = unsafe { &*node };
        // chk: pre-publication init, as in `lock`.
        node_ref.next.store(ptr::null_mut(), Ordering::Relaxed);
        node_ref.locked.store(true, Ordering::Relaxed);

        match self
            .tail
            .compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => Some(McsToken { node }),
            Err(_) => {
                // SAFETY: the CAS failed, so the node was never published.
                unsafe { pool_put(node) };
                None
            }
        }
    }

    fn unlock(&self, token: Self::Token) {
        let node = token.node;
        // SAFETY: we hold the lock, so `node` is the queue head and alive.
        let node_ref = unsafe { &*node };
        let mut next = node_ref.next.load(Ordering::Acquire);
        if next.is_null() {
            // No visible successor: try to swing the tail back to null.
            if self
                .tail
                .compare_exchange(node, ptr::null_mut(), Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: tail no longer references the node and no
                // successor ever observed it.
                unsafe { pool_put(node) };
                return;
            }
            // A successor swapped the tail but has not linked yet: wait.
            loop {
                next = node_ref.next.load(Ordering::Acquire);
                if !next.is_null() {
                    break;
                }
                ssync_core::sync::cpu_relax();
            }
        }
        // SAFETY: `next` is a queued node spinning on its `locked` flag;
        // its owner keeps it alive until it acquires and releases.
        unsafe { &*next }.locked.store(false, Ordering::Release);
        // SAFETY: after the handoff nothing references our node: the
        // successor spins on its own node and the tail points at or past
        // the successor.
        unsafe { pool_put(node) };
    }

    fn is_locked(&self) -> bool {
        // chk: advisory observation (statistics and asserts only).
        !self.tail.load(Ordering::Relaxed).is_null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::test_support;
    use std::sync::Arc;

    #[test]
    fn protocol() {
        test_support::protocol_smoke(&McsLock::new());
    }

    #[test]
    fn mutual_exclusion_under_threads() {
        test_support::counter_torture(Arc::new(McsLock::new()), 4, 3_000);
    }

    #[test]
    fn many_sequential_acquisitions_reuse_nodes() {
        let lock = McsLock::new();
        for _ in 0..1_000 {
            let t = lock.lock();
            lock.unlock(t);
        }
        // The pool should contain at most one node from this pattern.
        NODE_POOL.with(|p| assert!(p.borrow().len() <= 2));
    }

    #[test]
    fn failed_try_lock_leaks_nothing() {
        let lock = McsLock::new();
        let t = lock.lock();
        for _ in 0..100 {
            assert!(lock.try_lock().is_none());
        }
        lock.unlock(t);
        let t = lock.try_lock().expect("lock is free");
        lock.unlock(t);
    }

    #[test]
    fn handoff_between_two_threads() {
        let lock = Arc::new(McsLock::new());
        let l2 = Arc::clone(&lock);
        let t = lock.lock();
        let waiter = std::thread::spawn(move || {
            let t = l2.lock();
            l2.unlock(t);
        });
        std::thread::yield_now();
        lock.unlock(t);
        waiter.join().unwrap();
        assert!(!lock.is_locked());
    }
}

//! RAII data-owning lock wrapper.
//!
//! [`Lock<T, R>`] pairs a [`RawLock`] algorithm with the data it protects,
//! giving the familiar `Mutex<T>`-style API with a scoped [`LockGuard`].
//! This is the interface the higher-level crates (`ssync-ht`, `ssync-kv`,
//! `ssync-tm`) build on, and the reason `RawLock` exists as a separate
//! layer: the benchmark harnesses need raw acquire/release, the data
//! structures need guarded access, and both want to swap algorithms.

use core::cell::UnsafeCell;
use core::fmt;
use core::mem::ManuallyDrop;
use core::ops::{Deref, DerefMut};

use crate::raw::RawLock;

/// A value protected by a pluggable lock algorithm.
///
/// # Examples
///
/// ```
/// use ssync_locks::{Lock, McsLock};
///
/// let v = Lock::<Vec<u32>, McsLock>::new(Vec::new());
/// v.lock().push(1);
/// assert_eq!(v.lock().len(), 1);
/// ```
pub struct Lock<T, R: RawLock> {
    raw: R,
    data: UnsafeCell<T>,
}

// SAFETY: `Lock` hands out `&T`/`&mut T` only through the guard, which
// holds the raw lock; this is the standard `Mutex<T>` argument. `T: Send`
// is required because the value moves between threads' critical sections.
unsafe impl<T: Send, R: RawLock> Send for Lock<T, R> {}
unsafe impl<T: Send, R: RawLock> Sync for Lock<T, R> {}

impl<T, R: RawLock + Default> Lock<T, R> {
    /// Creates a lock protecting `value` with a default-constructed
    /// algorithm instance.
    pub fn new(value: T) -> Self {
        Self::with_raw(value, R::default())
    }
}

impl<T, R: RawLock> Lock<T, R> {
    /// Creates a lock protecting `value` with an explicit algorithm
    /// instance (used for locks that need construction parameters, such
    /// as cohort locks with a cluster count).
    pub fn with_raw(value: T, raw: R) -> Self {
        Self {
            raw,
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, returning a guard that releases on drop.
    pub fn lock(&self) -> LockGuard<'_, T, R> {
        let token = self.raw.lock();
        LockGuard {
            lock: self,
            token: ManuallyDrop::new(token),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<LockGuard<'_, T, R>> {
        self.raw.try_lock().map(|token| LockGuard {
            lock: self,
            token: ManuallyDrop::new(token),
        })
    }

    /// The underlying raw lock (for statistics such as
    /// [`crate::TicketLock::queue_length`]).
    pub fn raw(&self) -> &R {
        &self.raw
    }

    /// Mutable access without locking (requires `&mut self`, which proves
    /// exclusivity statically).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: fmt::Debug, R: RawLock> fmt::Debug for Lock<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f
                .debug_struct("Lock")
                .field("algorithm", &R::NAME)
                .field("data", &*guard)
                .finish(),
            None => f
                .debug_struct("Lock")
                .field("algorithm", &R::NAME)
                .field("data", &"<locked>")
                .finish(),
        }
    }
}

/// RAII guard: the critical section lasts as long as this value lives.
pub struct LockGuard<'a, T, R: RawLock> {
    lock: &'a Lock<T, R>,
    token: ManuallyDrop<R::Token>,
}

impl<T, R: RawLock> Deref for LockGuard<'_, T, R> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock, so shared access is exclusive
        // with all other critical sections.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T, R: RawLock> DerefMut for LockGuard<'_, T, R> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as for `Deref`, plus `&mut self` prevents aliasing
        // through this guard.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T, R: RawLock> Drop for LockGuard<'_, T, R> {
    fn drop(&mut self) {
        // SAFETY: the token is taken exactly once, here; the guard cannot
        // be used afterwards.
        let token = unsafe { ManuallyDrop::take(&mut self.token) };
        self.lock.raw.unlock(token);
    }
}

impl<T: fmt::Debug, R: RawLock> fmt::Debug for LockGuard<'_, T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clh::ClhLock;
    use crate::mcs::McsLock;
    use crate::tas::TasLock;
    use crate::ticket::TicketLock;

    #[test]
    fn guard_releases_on_drop() {
        let lock = Lock::<u32, TasLock>::new(1);
        {
            let mut g = lock.lock();
            *g += 1;
        }
        assert_eq!(*lock.lock(), 2);
    }

    #[test]
    fn try_lock_contends_with_guard() {
        let lock = Lock::<u32, TicketLock>::new(0);
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn get_mut_and_into_inner() {
        let mut lock = Lock::<String, McsLock>::new("a".into());
        lock.get_mut().push('b');
        assert_eq!(lock.into_inner(), "ab");
    }

    #[test]
    fn threads_share_data_through_guard() {
        let lock = Lock::<Vec<u64>, ClhLock>::new(Vec::new());
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let lock = &lock;
                s.spawn(move || {
                    for j in 0..100 {
                        lock.lock().push(i * 1000 + j);
                    }
                });
            }
        });
        assert_eq!(lock.lock().len(), 400);
    }

    #[test]
    fn debug_formats() {
        let lock = Lock::<u32, TasLock>::new(7);
        let s = format!("{lock:?}");
        assert!(s.contains("TAS") && s.contains('7'));
        let g = lock.lock();
        let s = format!("{lock:?}");
        assert!(s.contains("<locked>"));
        drop(g);
    }
}

//! The common lock interface.
//!
//! `libslock`'s value proposition is *one interface, nine algorithms*; the
//! Rust equivalent is the [`RawLock`] trait. A successful acquisition
//! returns a [`RawLock::Token`], which the caller must pass back to
//! [`RawLock::unlock`]. Tokens carry whatever per-acquisition state the
//! algorithm needs (a ticket number, an MCS queue node, a cohort's global
//! token), which lets queue-based locks avoid any thread-local hidden
//! state in the interface.

/// A raw (unguarded) mutual-exclusion lock.
///
/// # Correctness contract
///
/// Implementations must guarantee mutual exclusion: between the return of
/// `lock`/successful `try_lock` and the matching `unlock`, no other caller
/// can observe an acquisition. `lock` must provide *acquire* ordering and
/// `unlock` *release* ordering, so that data protected by the lock is
/// properly published between critical sections.
///
/// Callers must pass each token to `unlock` exactly once, on the same
/// thread that acquired it unless the implementation documents otherwise
/// (the cohort locks rely on tokens staying on the acquiring thread).
pub trait RawLock: Send + Sync {
    /// Per-acquisition state returned by `lock` and consumed by `unlock`.
    type Token;

    /// Display name matching the paper's figures (e.g. `"TICKET"`).
    const NAME: &'static str;

    /// Acquires the lock, blocking (spinning or parking) until available.
    fn lock(&self) -> Self::Token;

    /// Attempts to acquire the lock without blocking.
    fn try_lock(&self) -> Option<Self::Token>;

    /// Releases the lock.
    fn unlock(&self, token: Self::Token);

    /// True if the lock appears held at this instant (advisory, racy;
    /// used by tests and statistics only).
    fn is_locked(&self) -> bool;
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared correctness harnesses run against every lock algorithm.

    use super::RawLock;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Hammers the lock from `threads` threads, each performing `iters`
    /// non-atomic increments of a shared counter under the lock. Any
    /// mutual-exclusion violation shows up as a lost update.
    ///
    /// A `yield_now` after each release keeps the test fast on machines
    /// with fewer cores than threads (a spinning waiter on a single-CPU
    /// box would otherwise burn a whole scheduling quantum per handoff).
    pub fn counter_torture<L: RawLock + 'static>(lock: Arc<L>, threads: usize, iters: u64) {
        // The counter is intentionally *not* atomic-with-rmw: we read and
        // write it with separate operations so that broken mutual
        // exclusion loses updates.
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..threads {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..iters {
                        let token = lock.lock();
                        let v = counter.load(Ordering::Relaxed);
                        std::hint::black_box(v);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.unlock(token);
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), threads as u64 * iters);
    }

    /// Checks the basic uncontended protocol: lock, observe held, unlock,
    /// observe free; try_lock succeeds when free and fails when held.
    pub fn protocol_smoke<L: RawLock>(lock: &L) {
        assert!(!lock.is_locked());
        let t = lock.lock();
        assert!(lock.is_locked());
        assert!(lock.try_lock().is_none());
        lock.unlock(t);
        assert!(!lock.is_locked());
        let t = lock.try_lock().expect("free lock must be try-lockable");
        assert!(lock.is_locked());
        lock.unlock(t);
        assert!(!lock.is_locked());
    }
}

//! CLH queue lock (Craig; Landin & Hagersten \[43\]).
//!
//! Like MCS, CLH builds an implicit FIFO queue, but a waiter spins on its
//! *predecessor's* node rather than its own: acquire swaps a fresh node
//! into the tail and spins until the predecessor clears its `locked`
//! flag; release simply clears the own node's flag. There is no explicit
//! `next` pointer and release is a single store, which makes CLH slightly
//! cheaper than MCS on handoff — the paper finds the two equally
//! "resilient to contention" (Figure 5), with CLH the overall winner on
//! the single-sockets at high thread counts (Figure 8).
//!
//! # Node management
//!
//! CLH recycles nodes by design: after release, the releasing thread's
//! node is still being observed by its successor, but the *predecessor's*
//! node (the one it spun on) is guaranteed private — so each release
//! donates the predecessor node back to a thread-local pool.
//!
//! Pooled nodes are **never returned to the allocator** (threads leak
//! their small pools on exit). This is deliberate: `try_lock` must read
//! the tail node's flag speculatively, and keeping node memory alive
//! forever makes that read always target valid memory, at the cost of a
//! bounded leak (a handful of cache lines per thread). `libslock` makes
//! the same trade by allocating qnodes for the program's lifetime.

use crate::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::cell::RefCell;

use ssync_core::CachePadded;

use crate::raw::RawLock;

/// A CLH queue node: just the `locked` flag, padded to its own line.
#[derive(Debug)]
pub struct ClhNode {
    locked: AtomicBool,
}

thread_local! {
    /// Per-thread free list of CLH nodes (raw pointers: dropping the pool
    /// at thread exit intentionally leaks the nodes; see module docs).
    static NODE_POOL: RefCell<Vec<*mut CachePadded<ClhNode>>> =
        const { RefCell::new(Vec::new()) };
}

fn pool_get(locked: bool) -> *mut CachePadded<ClhNode> {
    let node = NODE_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_else(|| {
        Box::into_raw(Box::new(CachePadded::new(ClhNode {
            locked: AtomicBool::new(false),
        })))
    });
    // SAFETY: the node came from `Box::into_raw` and is never deallocated;
    // a pooled node is unreachable from any queue, so we own it.
    unsafe { &*node }.locked.store(locked, Ordering::Relaxed);
    node
}

/// Returns a node to the calling thread's pool.
///
/// # Safety
///
/// `node` must be a [`pool_get`] pointer that no other queue still links
/// to (speculative readers may still *read* it; that is fine, the memory
/// stays valid forever).
unsafe fn pool_put(node: *mut CachePadded<ClhNode>) {
    NODE_POOL.with(|p| p.borrow_mut().push(node));
}

/// CLH queue lock.
///
/// # Examples
///
/// ```
/// use ssync_locks::{ClhLock, RawLock};
///
/// let lock = ClhLock::default();
/// let t = lock.lock();
/// lock.unlock(t);
/// assert!(!lock.is_locked());
/// ```
#[derive(Debug)]
pub struct ClhLock {
    /// Tail of the implicit queue. Never null: initialized with a dummy
    /// unlocked node.
    tail: AtomicPtr<CachePadded<ClhNode>>,
}

impl ClhLock {
    /// Creates a new, unlocked CLH lock.
    pub fn new() -> Self {
        Self {
            tail: AtomicPtr::new(pool_get(false)),
        }
    }
}

impl Default for ClhLock {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ClhLock {
    fn drop(&mut self) {
        let tail = *self.tail.get_mut();
        // SAFETY: `&mut self` proves no acquisition is in flight, so the
        // tail node is no longer linked by anyone.
        unsafe { pool_put(tail) };
    }
}

/// Token: this acquisition's own node plus the predecessor node it spun
/// on (recycled at unlock).
pub struct ClhToken {
    node: *mut CachePadded<ClhNode>,
    pred: *mut CachePadded<ClhNode>,
}

// SAFETY: the token is a capability whose pointees are atomics owned by
// the in-flight acquisition; node recycling happens on whichever thread
// calls `unlock`.
unsafe impl Send for ClhToken {}

impl RawLock for ClhLock {
    type Token = ClhToken;

    const NAME: &'static str = "CLH";

    fn lock(&self) -> Self::Token {
        let node = pool_get(true);
        let pred = self.tail.swap(node, Ordering::AcqRel);
        // SAFETY: node memory is never deallocated, and `pred` cannot be
        // recycled by anyone else — only a successor recycles a
        // predecessor node, and we are the unique successor.
        while unsafe { &*pred }.locked.load(Ordering::Acquire) {
            ssync_core::sync::cpu_relax();
        }
        ClhToken { node, pred }
    }

    /// Attempts to acquire without waiting.
    ///
    /// Note: in a pathological ABA race (the observed tail node being
    /// recycled and re-enqueued as the tail of this very lock between the
    /// speculative read and the CAS), the method may briefly wait for one
    /// predecessor. The memory read is always valid because node memory
    /// is never freed.
    fn try_lock(&self) -> Option<Self::Token> {
        let pred = self.tail.load(Ordering::Acquire);
        // SAFETY: node memory is never deallocated (module invariant), so
        // this speculative read targets valid memory even if `pred` has
        // been recycled.
        if unsafe { &*pred }.locked.load(Ordering::Acquire) {
            return None;
        }
        let node = pool_get(true);
        match self
            .tail
            .compare_exchange(pred, node, Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => {
                // SAFETY: as above; `pred` is now our predecessor.
                while unsafe { &*pred }.locked.load(Ordering::Acquire) {
                    ssync_core::sync::cpu_relax();
                }
                Some(ClhToken { node, pred })
            }
            Err(_) => {
                // SAFETY: the CAS failed, the node was never published.
                unsafe { pool_put(node) };
                None
            }
        }
    }

    fn unlock(&self, token: Self::Token) {
        // SAFETY: we own this acquisition; `node` is alive and `pred` is
        // private to us (we were its only observer).
        unsafe {
            { &*token.node }.locked.store(false, Ordering::Release);
            pool_put(token.pred);
        }
    }

    fn is_locked(&self) -> bool {
        let tail = self.tail.load(Ordering::Acquire);
        // SAFETY: node memory is never deallocated.
        unsafe { &*tail }.locked.load(Ordering::Relaxed)
    }
}

impl crate::cohort::CohortLocal for ClhLock {
    fn has_waiters(&self, token: &Self::Token) -> bool {
        // chk: advisory heuristic for the cohort hand-off — a stale
        // answer only costs one suboptimal local/global decision.
        // If the tail moved past our node, someone enqueued behind us.
        self.tail.load(Ordering::Relaxed) != token.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::CohortLocal;
    use crate::raw::test_support;
    use std::sync::Arc;

    #[test]
    fn protocol() {
        test_support::protocol_smoke(&ClhLock::new());
    }

    #[test]
    fn has_waiters_reflects_tail_movement() {
        let lock = ClhLock::new();
        let t = lock.lock();
        assert!(!lock.has_waiters(&t));
        lock.unlock(t);
    }

    #[test]
    fn mutual_exclusion_under_threads() {
        test_support::counter_torture(Arc::new(ClhLock::new()), 4, 3_000);
    }

    #[test]
    fn node_count_stays_bounded() {
        let lock = ClhLock::new();
        for _ in 0..1_000 {
            let t = lock.lock();
            lock.unlock(t);
        }
        NODE_POOL.with(|p| assert!(p.borrow().len() <= 4));
    }

    #[test]
    fn drop_recycles_tail_node() {
        let before = NODE_POOL.with(|p| p.borrow().len());
        {
            let lock = ClhLock::new();
            let t = lock.lock();
            lock.unlock(t);
        }
        let after = NODE_POOL.with(|p| p.borrow().len());
        // Creating and dropping a lock must not shrink the pool.
        assert!(after >= before);
    }

    #[test]
    fn handoff_between_two_threads() {
        let lock = Arc::new(ClhLock::new());
        let l2 = Arc::clone(&lock);
        let t = lock.lock();
        let waiter = std::thread::spawn(move || {
            let t = l2.lock();
            l2.unlock(t);
        });
        std::thread::yield_now();
        lock.unlock(t);
        waiter.join().unwrap();
        assert!(!lock.is_locked());
    }
}

//! # ssync-locks
//!
//! A native Rust port of `libslock`, the lock library of the SOSP'13
//! study *"Everything You Always Wanted to Know About Synchronization but
//! Were Afraid to Ask"*. The library abstracts nine widely used lock
//! algorithms behind a common interface:
//!
//! | Name      | Type | Module |
//! |-----------|------|--------|
//! | TAS       | spin: test-and-set | [`tas`] |
//! | TTAS      | spin: test-and-test-and-set + exponential back-off | [`ttas`] |
//! | TICKET    | spin: ticket lock with proportional back-off | [`ticket`] |
//! | ARRAY     | spin: Anderson array lock | [`array`] |
//! | MCS       | queue: Mellor-Crummey & Scott | [`mcs`] |
//! | CLH       | queue: Craig, Landin & Hagersten | [`clh`] |
//! | HCLH      | hierarchical: cohort of CLH locks | [`hclh`](HclhLock) |
//! | HTICKET   | hierarchical: cohort of ticket locks | [`hticket`](HticketLock) |
//! | MUTEX     | cooperative: spin-then-park (Pthread-mutex model) | [`mutex`] |
//!
//! Every algorithm implements [`RawLock`]; [`Lock`] wraps a `RawLock`
//! around a protected value with an RAII guard, and [`AnyLock`] provides
//! runtime algorithm selection for benchmarks.
//!
//! Hierarchical locks need to know the caller's *cluster* (socket/die);
//! see [`cluster::set_thread_cluster`].
//!
//! # Examples
//!
//! ```
//! use ssync_locks::{Lock, TicketLock};
//!
//! let counter = Lock::<u64, TicketLock>::new(0);
//! std::thread::scope(|s| {
//!     for _ in 0..4 {
//!         s.spawn(|| {
//!             for _ in 0..1000 {
//!                 *counter.lock() += 1;
//!             }
//!         });
//!     }
//! });
//! assert_eq!(*counter.lock(), 4000);
//! ```

pub mod any;
pub mod array;
pub mod clh;
pub mod cluster;
pub mod cohort;
pub mod guard;
pub mod mcs;
pub mod mutex;
pub mod raw;
pub(crate) mod sync;
pub mod tas;
pub mod ticket;
pub mod ttas;

pub use any::{AnyLock, LockKind};
pub use array::ArrayLock;
pub use clh::ClhLock;
pub use cluster::set_thread_cluster;
pub use cohort::CohortLock;
pub use guard::{Lock, LockGuard};
pub use mcs::McsLock;
pub use mutex::MutexLock;
pub use raw::RawLock;
pub use tas::TasLock;
pub use ticket::{TicketLock, TicketLockNoBackoff};
pub use ttas::TtasLock;

/// Hierarchical CLH lock: a cohort of per-cluster CLH locks under a
/// global CLH lock (Luchangco et al. \[27\] via lock cohorting \[14\]).
pub type HclhLock = CohortLock<clh::ClhLock, clh::ClhLock>;

/// Hierarchical ticket lock: a cohort of per-cluster ticket locks under a
/// global ticket lock (Section 4.1, footnote 3 of the paper; \[14\]).
pub type HticketLock = CohortLock<ticket::TicketLock, ticket::TicketLock>;

//! Shared scaffolding for the hand-rolled `BENCH_*.json` artifacts.
//!
//! The workspace is offline and serde is not among the vendored shims,
//! so every benchmark renders its artifact by hand. Before this module
//! each renderer re-implemented the same framing — brace/newline
//! layout, last-item comma suppression, the schema/unit-note preamble —
//! and the comma logic in particular was copy-pasted four ways. The
//! [`Doc`] builder owns that framing once; the per-case line *bodies*
//! stay `format!` strings in their own modules, because their key
//! order and float precision are part of each artifact's diffable
//! contract and belong next to the sweep that defines them.
//!
//! Byte-layout invariants, pinned by `tests/json_golden.rs`:
//!
//! * top-level members are indented two spaces, one per line;
//! * array items are indented four spaces, one per line, with the
//!   comma on every line but the last;
//! * the document opens `{\n`, closes `}\n`, and starts with the
//!   `schema` and `unit_note` members in that order.

/// An in-progress artifact document.
pub struct Doc {
    out: String,
}

impl Doc {
    /// Opens a document with the standard `schema` / `unit_note`
    /// preamble every BENCH artifact leads with.
    pub fn open(schema: &str, unit_note: &str) -> Doc {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{schema}\",\n"));
        out.push_str(&format!("  \"unit_note\": \"{unit_note}\",\n"));
        Doc { out }
    }

    /// Appends one top-level member line: `raw` is the full
    /// `"key": value` body, `comma` says whether members follow.
    pub fn member(&mut self, raw: &str, comma: bool) {
        self.out.push_str("  ");
        self.out.push_str(raw);
        self.out.push_str(if comma { ",\n" } else { "\n" });
    }

    /// Appends preformatted text verbatim — for members whose bodies
    /// span multiple physical lines (nested objects with their own
    /// layout contract).
    pub fn raw(&mut self, text: &str) {
        self.out.push_str(text);
    }

    /// Appends an array member: one item per line, four-space indent,
    /// comma on every line but the last; `comma` says whether
    /// top-level members follow the array.
    pub fn array(&mut self, key: &str, items: &[String], comma: bool) {
        self.out.push_str(&format!("  \"{key}\": [\n"));
        for (i, item) in items.iter().enumerate() {
            let sep = if i + 1 == items.len() { "" } else { "," };
            self.out.push_str(&format!("    {item}{sep}\n"));
        }
        self.out.push_str(if comma { "  ],\n" } else { "  ]\n" });
    }

    /// Closes the document and returns its bytes.
    pub fn finish(mut self) -> String {
        self.out.push_str("}\n");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::Doc;

    #[test]
    fn framing_matches_the_artifact_contract() {
        let mut doc = Doc::open("s-v1", "units");
        doc.member("\"config\": {\"n\": 1}", true);
        doc.array("cases", &["{\"a\": 1}".into(), "{\"a\": 2}".into()], true);
        doc.member("\"extra\": {\"b\": 3}", false);
        let text = doc.finish();
        assert_eq!(
            text,
            "{\n  \"schema\": \"s-v1\",\n  \"unit_note\": \"units\",\n  \"config\": {\"n\": 1},\n  \"cases\": [\n    {\"a\": 1},\n    {\"a\": 2}\n  ],\n  \"extra\": {\"b\": 3}\n}\n"
        );
    }

    #[test]
    fn empty_and_single_item_arrays_are_well_formed() {
        let mut doc = Doc::open("s", "u");
        doc.array("none", &[], true);
        doc.array("one", &["1".into()], false);
        assert_eq!(
            doc.finish(),
            "{\n  \"schema\": \"s\",\n  \"unit_note\": \"u\",\n  \"none\": [\n  ],\n  \"one\": [\n    1\n  ]\n}\n"
        );
    }
}

//! The replication layer's performance harness (`repl-perf`).
//!
//! Where `kv-perf` watches the unreplicated serving stack, this suite
//! watches the `ssync-repl` primary/backup groups: the axes are
//! {replica count × acknowledgement mode × key skew × mix × batch},
//! plus one deterministic fault-injection case (seeded crash and stall
//! windows with op-log catch-up) that doubles as a convergence
//! regression — every case asserts its backups converged before
//! reporting.
//!
//! The headline comparison is read scaling: YCSB-B/C read traffic
//! spread round-robin over backups, with batched reads fanned out
//! across a shard's endpoints concurrently. On a single-core host the
//! win comes from round-trip aggregation (fewer client⇄server
//! scheduling epochs per key), not CPU parallelism — the batched
//! YCSB-C cases are the ones that show it.
//!
//! Issued op counts (and the fault schedule's window counts) are
//! deterministic per seed; wall times, fallback counts, and log
//! replays are load-timing-dependent.
//!
//! Alongside the sweep rides the `ssync-cluster` reshard case: a live,
//! faulted 2 → 4 split under closed-loop traffic, reported as one
//! top-level `"reshard"` object in `BENCH_repl.json` (its own line, so
//! the sweep's case lines keep their exact byte layout). Its issued
//! count, attempt accounting, and zero-acknowledged-write-loss are
//! deterministic per seed; its migration entry counts and throughput
//! dip are timing-dependent under live traffic.

use ssync_cluster::{run_reshard, ReshardReport, ReshardSpec, ReshardWorkloadSpec};
use ssync_core::cores;
use ssync_locks::TicketLock;
use ssync_repl::fault::FaultSpec;
use ssync_repl::service::{ReplCluster, ReplMode, ReplSpec};
use ssync_repl::workload::{run_replicated_closed_loop, ReplReport};
use ssync_srv::workload::{KeyDist, Mix, OpCounts, ValueSize, WorkloadSpec};

use crate::json::Doc;

/// Key-operations each client worker issues in a full run.
pub const PERF_OPS_PER_WORKER: u64 = 5_000;

/// Key-operations per worker in `--smoke` mode (CI keep-alive).
pub const SMOKE_OPS_PER_WORKER: u64 = 350;

/// Keyspace size of a full run.
pub const PERF_KEYS: u64 = 4_096;

/// Keyspace size in `--smoke` mode.
pub const SMOKE_KEYS: u64 = 512;

/// Master seed for every case.
pub const SEED: u64 = 0x0DD_B10B;

/// The async lag bound every async case uses.
pub const MAX_LAG: u64 = 64;

/// The seeded fault schedule of the fault-injection case.
pub const FAULTS: FaultSpec = FaultSpec {
    seed: 0xFA_015,
    faults_per_replica: 4,
    max_window: 12,
    spacing: 96,
    primary_crashes: 0,
};

/// The seeded leader-crash schedule of the failover case: two
/// successive leaders per shard die mid-workload, so the case walks
/// each shard's full succession line and measures the promotion
/// windows.
pub const FAILOVER_FAULTS: FaultSpec = FaultSpec {
    seed: 0xFA_110,
    faults_per_replica: 0,
    max_window: 0,
    spacing: 0,
    primary_crashes: 2,
};

/// The seed the reshard case's fault schedules derive from: one
/// migration-stream crash per source and one coordinator crash, so
/// every measured migration survives both recovery paths.
pub const RESHARD_FAULTS: FaultSpec = FaultSpec {
    seed: 0x4E_5A2D,
    faults_per_replica: 0,
    max_window: 0,
    spacing: 48,
    primary_crashes: 0,
};

/// The live 2 → 4 resharding case: closed-loop traffic over a 2-shard
/// cluster map, with a faulted split to 4 shards injected a quarter of
/// the way through. Measures the throughput dip and redirect costs;
/// asserts zero acknowledged-write loss and full convergence.
pub fn reshard_spec(config: ReplSweepConfig) -> ReshardWorkloadSpec {
    ReshardWorkloadSpec {
        shards_before: 2,
        workers: config.workers,
        keys_per_worker: (config.keys / config.workers as u64).max(32),
        ops_per_worker: config.ops_per_worker,
        value_len: 32,
        start_after_ops: config.workers as u64 * config.ops_per_worker / 4,
        reshard: ReshardSpec {
            faults: RESHARD_FAULTS,
            source_crashes: 1,
            coordinator_crashes: 1,
            ..ReshardSpec::clean(4)
        },
        seed: SEED,
    }
}

/// Runs the reshard case (TICKET locks, like the sweep).
///
/// # Panics
///
/// Panics on acknowledged-write loss or a non-converged final
/// placement — either is a correctness regression, not a measurement.
pub fn run_reshard_case(config: ReplSweepConfig) -> ReshardReport {
    let report = run_reshard::<TicketLock>(&reshard_spec(config));
    assert_eq!(
        report.lost_acked_writes, 0,
        "acknowledged writes lost across the live split"
    );
    assert!(report.converged, "reshard case failed to converge");
    report
}

/// The sweep's configuration, fixed per invocation.
#[derive(Debug, Clone, Copy)]
pub struct ReplSweepConfig {
    /// Client worker threads per case.
    pub workers: usize,
    /// Key-operations per worker per case.
    pub ops_per_worker: u64,
    /// Keyspace size.
    pub keys: u64,
}

impl ReplSweepConfig {
    /// Scales the config to the host, like `kv-perf`.
    pub fn for_host(smoke: bool) -> ReplSweepConfig {
        ReplSweepConfig {
            workers: cores::available_cores().clamp(2, 4),
            ops_per_worker: if smoke {
                SMOKE_OPS_PER_WORKER
            } else {
                PERF_OPS_PER_WORKER
            },
            keys: if smoke { SMOKE_KEYS } else { PERF_KEYS },
        }
    }
}

/// One case of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ReplCase {
    /// Backups per shard.
    pub replicas: usize,
    /// Acknowledgement mode.
    pub mode: ReplMode,
    /// Key distribution.
    pub dist: KeyDist,
    /// Operation mix.
    pub mix: Mix,
    /// Reads per batch (1 = unbatched; wide batches fan out across a
    /// shard's endpoints).
    pub batch: usize,
    /// Run the seeded fault schedule ([`FAULTS`]).
    pub faulty: bool,
    /// Run the seeded leader-crash schedule ([`FAILOVER_FAULTS`]):
    /// measures time-to-promote and client ops lost to retry.
    pub failover: bool,
}

impl ReplCase {
    /// Display name of the mode column.
    pub fn mode_label(&self) -> &'static str {
        match self.mode {
            ReplMode::Sync => "sync",
            ReplMode::Async { .. } => "async",
        }
    }
}

/// One measured case.
#[derive(Debug, Clone)]
pub struct ReplCaseResult {
    /// The case that ran.
    pub case: ReplCase,
    /// Client workers that drove it.
    pub workers: usize,
    /// Issued key-ops by type (deterministic per seed).
    pub issued: OpCounts,
    /// The full driver report.
    pub report: ReplReport,
    /// Wall time, milliseconds.
    pub wall_ms: f64,
    /// Key-operations per wall-second.
    pub ops_per_sec: f64,
}

/// The sweep: replica scaling {0, 1, 2} across read-heavy mixes and
/// skews in async mode (batched and unbatched), the sync/async write
/// cost contrast, and the deterministic fault case.
pub fn sweep_cases() -> Vec<ReplCase> {
    let zipf = KeyDist::Zipfian { theta: 0.99 };
    let asynchronous = ReplMode::Async { max_lag: MAX_LAG };
    let mut cases = Vec::new();
    for replicas in [0usize, 1, 2] {
        // Unbatched read-heavy mixes, both skews.
        for dist in [KeyDist::Uniform, zipf] {
            for mix in [Mix::YCSB_B, Mix::YCSB_C] {
                cases.push(ReplCase {
                    replicas,
                    mode: asynchronous,
                    dist,
                    mix,
                    batch: 1,
                    faulty: false,
                    failover: false,
                });
            }
        }
        // Batched YCSB-C: the endpoint fan-out cases.
        for dist in [KeyDist::Uniform, zipf] {
            cases.push(ReplCase {
                replicas,
                mode: asynchronous,
                dist,
                mix: Mix::YCSB_C,
                batch: 24,
                faulty: false,
                failover: false,
            });
        }
    }
    // Sync vs async write cost (the async counterparts are above).
    for replicas in [1usize, 2] {
        cases.push(ReplCase {
            replicas,
            mode: ReplMode::Sync,
            dist: zipf,
            mix: Mix::YCSB_B,
            batch: 1,
            faulty: false,
            failover: false,
        });
    }
    // Deterministic fault injection: crashes, stalls, log catch-up.
    cases.push(ReplCase {
        replicas: 2,
        mode: asynchronous,
        dist: zipf,
        mix: Mix::YCSB_A,
        batch: 1,
        faulty: true,
        failover: false,
    });
    // Deterministic failover: a chain of leader crashes under a
    // write-heavy mix, in sync mode so even the succession order
    // replays. Emits time-to-promote and ops-lost-to-retry.
    cases.push(ReplCase {
        replicas: 2,
        mode: ReplMode::Sync,
        dist: zipf,
        mix: Mix::YCSB_A,
        batch: 1,
        faulty: false,
        failover: true,
    });
    cases
}

/// Runs one case (TICKET locks, 2 shards — the replication axes are
/// the sweep's subject, the lock algorithm is `kv-perf`'s).
///
/// # Panics
///
/// Panics if the case's backups fail to converge — that is a
/// correctness regression, not a measurement.
pub fn run_case(case: ReplCase, config: ReplSweepConfig) -> ReplCaseResult {
    let shards = 2;
    let buckets_per_shard = (config.keys as usize / shards).clamp(64, 4096);
    let spec = ReplSpec {
        replicas: case.replicas,
        mode: case.mode,
        log_capacity: 4096,
    };
    let mut cluster: ReplCluster<TicketLock> =
        ReplCluster::new(shards, buckets_per_shard, 16, spec);
    let workload = WorkloadSpec {
        keys: config.keys,
        dist: case.dist,
        mix: case.mix,
        vsize: ValueSize::Uniform { min: 16, max: 96 },
        batch: case.batch,
        seed: SEED,
    };
    let faults = if case.failover {
        FAILOVER_FAULTS
    } else if case.faulty {
        FAULTS
    } else {
        FaultSpec::none()
    };
    let report = run_replicated_closed_loop(
        &mut cluster,
        &workload,
        config.workers,
        config.ops_per_worker,
        &faults,
    );
    assert!(report.converged, "convergence regression in case {case:?}");
    let wall_ms = report.wall.as_secs_f64() * 1000.0;
    let ops_per_sec = report.issued.total() as f64 / report.wall.as_secs_f64().max(1e-9);
    ReplCaseResult {
        case,
        workers: config.workers,
        issued: report.issued,
        wall_ms,
        ops_per_sec,
        report,
    }
}

/// Runs the full sweep.
pub fn run_sweep(config: ReplSweepConfig) -> Vec<ReplCaseResult> {
    sweep_cases()
        .into_iter()
        .map(|case| run_case(case, config))
        .collect()
}

/// Renders the sweep as a plain-text table.
pub fn render_table(results: &[ReplCaseResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} {:>6} {:>9} {:>7} {:>6} {:>7} {:>9} {:>9} {:>9} {:>8} {:>6} {:>6} {:>7}",
        "repl",
        "mode",
        "dist",
        "mix",
        "batch",
        "faults",
        "ops",
        "wall ms",
        "ops/sec",
        "rserves",
        "fback",
        "crash",
        "fromlog"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:>4} {:>6} {:>9} {:>7} {:>6} {:>7} {:>9} {:>9.1} {:>9.0} {:>8} {:>6} {:>6} {:>7}",
            r.case.replicas,
            r.case.mode_label(),
            r.case.dist.label(),
            r.case.mix.name,
            r.case.batch,
            if r.case.failover {
                "fovr"
            } else if r.case.faulty {
                "yes"
            } else {
                "no"
            },
            r.issued.total(),
            r.wall_ms,
            r.ops_per_sec,
            r.report.replica_serves,
            r.report.fallbacks,
            r.report.crashes + r.report.stalls,
            r.report.from_log
        );
    }
    out
}

/// Renders the sweep as the `BENCH_repl.json` document (hand-rolled
/// JSON, like the other BENCH artifacts — the workspace is offline).
/// The reshard case rides as one top-level `"reshard"` object on its
/// own line after the cases array, so every case line keeps the exact
/// byte layout it had before the case existed.
pub fn render_json(
    results: &[ReplCaseResult],
    config: ReplSweepConfig,
    reshard: &ReshardReport,
) -> String {
    let mut doc = Doc::open(
        "ssync-repl-perf-v1",
        "ops are key-operations; issued counts, entries, and fault window counts are deterministic per seed; wall_ms/ops_per_sec/fallbacks/stale_drops/from_log are load- and timing-dependent; converged is asserted true for every case",
    );
    doc.member(
        &format!(
            "\"config\": {{\"workers\": {}, \"ops_per_worker\": {}, \"keys\": {}, \"seed\": {}, \"shards\": 2, \"lock\": \"TICKET\", \"max_lag\": {}}}",
            config.workers, config.ops_per_worker, config.keys, SEED, MAX_LAG
        ),
        true,
    );
    let mut cases: Vec<String> = Vec::with_capacity(results.len());
    for r in results {
        let rep = &r.report;
        // Failover-only keys ride on that case's line alone, so every
        // other line stays byte-identical to the pre-failover schema.
        let failover_fields = if r.case.failover {
            let promote = ssync_core::stats::Summary::of_durations_ms(&rep.unavailability);
            format!(
                ", \"failovers\": {}, \"time_to_promote_ms_mean\": {:.3}, \"time_to_promote_ms_max\": {:.3}, \"lost_to_retry\": {}, \"redirects\": {}",
                rep.failovers,
                promote.as_ref().map_or(0.0, |s| s.mean),
                promote.as_ref().map_or(0.0, |s| s.max),
                rep.lost_to_retry,
                rep.redirects,
            )
        } else {
            String::new()
        };
        cases.push(format!(
            "{{\"replicas\": {}, \"mode\": \"{}\", \"dist\": \"{}\", \"mix\": \"{}\", \"batch\": {}, \"faulty\": {}, \"gets\": {}, \"sets\": {}, \"cas\": {}, \"deletes\": {}, \"hits\": {}, \"misses\": {}, \"replica_serves\": {}, \"fallbacks\": {}, \"entries\": {}, \"repl_applied\": {}, \"stale_drops\": {}, \"crashes\": {}, \"stalls\": {}, \"from_log\": {}, \"converged\": {}, \"hit_rate\": {:.4}, \"wall_ms\": {:.2}, \"ops_per_sec\": {:.0}{failover_fields}}}",
            r.case.replicas,
            r.case.mode_label(),
            r.case.dist.label(),
            r.case.mix.name,
            r.case.batch,
            r.case.faulty,
            r.issued.gets,
            r.issued.sets,
            r.issued.cas,
            r.issued.deletes,
            rep.hits,
            rep.misses,
            rep.replica_serves,
            rep.fallbacks,
            rep.entries,
            rep.replica_store.repl_applied,
            rep.replica_store.repl_stale_drops,
            rep.crashes,
            rep.stalls,
            rep.from_log,
            rep.converged,
            rep.hit_rate(),
            r.wall_ms,
            r.ops_per_sec
        ));
    }
    doc.array("cases", &cases, true);
    // Deterministic per seed: issued, lost_acked_writes, converged,
    // final_epoch, attempts, coordinator_restarts, the shard counts.
    // Timing-dependent under live traffic: entries_migrated,
    // copy_restarts, redirect/defer counts, walls, rates, dip.
    doc.member(
        &format!(
            "\"reshard\": {{\"shards_before\": 2, \"shards_after\": 4, \"workers\": {}, \"issued\": {}, \"lost_acked_writes\": {}, \"converged\": {}, \"final_epoch\": {}, \"attempts\": {}, \"coordinator_restarts\": {}, \"copy_restarts\": {}, \"entries_migrated\": {}, \"source_keys_retired\": {}, \"client_redirects\": {}, \"wrong_shard_redirects\": {}, \"migration_ops_deferred\": {}, \"purged\": {}, \"migration_wall_ms\": {:.2}, \"rate_before\": {:.0}, \"rate_during\": {:.0}, \"rate_after\": {:.0}, \"dip_pct\": {:.1}}}",
            config.workers,
            reshard.issued,
            reshard.lost_acked_writes,
            reshard.converged,
            reshard.migration.final_epoch,
            reshard.migration.attempts,
            reshard.migration.coordinator_restarts,
            reshard.migration.copy_restarts,
            reshard.migration.entries_migrated,
            reshard.migration.source_keys_retired,
            reshard.client_redirects,
            reshard.wrong_shard_redirects,
            reshard.migration_ops_deferred,
            reshard.purged,
            reshard.migration_wall.as_secs_f64() * 1000.0,
            reshard.rate_before,
            reshard.rate_during,
            reshard.rate_after,
            reshard.dip_pct,
        ),
        false,
    );
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ReplSweepConfig {
        ReplSweepConfig {
            workers: 2,
            ops_per_worker: 120,
            keys: 128,
        }
    }

    #[test]
    fn sweep_covers_the_replication_axes() {
        let cases = sweep_cases();
        let replicas: std::collections::HashSet<_> = cases.iter().map(|c| c.replicas).collect();
        assert!(replicas.contains(&0) && replicas.contains(&2));
        assert!(cases.iter().any(|c| matches!(c.mode, ReplMode::Sync)));
        assert!(cases.iter().any(|c| c.faulty), "fault case missing");
        assert!(cases.iter().any(|c| c.failover), "failover case missing");
        assert!(cases.iter().any(|c| c.batch > 1), "fan-out case missing");
        // The acceptance pair: batched zipfian YCSB-C at 0 and 2
        // replicas, async.
        for want in [0usize, 2] {
            assert!(cases.iter().any(|c| c.replicas == want
                && c.batch > 1
                && matches!(c.mode, ReplMode::Async { .. })
                && matches!(c.dist, KeyDist::Zipfian { .. })
                && c.mix.name == "ycsb-c"));
        }
    }

    #[test]
    fn one_case_runs_renders_and_converges() {
        let config = tiny_config();
        let case = ReplCase {
            replicas: 2,
            mode: ReplMode::Async { max_lag: MAX_LAG },
            dist: KeyDist::Zipfian { theta: 0.99 },
            mix: Mix::YCSB_B,
            batch: 1,
            faulty: false,
            failover: false,
        };
        let r = run_case(case, config);
        assert_eq!(r.issued.total(), 240);
        assert!(r.report.converged);
        let table = render_table(std::slice::from_ref(&r));
        assert!(table.contains("async"));
        let reshard = run_reshard_case(config);
        let json = render_json(std::slice::from_ref(&r), config, &reshard);
        assert!(json.contains("\"ssync-repl-perf-v1\""));
        assert!(json.contains("\"replicas\": 2"));
        // One top-level reshard line between the cases array and the
        // closing brace, carrying the zero-loss assertion's receipts.
        let reshard_lines: Vec<&str> = json
            .lines()
            .filter(|l| l.trim_start().starts_with("\"reshard\": {"))
            .collect();
        assert_eq!(reshard_lines.len(), 1);
        assert!(reshard_lines[0].contains("\"lost_acked_writes\": 0"));
        assert!(reshard_lines[0].contains("\"converged\": true"));
        assert!(reshard_lines[0].contains("\"final_epoch\": 2"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn the_reshard_case_is_deterministic_where_it_must_be() {
        let config = tiny_config();
        let a = run_reshard_case(config);
        let b = run_reshard_case(config);
        // Plan-driven fields replay exactly even under live traffic;
        // entry counts and walls are timing-dependent and exempt.
        assert_eq!(a.issued, b.issued);
        assert_eq!(a.issued, config.workers as u64 * config.ops_per_worker);
        assert_eq!(a.lost_acked_writes, 0);
        assert_eq!(b.lost_acked_writes, 0);
        assert!(a.converged && b.converged);
        assert_eq!(a.migration.final_epoch, 2);
        assert_eq!(b.migration.final_epoch, 2);
        assert_eq!(a.migration.attempts, 2);
        assert_eq!(a.migration.attempts, b.migration.attempts);
        assert_eq!(a.migration.coordinator_restarts, 1);
        assert_eq!(
            a.migration.coordinator_restarts,
            b.migration.coordinator_restarts
        );
    }

    #[test]
    fn issued_counts_replay_exactly_even_with_faults() {
        let config = ReplSweepConfig {
            workers: 1,
            ops_per_worker: 600,
            keys: 128,
        };
        let case = ReplCase {
            replicas: 2,
            mode: ReplMode::Async { max_lag: MAX_LAG },
            dist: KeyDist::Zipfian { theta: 0.99 },
            mix: Mix::YCSB_A,
            batch: 1,
            faulty: true,
            failover: false,
        };
        let a = run_case(case, config);
        let b = run_case(case, config);
        assert_eq!(a.issued, b.issued);
        assert_eq!(a.report.entries, b.report.entries);
        assert_eq!(a.report.crashes, b.report.crashes);
        assert_eq!(a.report.stalls, b.report.stalls);
        assert!(a.report.crashes + a.report.stalls > 0);
    }

    #[test]
    fn the_failover_case_promotes_deterministically() {
        let config = ReplSweepConfig {
            workers: 2,
            ops_per_worker: 400,
            keys: 128,
        };
        let case = *sweep_cases().iter().find(|c| c.failover).unwrap();
        let a = run_case(case, config);
        let b = run_case(case, config);
        // Two crashes per shard, two shards: the whole succession line.
        assert_eq!(a.report.failovers, 4);
        assert_eq!(a.report.unavailability.len(), 4);
        assert!(a.report.converged);
        assert_eq!(a.issued, b.issued);
        assert_eq!(a.report.entries, b.report.entries);
        assert_eq!(a.report.failovers, b.report.failovers);
        let json = render_json(
            std::slice::from_ref(&a),
            config,
            &run_reshard_case(tiny_config()),
        );
        assert!(json.contains("\"failovers\": 4"));
        assert!(json.contains("\"time_to_promote_ms_mean\""));
        assert!(json.contains("\"lost_to_retry\""));
    }
}

//! Workload drivers: one function per figure family.
//!
//! Every driver builds a fresh deterministic simulation, places threads
//! with the platform's standard policy, runs a fixed simulated window,
//! and converts counts to the unit the paper plots (Mops/s, Kops/s, or
//! cycles). Seeds are fixed so that every figure regenerates bit-for-bit.

use std::rc::Rc;

use ssync_core::topology::Platform;
use ssync_sim::Sim;
use ssync_simsync::locks::{make_lock, LockConfig, SimLockKind};
use ssync_simsync::mp::{HwChannel, SsmpChannel};
use ssync_simsync::workloads::atomics::{stress_pause, AtomicKind, AtomicStress};
use ssync_simsync::workloads::kv::{KvMix, KvWorker};
use ssync_simsync::workloads::lock_stress::{LockStress, UncontestedPair};
use ssync_simsync::workloads::mp_bench::{Chan, MpClient, MpServer, PingReceiver, PingSender};
use ssync_simsync::workloads::ssht::{
    SshtConfig, SshtMpClient, SshtMpServer, SshtTable, SshtWorker,
};

/// Default measurement window for throughput runs, in simulated cycles.
pub const WINDOW: u64 = 600_000;

/// Longer window for the coarse-grained KV workload.
pub const KV_WINDOW: u64 = 4_000_000;

/// Figure 4: throughput (Mops/s) of one atomic operation hammered by
/// `threads` threads on one line.
pub fn atomic_mops(platform: Platform, kind: AtomicKind, threads: usize) -> f64 {
    let mut sim = Sim::new(platform, 0xA70);
    let cores = sim.topology().placement(threads);
    let line = sim.alloc_line_for_core(cores[0]);
    let pause = stress_pause(sim.topology(), &cores);
    for &c in &cores {
        sim.spawn_on_core(c, Box::new(AtomicStress::new(line, kind, pause)));
    }
    sim.run_until(WINDOW);
    sim.topology().mops(sim.total_ops(), WINDOW)
}

/// Figures 5, 7 and 8: lock throughput (Mops/s) with `threads` threads
/// over `n_locks` locks (1 = extreme contention, 512 = very low).
pub fn lock_mops(platform: Platform, kind: SimLockKind, threads: usize, n_locks: usize) -> f64 {
    let (ops, window, topo_mops) = lock_run(platform, kind, threads, n_locks);
    let _ = topo_mops;
    platform.topology().mops(ops, window)
}

/// Figure 3: average latency (cycles) of one acquire+release when
/// `threads` threads contend for a single lock.
pub fn lock_latency(platform: Platform, kind: SimLockKind, threads: usize) -> f64 {
    let mut sim = Sim::new(platform, 0xF163);
    let cfg = LockConfig::for_placement(&sim, threads);
    let lock = make_lock(kind, &mut sim, &cfg);
    let data = sim.alloc_line_for_core(cfg.home_core);
    let mut tids = Vec::new();
    for tid in 0..threads {
        let w = LockStress::new(vec![Rc::clone(&lock)], vec![data], tid);
        tids.push(sim.spawn_on_core(cfg.thread_cores[tid], Box::new(w)));
    }
    sim.run_until(WINDOW * 4);
    let mut sum = 0u64;
    let mut n = 0u64;
    for &tid in &tids {
        // Skip each thread's first sample (cold caches).
        let s = sim.samples(tid);
        for &v in s.iter().skip(1.min(s.len())) {
            sum += v;
            n += 1;
        }
    }
    if n == 0 {
        return f64::NAN;
    }
    sum as f64 / n as f64
}

fn lock_run(
    platform: Platform,
    kind: SimLockKind,
    threads: usize,
    n_locks: usize,
) -> (u64, u64, f64) {
    let mut sim = Sim::new(platform, 0x10C5);
    let cfg = LockConfig::for_placement(&sim, threads);
    let mut locks = Vec::with_capacity(n_locks);
    let mut data = Vec::with_capacity(n_locks);
    for _ in 0..n_locks {
        locks.push(make_lock(kind, &mut sim, &cfg));
        data.push(sim.alloc_line_for_core(cfg.home_core));
    }
    for tid in 0..threads {
        let w = LockStress::new(locks.clone(), data.clone(), tid);
        sim.spawn_on_core(cfg.thread_cores[tid], Box::new(w));
    }
    sim.run_until(WINDOW);
    (sim.total_ops(), WINDOW, 0.0)
}

/// Figure 8's bar annotations: the best lock and its scalability versus
/// the single-thread run of the same (best-at-1) lock.
pub fn best_lock(
    platform: Platform,
    threads: usize,
    n_locks: usize,
    kinds: &[SimLockKind],
) -> (SimLockKind, f64) {
    let mut best = (kinds[0], f64::MIN);
    for &k in kinds {
        let m = lock_mops(platform, k, threads, n_locks);
        if m > best.1 {
            best = (k, m);
        }
    }
    best
}

/// Figure 6: uncontested acquire+release latency (cycles) when the
/// previous holder runs on `partner_core`.
pub fn uncontested_latency(platform: Platform, kind: SimLockKind, partner_core: usize) -> f64 {
    let mut sim = Sim::new(platform, 0x0F16);
    let cfg = LockConfig {
        n_threads: 2,
        home_core: 0,
        thread_cores: vec![0, partner_core],
    };
    let lock = make_lock(kind, &mut sim, &cfg);
    let turn = sim.alloc_line_for_core(0);
    let t0 = sim.spawn_on_core(
        0,
        Box::new(UncontestedPair::new(Rc::clone(&lock), turn, 0, 0)),
    );
    let t1 = sim.spawn_on_core(
        partner_core,
        Box::new(UncontestedPair::new(Rc::clone(&lock), turn, 1, 1)),
    );
    sim.run_until(WINDOW);
    let mut samples: Vec<u64> = sim.samples(t0).to_vec();
    samples.extend_from_slice(sim.samples(t1));
    if samples.len() <= 4 {
        return f64::NAN;
    }
    // Drop warm-up samples.
    let body = &samples[4..];
    body.iter().sum::<u64>() as f64 / body.len() as f64
}

/// Single-thread lock latency (Figure 6's "single thread" bar).
pub fn single_thread_latency(platform: Platform, kind: SimLockKind) -> f64 {
    let mut sim = Sim::new(platform, 0x0F17);
    let cfg = LockConfig::for_placement(&sim, 1);
    let lock = make_lock(kind, &mut sim, &cfg);
    let data = sim.alloc_line_for_core(0);
    let tid = sim.spawn_on_core(
        0,
        Box::new(LockStress::new(vec![Rc::clone(&lock)], vec![data], 0)),
    );
    sim.run_until(WINDOW / 2);
    let s = sim.samples(tid);
    if s.len() <= 4 {
        return f64::NAN;
    }
    let body = &s[4..];
    body.iter().sum::<u64>() as f64 / body.len() as f64
}

/// Figure 9: one-to-one message latency (cycles): `(one_way, round_trip)`
/// between core 0 and `partner_core`, via `libssmp` or hardware.
pub fn mp_one_to_one(platform: Platform, partner_core: usize, hardware: bool) -> (f64, f64) {
    // One-way.
    let one_way = {
        let mut sim = Sim::new(platform, 0x39);
        let (tx_chan, rx_chan) = mk_chan(&mut sim, partner_core, 1, hardware);
        sim.spawn_on_core(0, Box::new(PingSender::new(tx_chan, None)));
        let rx = sim.spawn_on_core(partner_core, Box::new(PingReceiver::new(rx_chan, None)));
        sim.run_until(WINDOW);
        mean_skip(sim.samples(rx), 4)
    };
    // Round-trip.
    let round_trip = {
        let mut sim = Sim::new(platform, 0x3A);
        let (req_tx, req_rx) = mk_chan(&mut sim, partner_core, 1, hardware);
        let (rep_tx, rep_rx) = mk_chan(&mut sim, 0, 0, hardware);
        let tx = sim.spawn_on_core(0, Box::new(PingSender::new(req_tx, Some(rep_rx))));
        sim.spawn_on_core(
            partner_core,
            Box::new(PingReceiver::new(req_rx, Some(rep_tx))),
        );
        sim.run_until(WINDOW);
        mean_skip(sim.samples(tx), 4)
    };
    (one_way, round_trip)
}

/// Builds a channel pair endpoint view: (sender side, receiver side).
/// `to_tid` is the receiver's thread id for hardware channels.
fn mk_chan(sim: &mut Sim, receiver_core: usize, to_tid: usize, hardware: bool) -> (Chan, Chan) {
    if hardware {
        let c = HwChannel::new(to_tid);
        (Chan::Hw(c.clone()), Chan::Hw(c))
    } else {
        let c = SsmpChannel::new(sim, receiver_core);
        (Chan::Ssmp(c.clone()), Chan::Ssmp(c))
    }
}

/// Figure 10: client-server throughput (Mops/s) with `n_clients` clients
/// and one server on core 0.
pub fn mp_client_server(
    platform: Platform,
    n_clients: usize,
    round_trip: bool,
    hardware: bool,
) -> f64 {
    let mut sim = Sim::new(platform, 0x0A10);
    let topo = sim.topology().clone();
    let cores = topo.placement((n_clients + 1).min(topo.num_cores()));
    let server_core = cores[0];
    if hardware {
        let replies: Option<Vec<Chan>> = round_trip.then(|| {
            (0..n_clients)
                .map(|i| Chan::Hw(HwChannel::new(i + 1)))
                .collect()
        });
        let server_chan = HwChannel::new(0);
        sim.spawn_on_core(
            server_core,
            Box::new(MpServer::hardware(server_chan.clone(), replies.clone())),
        );
        for i in 0..n_clients {
            let reply = replies.as_ref().map(|r| r[i].clone());
            sim.spawn_on_core(
                cores[(i + 1) % cores.len()],
                Box::new(MpClient::new(Chan::Hw(HwChannel::new(0)), reply)),
            );
        }
    } else {
        let mut requests = Vec::new();
        let mut replies = Vec::new();
        for i in 0..n_clients {
            requests.push(SsmpChannel::new(&mut sim, server_core));
            replies.push(Chan::Ssmp(SsmpChannel::new(
                &mut sim,
                cores[(i + 1) % cores.len()],
            )));
        }
        sim.spawn_on_core(
            server_core,
            Box::new(MpServer::polling(
                requests.clone(),
                round_trip.then(|| replies.clone()),
            )),
        );
        for i in 0..n_clients {
            let reply = round_trip.then(|| replies[i].clone());
            sim.spawn_on_core(
                cores[(i + 1) % cores.len()],
                Box::new(MpClient::new(Chan::Ssmp(requests[i].clone()), reply)),
            );
        }
    }
    sim.run_until(WINDOW);
    // Throughput counts client-completed operations (tid 0 = the server).
    let client_ops = sim.total_ops() - sim.ops(0);
    sim.topology().mops(client_ops, WINDOW)
}

/// Hash-table backend for [`ssht_mops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SshtBackend {
    /// Per-bucket locks of the given algorithm.
    Lock(SimLockKind),
    /// Message passing: one server per three clients.
    MessagePassing,
}

/// Figure 11: hash-table throughput (Mops/s).
pub fn ssht_mops(
    platform: Platform,
    backend: SshtBackend,
    threads: usize,
    config: SshtConfig,
) -> f64 {
    let mut sim = Sim::new(platform, 0x5547);
    let cfg = LockConfig::for_placement(&sim, threads);
    match backend {
        SshtBackend::Lock(kind) => {
            let locks: Vec<_> = (0..config.buckets)
                .map(|_| make_lock(kind, &mut sim, &cfg))
                .collect();
            let table = Rc::new(SshtTable::new(&mut sim, config, locks, &cfg.thread_cores));
            for tid in 0..threads {
                sim.spawn_on_core(
                    cfg.thread_cores[tid],
                    Box::new(SshtWorker::new(Rc::clone(&table), tid)),
                );
            }
            sim.run_until(WINDOW);
            sim.topology().mops(sim.total_ops(), WINDOW)
        }
        SshtBackend::MessagePassing => {
            // One server per three clients (the paper's best split).
            let n_servers = (threads / 4).max(1);
            let n_clients = threads - n_servers;
            if n_clients == 0 {
                return f64::NAN;
            }
            // Partition buckets across servers; each server gets its own
            // table shard whose lines live on the server's node. Locks
            // are irrelevant (single-threaded access) but required by the
            // constructor; use TAS for the placeholders.
            let lock_cfg = LockConfig::for_placement(&sim, threads);
            let mut tables = Vec::new();
            for s in 0..n_servers {
                let shard = SshtConfig {
                    buckets: (config.buckets / n_servers).max(1),
                    entries: config.entries,
                    get_pct: config.get_pct,
                };
                let locks: Vec<_> = (0..shard.buckets)
                    .map(|_| make_lock(SimLockKind::Tas, &mut sim, &lock_cfg))
                    .collect();
                let server_core = lock_cfg.thread_cores[s];
                tables.push(Rc::new(SshtTable::new(
                    &mut sim,
                    shard,
                    locks,
                    &[server_core],
                )));
            }
            // Channels: client i talks to server i % n_servers.
            let mut server_pairs: Vec<Vec<(SsmpChannel, SsmpChannel)>> =
                (0..n_servers).map(|_| Vec::new()).collect();
            let mut client_chans = Vec::new();
            for c in 0..n_clients {
                let s = c % n_servers;
                let server_core = lock_cfg.thread_cores[s];
                let client_core = lock_cfg.thread_cores[n_servers + c];
                let req = SsmpChannel::new(&mut sim, server_core);
                let rep = SsmpChannel::new(&mut sim, client_core);
                server_pairs[s].push((req.clone(), rep.clone()));
                client_chans.push((req, rep));
            }
            for s in 0..n_servers {
                sim.spawn_on_core(
                    lock_cfg.thread_cores[s],
                    Box::new(SshtMpServer::new(
                        Rc::clone(&tables[s]),
                        server_pairs[s].clone(),
                    )),
                );
            }
            for (c, (req, rep)) in client_chans.into_iter().enumerate() {
                sim.spawn_on_core(
                    lock_cfg.thread_cores[n_servers + c],
                    Box::new(SshtMpClient::new(req, rep, config.buckets)),
                );
            }
            sim.run_until(WINDOW);
            // Count client completions only (tids n_servers..).
            let ops: u64 = (n_servers..threads).map(|t| sim.ops(t)).sum();
            sim.topology().mops(ops, WINDOW)
        }
    }
}

/// Figure 12: KV-store throughput (Kops/s).
pub fn kv_kops(platform: Platform, kind: SimLockKind, threads: usize, mix: KvMix) -> f64 {
    let mut sim = Sim::new(platform, 0xCAFE);
    let cfg = LockConfig::for_placement(&sim, threads);
    let n_buckets = 256;
    let bucket_locks: Vec<_> = (0..n_buckets)
        .map(|_| make_lock(kind, &mut sim, &cfg))
        .collect();
    let bucket_data: Vec<_> = (0..n_buckets)
        .map(|i| sim.alloc_line_for_core(cfg.thread_cores[i % threads]))
        .collect();
    let global = make_lock(kind, &mut sim, &cfg);
    for tid in 0..threads {
        sim.spawn_on_core(
            cfg.thread_cores[tid],
            Box::new(KvWorker::new(
                bucket_locks.clone(),
                bucket_data.clone(),
                Rc::clone(&global),
                mix,
                tid,
            )),
        );
    }
    sim.run_until(KV_WINDOW);
    sim.topology().mops(sim.total_ops(), KV_WINDOW) * 1000.0
}

fn mean_skip(samples: &[u64], skip: usize) -> f64 {
    if samples.len() <= skip {
        return f64::NAN;
    }
    let body = &samples[skip..];
    body.iter().sum::<u64>() as f64 / body.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_driver_runs() {
        let m = atomic_mops(Platform::Niagara, AtomicKind::Tas, 8);
        assert!(m > 0.0);
    }

    #[test]
    fn lock_driver_runs() {
        let m = lock_mops(Platform::Tilera, SimLockKind::Ticket, 6, 4);
        assert!(m > 0.0);
    }

    #[test]
    fn uncontested_ladder_monotone_on_xeon() {
        let near = uncontested_latency(Platform::Xeon, SimLockKind::Tas, 1);
        let far = uncontested_latency(Platform::Xeon, SimLockKind::Tas, 30);
        assert!(far > near, "near={near:.0} far={far:.0}");
    }

    #[test]
    fn mp_drivers_run() {
        let (ow, rt) = mp_one_to_one(Platform::Opteron, 6, false);
        assert!(ow > 0.0 && rt > ow);
        let m = mp_client_server(Platform::Xeon, 4, true, false);
        assert!(m > 0.0);
    }

    #[test]
    fn ssht_driver_runs_both_backends() {
        let cfg = SshtConfig {
            buckets: 12,
            entries: 12,
            get_pct: 80,
        };
        let lk = ssht_mops(
            Platform::Niagara,
            SshtBackend::Lock(SimLockKind::Tas),
            8,
            cfg,
        );
        let mp = ssht_mops(Platform::Niagara, SshtBackend::MessagePassing, 8, cfg);
        assert!(lk > 0.0 && mp > 0.0);
    }

    #[test]
    fn kv_driver_runs() {
        let k = kv_kops(Platform::Xeon, SimLockKind::Ticket, 4, KvMix::SetOnly);
        assert!(k > 0.0);
    }

    #[test]
    fn hardware_fai_never_loses_to_cas_loop() {
        // Figure 4: under contention a CAS retry loop trails the
        // single-instruction FAI — its failed attempts bounce the line
        // without making progress. (Uncontended, a lone successful CAS
        // is actually cheaper than Table 2's FAI column, which prices in
        // the full SPARC CAS-loop; so the claim starts at 8 threads.)
        for threads in [8usize, 32] {
            let fai = atomic_mops(Platform::Niagara, AtomicKind::Fai, threads);
            let cas_fai = atomic_mops(Platform::Niagara, AtomicKind::CasFai, threads);
            assert!(
                cas_fai <= fai * 1.05,
                "threads={threads}: cas_fai={cas_fai:.2} fai={fai:.2}"
            );
        }
    }

    #[test]
    fn client_server_throughput_saturates() {
        // Figure 10: one server caps the throughput; growing the client
        // count far past saturation must not grow throughput much.
        let mid = mp_client_server(Platform::Niagara, 8, true, false);
        let many = mp_client_server(Platform::Niagara, 32, true, false);
        assert!(many < 2.0 * mid, "mid={mid:.2} many={many:.2}");
    }

    #[test]
    fn best_lock_helper_agrees_with_exhaustive_max() {
        let kinds = [SimLockKind::Tas, SimLockKind::Ticket, SimLockKind::Clh];
        let (k, m) = best_lock(Platform::Tilera, 12, 16, &kinds);
        let exhaustive = kinds
            .iter()
            .map(|&x| lock_mops(Platform::Tilera, x, 12, 16))
            .fold(f64::MIN, f64::max);
        assert_eq!(m, exhaustive);
        assert!(kinds.contains(&k));
    }
}

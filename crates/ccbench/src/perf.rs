//! The simulator's own performance harness (`sim-perf`).
//!
//! The ROADMAP treats the simulator as a hot path in its own right:
//! every figure regenerates through the event loop, so engine-level
//! regressions multiply across the whole artifact suite. This module
//! runs a fixed set of representative workloads — contended and
//! uncontended locks, the atomic-op stress, message-passing client/
//! server — on all four platforms and reports, per run: wall time,
//! events processed, completed operations, events per op, and events
//! per wall-second. The `sim-perf` binary renders the suite as a table
//! and as `BENCH_sim.json`, the perf-trajectory artifact at the repo
//! root.
//!
//! Events-per-op is the engine-health number: the wake-on-write
//! wait-lists collapse spin polling, so a contended-lock op should cost
//! tens of events, not thousands. The regression tests in
//! `tests/sim_perf_regressions.rs` pin ceilings on it.

use std::time::Instant;

use ssync_core::topology::Platform;
use ssync_sim::Sim;
use ssync_simsync::locks::{make_lock, LockConfig, SimLockKind};
use ssync_simsync::mp::SsmpChannel;
use ssync_simsync::workloads::atomics::{stress_pause, AtomicKind, AtomicStress};
use ssync_simsync::workloads::lock_stress::LockStress;
use ssync_simsync::workloads::mp_bench::{Chan, MpClient, MpServer};

use crate::json::Doc;

/// Simulated window of a full `sim-perf` run, in cycles.
pub const PERF_WINDOW: u64 = 600_000;

/// Simulated window in `--smoke` mode (CI keep-alive), in cycles.
pub const SMOKE_WINDOW: u64 = 30_000;

/// One measured workload run.
#[derive(Debug, Clone)]
pub struct PerfResult {
    /// Workload name (`lock-contended`, `atomics-fai`, ...).
    pub workload: &'static str,
    /// Platform display name.
    pub platform: &'static str,
    /// Simulated threads.
    pub threads: usize,
    /// Simulated window in cycles.
    pub window: u64,
    /// Host wall time of the run, in milliseconds.
    pub wall_ms: f64,
    /// Events the engine processed.
    pub events: u64,
    /// Application-level operations completed.
    pub ops: u64,
}

impl PerfResult {
    /// Engine events per completed operation.
    pub fn events_per_op(&self) -> f64 {
        self.events as f64 / self.ops.max(1) as f64
    }

    /// Engine events per host wall-second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.events as f64 * 1000.0 / self.wall_ms
    }
}

fn run_sim(
    workload: &'static str,
    platform: Platform,
    threads: usize,
    window: u64,
    build: impl FnOnce(&mut Sim),
) -> PerfResult {
    let start = Instant::now();
    let mut sim = Sim::new(platform, 0xBE7C);
    build(&mut sim);
    sim.run_until(window);
    PerfResult {
        workload,
        platform: platform.name(),
        threads,
        window,
        wall_ms: start.elapsed().as_secs_f64() * 1000.0,
        events: sim.events(),
        ops: sim.total_ops(),
    }
}

/// A lock-stress run: `threads` threads over `n_locks` locks.
fn lock_case(
    workload: &'static str,
    platform: Platform,
    kind: SimLockKind,
    threads: usize,
    n_locks: usize,
    window: u64,
) -> PerfResult {
    run_sim(workload, platform, threads, window, |sim| {
        let cfg = LockConfig::for_placement(sim, threads);
        let mut locks = Vec::with_capacity(n_locks);
        let mut data = Vec::with_capacity(n_locks);
        for _ in 0..n_locks {
            locks.push(make_lock(kind, sim, &cfg));
            data.push(sim.alloc_line_for_core(cfg.home_core));
        }
        for tid in 0..threads {
            let w = LockStress::new(locks.clone(), data.clone(), tid);
            sim.spawn_on_core(cfg.thread_cores[tid], Box::new(w));
        }
    })
}

fn atomics_case(platform: Platform, threads: usize, window: u64) -> PerfResult {
    run_sim("atomics-fai", platform, threads, window, |sim| {
        let cores = sim.topology().placement(threads);
        let line = sim.alloc_line_for_core(cores[0]);
        let pause = stress_pause(sim.topology(), &cores);
        for &c in &cores {
            sim.spawn_on_core(c, Box::new(AtomicStress::new(line, AtomicKind::Fai, pause)));
        }
    })
}

fn mp_case(platform: Platform, n_clients: usize, window: u64) -> PerfResult {
    run_sim("mp-client-server", platform, n_clients + 1, window, |sim| {
        let topo = sim.topology().clone();
        let cores = topo.placement(n_clients + 1);
        let server_core = cores[0];
        let mut requests = Vec::new();
        let mut replies = Vec::new();
        for i in 0..n_clients {
            requests.push(SsmpChannel::new(sim, server_core));
            replies.push(Chan::Ssmp(SsmpChannel::new(sim, cores[i + 1])));
        }
        sim.spawn_on_core(
            server_core,
            Box::new(MpServer::polling(requests.clone(), Some(replies.clone()))),
        );
        for i in 0..n_clients {
            sim.spawn_on_core(
                cores[i + 1],
                Box::new(MpClient::new(
                    Chan::Ssmp(requests[i].clone()),
                    Some(replies[i].clone()),
                )),
            );
        }
    })
}

/// Runs the full representative suite: four workloads on each of the
/// four platforms.
pub fn run_suite(window: u64) -> Vec<PerfResult> {
    let mut out = Vec::new();
    for p in Platform::ALL {
        let n = p.topology().num_cores();
        out.push(lock_case(
            "lock-contended",
            p,
            SimLockKind::Ttas,
            n,
            1,
            window,
        ));
        out.push(lock_case(
            "lock-low-contention",
            p,
            SimLockKind::Ticket,
            n,
            128,
            window,
        ));
        out.push(atomics_case(p, n, window));
        out.push(mp_case(p, (n - 1).min(8), window));
    }
    out
}

/// Renders the suite as a plain-text table.
pub fn render_table(results: &[PerfResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>8} {:>8} {:>10} {:>12} {:>10} {:>12} {:>14}",
        "workload", "platform", "threads", "wall ms", "events", "ops", "events/op", "events/sec"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>8} {:>10.1} {:>12} {:>10} {:>12.1} {:>14.0}",
            r.workload,
            r.platform,
            r.threads,
            r.wall_ms,
            r.events,
            r.ops,
            r.events_per_op(),
            r.events_per_sec()
        );
    }
    out
}

/// Renders the suite (plus the one-off historical repro-all anchor
/// points) as the `BENCH_sim.json` document. Hand-rolled JSON: the
/// workspace is offline and serde is not among the vendored shims.
///
/// The `repro_all_waitlist_pr` block is a frozen historical record of
/// the wait-list change, not remeasured by `sim-perf`; the live perf
/// trajectory is the `workloads` array.
pub fn render_json(results: &[PerfResult], repro_before_s: f64, repro_after_s: f64) -> String {
    let mut doc = Doc::open(
        "ssync-sim-perf-v1",
        "wall times are host seconds/milliseconds on the build machine; events are engine events",
    );
    doc.raw("  \"repro_all_waitlist_pr\": {\n");
    doc.raw(&format!("    \"before_s\": {repro_before_s:.1},\n"));
    doc.raw(&format!("    \"after_s\": {repro_after_s:.1},\n"));
    doc.raw(&format!(
        "    \"speedup\": {:.1},\n",
        repro_before_s / repro_after_s.max(1e-9)
    ));
    doc.raw(
        "    \"note\": \"HISTORICAL, not remeasured by sim-perf: wall time of `cargo run --release --bin repro-all` (15 artifacts) on the 1-core dev machine immediately before/after the wake-on-write wait-list + memoized-table PR; current engine health is the workloads array\"\n",
    );
    doc.raw("  },\n");
    let workloads: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"workload\": \"{}\", \"platform\": \"{}\", \"threads\": {}, \"window_cycles\": {}, \"wall_ms\": {:.2}, \"events\": {}, \"ops\": {}, \"events_per_op\": {:.2}, \"events_per_sec\": {:.0}}}",
                r.workload,
                r.platform,
                r.threads,
                r.window,
                r.wall_ms,
                r.events,
                r.ops,
                r.events_per_op(),
                r.events_per_sec()
            )
        })
        .collect();
    doc.array("workloads", &workloads, false);
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_runs_and_renders() {
        let results = run_suite(SMOKE_WINDOW);
        assert_eq!(results.len(), 16); // 4 workloads x 4 platforms
        assert!(results.iter().all(|r| r.events > 0));
        assert!(results.iter().all(|r| r.ops > 0));
        let table = render_table(&results);
        assert!(table.contains("lock-contended"));
        let json = render_json(&results, 140.0, 14.0);
        assert!(json.contains("\"speedup\": 10.0"));
        assert!(json.contains("\"workloads\""));
    }

    #[test]
    fn contended_locks_stay_event_lean() {
        // The wait-list path keeps a contended handoff to a few events
        // per waiter; the explicit-polling engine spent hundreds (one
        // event every poll period for every spinning thread). The bound
        // scales with the thread count because every waiter legitimately
        // re-polls once per handoff; 10x covers smoke-window startup
        // transients.
        for r in run_suite(SMOKE_WINDOW) {
            if r.workload == "lock-contended" {
                assert!(
                    r.events_per_op() < 10.0 * r.threads as f64,
                    "{} {}: {:.1} events/op at {} threads",
                    r.platform,
                    r.workload,
                    r.events_per_op(),
                    r.threads
                );
            }
        }
    }
}

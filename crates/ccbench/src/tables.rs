//! Tables 2 and 3: the `ccbench` latency matrix.
//!
//! `ccbench` stages a cache line in a precise coherence state (owner /
//! sharers at a chosen distance), then measures one operation from the
//! requesting core. Here the staging uses the simulator's memory
//! directly and the measurement runs a one-shot program through the
//! engine, so the numbers also regression-test that the engine charges
//! exactly what the latency model specifies.
//!
//! These tables match the paper *by construction* (they are the model's
//! inputs); they are reproduced to validate the plumbing and to document
//! the calibration, as EXPERIMENTS.md explains.

use ssync_core::topology::{DistClass, Platform};
use ssync_sim::memory::{CohState, SharerSet};
use ssync_sim::program::{fn_program, Action};
use ssync_sim::Sim;

/// Constructor for the single measured action of a Table 2 cell.
type OpCtor = fn(u64) -> Action;

/// One measured cell of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Cell {
    /// Row: the line's staged state.
    pub state: CohState,
    /// Column: distance class between requester and holder.
    pub distance: DistClass,
    /// The measured operation ("load", "store", "CAS", ...).
    pub op: &'static str,
    /// Measured latency in cycles.
    pub cycles: u64,
}

/// Measures one operation on a staged line: the requester runs exactly
/// one action; the elapsed simulated time is the latency.
fn measure(
    platform: Platform,
    stage: impl FnOnce(&mut Sim) -> (u64, usize),
    action: impl Fn(u64) -> Action + 'static,
) -> u64 {
    let mut sim = Sim::new(platform, 1);
    let (line, requester) = stage(&mut sim);
    let mut fired = false;
    sim.spawn_on_core(
        requester,
        fn_program(move |_r, _env| {
            if fired {
                return Action::Done;
            }
            fired = true;
            action(line)
        }),
    );
    sim.run_to_completion();
    sim.now()
}

/// Stages a line homed at core 0's node with the given state, a holder
/// at `holder_core`, and (for Shared/Owned) one extra sharer next to the
/// holder. Returns (line, requester).
fn stage(sim: &mut Sim, state: CohState, holder_core: usize, requester: usize) -> (u64, usize) {
    let line = sim.alloc_line_for_core(0);
    {
        let l = sim.memory_mut().line_mut(line);
        l.state = state;
        match state {
            CohState::Invalid => {}
            CohState::Shared => {
                let mut s = SharerSet::EMPTY;
                s.add(holder_core);
                l.sharers = s;
            }
            CohState::Owned => {
                l.owner = Some(holder_core);
                let mut s = SharerSet::EMPTY;
                // A second sharer, as in the paper's store-on-shared test.
                s.add(if holder_core > 0 { holder_core - 1 } else { 1 });
                l.sharers = s;
            }
            CohState::Exclusive | CohState::Modified => {
                l.owner = Some(holder_core);
            }
        }
    }
    (line, requester)
}

/// The distance ladder columns for a platform: `(label, holder_core,
/// requester_core)`. The holder sits on core 0's node (the line's home);
/// the requester moves away, matching Table 2's column layout.
pub fn distance_columns(platform: Platform) -> Vec<(String, usize, usize)> {
    let topo = platform.topology();
    let mut cols = Vec::new();
    for (class, partner) in topo.distance_ladder() {
        cols.push((class.label(), 0, partner));
    }
    cols
}

/// Generates the full Table 2 for a platform: loads, stores and the four
/// atomics, for every applicable state and distance column.
pub fn table2(platform: Platform) -> Vec<Table2Cell> {
    let mut cells = Vec::new();
    let states: &[CohState] = match platform {
        Platform::Opteron | Platform::Opteron2 => &[
            CohState::Modified,
            CohState::Owned,
            CohState::Exclusive,
            CohState::Shared,
            CohState::Invalid,
        ],
        _ => &[
            CohState::Modified,
            CohState::Exclusive,
            CohState::Shared,
            CohState::Invalid,
        ],
    };
    for &(ref label, holder, requester) in &distance_columns(platform) {
        let _ = label;
        for &state in states {
            let ops: [(&'static str, OpCtor); 6] = [
                ("load", Action::Load),
                ("store", |l| Action::Store(l, 7)),
                ("CAS", |l| Action::Cas(l, 0, 1)),
                ("FAI", Action::Fai),
                ("TAS", Action::Tas),
                ("SWAP", |l| Action::Swap(l, 7)),
            ];
            for (name, make) in ops {
                // Stores/atomics on Invalid are not Table 2 rows, but we
                // generate them anyway for completeness.
                let cycles = measure(platform, |sim| stage(sim, state, holder, requester), make);
                cells.push(Table2Cell {
                    state,
                    distance: platform.topology().distance(0, requester),
                    op: name,
                    cycles,
                });
            }
        }
    }
    cells
}

/// Table 3: local load latencies (L1/L2/LLC/RAM) per platform, straight
/// from the calibrated model.
pub fn table3(platform: Platform) -> [(&'static str, u64); 4] {
    ssync_sim::LatencyModel::new(platform).local_levels()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opteron_load_modified_column_matches_paper() {
        let cells = table2(Platform::Opteron);
        let find = |dist: DistClass| {
            cells
                .iter()
                .find(|c| c.state == CohState::Modified && c.op == "load" && c.distance == dist)
                .map(|c| c.cycles)
                .unwrap()
        };
        assert_eq!(find(DistClass::SameDie), 81);
        assert_eq!(find(DistClass::SameMcm), 161);
        assert_eq!(find(DistClass::OneHop), 172);
        assert_eq!(find(DistClass::TwoHops), 252);
    }

    #[test]
    fn xeon_shared_load_columns_match_paper() {
        let cells = table2(Platform::Xeon);
        let find = |dist: DistClass| {
            cells
                .iter()
                .find(|c| c.state == CohState::Shared && c.op == "load" && c.distance == dist)
                .map(|c| c.cycles)
                .unwrap()
        };
        assert_eq!(find(DistClass::SameDie), 44);
        assert_eq!(find(DistClass::OneHop), 223);
        assert_eq!(find(DistClass::TwoHops), 334);
    }

    #[test]
    fn niagara_columns_match_paper() {
        let cells = table2(Platform::Niagara);
        let load_same_core = cells
            .iter()
            .find(|c| {
                c.state == CohState::Modified && c.op == "load" && c.distance == DistClass::SameCore
            })
            .unwrap();
        assert_eq!(load_same_core.cycles, 3);
        let tas_other = cells
            .iter()
            .find(|c| {
                c.state == CohState::Modified && c.op == "TAS" && c.distance == DistClass::SameDie
            })
            .unwrap();
        assert_eq!(tas_other.cycles, 55);
    }

    #[test]
    fn tilera_load_tracks_hops() {
        let cells = table2(Platform::Tilera);
        let one_hop = cells
            .iter()
            .find(|c| {
                c.state == CohState::Exclusive
                    && c.op == "load"
                    && c.distance == DistClass::MeshHops(1)
            })
            .unwrap();
        assert_eq!(one_hop.cycles, 45);
        let max_hops = cells
            .iter()
            .find(|c| {
                c.state == CohState::Exclusive
                    && c.op == "load"
                    && c.distance == DistClass::MeshHops(10)
            })
            .unwrap();
        assert_eq!(max_hops.cycles, 63);
    }

    #[test]
    fn table3_has_four_levels_everywhere() {
        for p in Platform::ALL {
            let t = table3(p);
            assert_eq!(t.len(), 4);
            assert!(t[3].1 > t[0].1, "{p:?}: RAM slower than L1");
        }
    }
}

//! `sim-perf`: the simulator's performance harness.
//!
//! Runs representative contended/uncontended workloads on all four
//! platforms, prints an events/sec table, and writes `BENCH_sim.json`
//! (the perf-trajectory artifact) unless `--no-write` is given.
//!
//! ```text
//! sim-perf [--smoke] [--out PATH] [--no-write]
//! ```
//!
//! `--smoke` shrinks the simulated window ~20x so CI can keep the
//! harness alive in seconds; smoke runs never overwrite the default
//! `BENCH_sim.json` unless an explicit `--out` is given.

use ssync_ccbench::perf::{render_json, render_table, run_suite, PERF_WINDOW, SMOKE_WINDOW};

/// Frozen historical record: wall time of `cargo run --release --bin
/// repro-all` on the dev machine *before* the wait-list +
/// memoized-table engine work. Written into BENCH_sim.json under
/// `repro_all_waitlist_pr` as a one-off anchor, never remeasured here
/// (see EXPERIMENTS.md).
const REPRO_ALL_BEFORE_S: f64 = 140.0;

/// The matching measurement immediately after the engine work, same
/// machine — historical, like `REPRO_ALL_BEFORE_S`.
const REPRO_ALL_AFTER_S: f64 = 14.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: sim-perf [--smoke] [--out PATH] [--no-write]");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let no_write = args.iter().any(|a| a == "--no-write");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => Some(p.clone()),
            _ => {
                eprintln!("sim-perf: --out requires a path argument");
                std::process::exit(2);
            }
        },
        None => None,
    };

    let window = if smoke { SMOKE_WINDOW } else { PERF_WINDOW };
    eprintln!(
        "sim-perf: window = {window} cycles{}",
        if smoke { " (smoke mode)" } else { "" }
    );
    let results = run_suite(window);
    print!("{}", render_table(&results));

    // Smoke windows produce misleading events/sec (startup-dominated);
    // only a full run refreshes the committed artifact by default.
    let write_default = !smoke;
    if !no_write && (write_default || out_path.is_some()) {
        let path = out_path.unwrap_or_else(|| "BENCH_sim.json".to_string());
        let json = render_json(&results, REPRO_ALL_BEFORE_S, REPRO_ALL_AFTER_S);
        std::fs::write(&path, json).expect("write BENCH_sim.json");
        eprintln!("wrote {path}");
    }
}

//! `lat-perf`: the open-loop tail-latency harness.
//!
//! Sweeps offered load over the headline serving shape (ticket locks,
//! optimistic reads, ring transport, zipfian YCSB-B) with Poisson
//! arrivals and intended-send-time latency stamps (no coordinated
//! omission), prints the latency-vs-throughput curve and its knee, and
//! writes `BENCH_lat.json` unless `--no-write` is given.
//!
//! ```text
//! lat-perf [--smoke] [--out PATH] [--no-write] [--check-determinism]
//! ```
//!
//! `--smoke` shrinks the sweep to two points (one underloaded, one
//! saturating) and *gates* on them: every issued read must appear in
//! the latency histogram, and the underloaded point's read p99 must
//! stay under a generous ceiling — CI runs this. Smoke runs never
//! overwrite the default `BENCH_lat.json` unless an explicit `--out`
//! is given. `--check-determinism` runs the sweep twice and diffs the
//! issued op counts.

use ssync_ccbench::lat_perf::{
    check_determinism, knee, render_json, render_table, run_sweep, smoke_gate, LatSweepConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: lat-perf [--smoke] [--out PATH] [--no-write] [--check-determinism]");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let no_write = args.iter().any(|a| a == "--no-write");
    let check = args.iter().any(|a| a == "--check-determinism");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => Some(p.clone()),
            _ => {
                eprintln!("lat-perf: --out requires a path argument");
                std::process::exit(2);
            }
        },
        None => None,
    };

    let config = LatSweepConfig::for_host(smoke);
    eprintln!(
        "lat-perf: {} workers x {} connections x {} key-ops, {} keys, {} offered points{}",
        config.workers,
        config.connections,
        config.ops_per_worker,
        config.keys,
        config.offered.len(),
        if smoke { " (smoke mode)" } else { "" }
    );
    // The determinism gate runs the sweep twice and hands back the
    // first run's points, so checking costs one extra sweep, not two.
    let points = if check {
        match check_determinism(config) {
            Ok(points) => {
                eprintln!(
                    "lat-perf: issued op counts deterministic over {} points x 2 runs",
                    points.len()
                );
                points
            }
            Err(msg) => {
                eprintln!("lat-perf: DETERMINISM FAILURE: {msg}");
                std::process::exit(1);
            }
        }
    } else {
        run_sweep(config)
    };
    print!("{}", render_table(&points));

    match knee(&points) {
        Some(p) => eprintln!(
            "knee: offered {:.0} ops/s achieved only {:.0} ops/s (read p99 {:.1} us)",
            p.offered_ops_per_sec,
            p.report.achieved_ops_per_sec,
            p.report.read_lat.quantile(0.99).unwrap_or(0) as f64 / 1000.0
        ),
        None => eprintln!("knee: not reached — the stack kept up at every offered rate"),
    }

    // The smoke gate is the CI contract: trip hard, don't just warn.
    if smoke {
        if let Err(msg) = smoke_gate(&points) {
            eprintln!("lat-perf: SMOKE GATE FAILURE: {msg}");
            std::process::exit(1);
        }
        eprintln!("lat-perf: smoke gate passed (reads all measured, p99 under ceiling)");
    }

    // Smoke runs are startup-dominated; only a full run refreshes the
    // committed artifact by default (same discipline as kv-perf).
    let write_default = !smoke;
    if !no_write && (write_default || out_path.is_some()) {
        let path = out_path.unwrap_or_else(|| "BENCH_lat.json".to_string());
        let json = render_json(&points, config);
        std::fs::write(&path, json).expect("write BENCH_lat.json");
        eprintln!("wrote {path}");
    }
}

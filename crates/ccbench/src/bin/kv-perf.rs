//! `kv-perf`: the sharded KV service's performance harness.
//!
//! Sweeps the native serving stack over {lock algorithm × shard count
//! × key skew × rw mix} plus the {read_path × transport} fast-path
//! grid (and batched multi-get and churn cases), runs the epoch
//! reclamation churn soak (bounded retired backlog vs. the unbounded
//! deferred baseline — a failed bound exits nonzero), prints a
//! per-case table, and writes `BENCH_kv.json` unless `--no-write` is
//! given.
//!
//! ```text
//! kv-perf [--smoke] [--out PATH] [--no-write] [--check-determinism]
//! ```
//!
//! `--smoke` shrinks the per-case op count ~15x so CI can keep the
//! harness alive in seconds; smoke runs never overwrite the default
//! `BENCH_kv.json` unless an explicit `--out` is given. Issued op
//! counts are deterministic per seed in both modes;
//! `--check-determinism` proves it by running the whole sweep twice
//! (both transports, both read paths) and diffing the issued op counts
//! — CI runs this in smoke mode.

use ssync_ccbench::kv_perf::{
    check_determinism, render_json, render_table, run_churn_soak, run_sweep, SoakConfig,
    SweepConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: kv-perf [--smoke] [--out PATH] [--no-write] [--check-determinism]");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let no_write = args.iter().any(|a| a == "--no-write");
    let check = args.iter().any(|a| a == "--check-determinism");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => Some(p.clone()),
            _ => {
                eprintln!("kv-perf: --out requires a path argument");
                std::process::exit(2);
            }
        },
        None => None,
    };

    let config = SweepConfig::for_host(smoke);
    eprintln!(
        "kv-perf: {} workers x {} key-ops, {} keys{}",
        config.workers,
        config.ops_per_worker,
        config.keys,
        if smoke { " (smoke mode)" } else { "" }
    );
    // The determinism gate runs the sweep twice and hands back the
    // first run's results, so checking costs one extra sweep, not two.
    let results = if check {
        match check_determinism(config) {
            Ok(results) => {
                eprintln!(
                    "kv-perf: issued op counts deterministic over {} cases x 2 runs",
                    results.len()
                );
                results
            }
            Err(msg) => {
                eprintln!("kv-perf: DETERMINISM FAILURE: {msg}");
                std::process::exit(1);
            }
        }
    } else {
        run_sweep(config)
    };
    print!("{}", render_table(&results));

    // The churn soak gates the release: the epoch store's retired
    // backlog must stay bounded under sustained delete/replace churn
    // while its deferred (graveyard) twin accumulates everything.
    let soak = run_churn_soak(SoakConfig::for_host(smoke));
    eprintln!("kv-perf: {}", soak.summary());
    if let Err(msg) = soak.check() {
        eprintln!("kv-perf: CHURN SOAK FAILURE: {msg}");
        std::process::exit(1);
    }

    // Smoke runs are startup-dominated; only a full run refreshes the
    // committed artifact by default (same discipline as sim-perf).
    let write_default = !smoke;
    if !no_write && (write_default || out_path.is_some()) {
        let path = out_path.unwrap_or_else(|| "BENCH_kv.json".to_string());
        let json = render_json(&results, config, &soak);
        std::fs::write(&path, json).expect("write BENCH_kv.json");
        eprintln!("wrote {path}");
    }
}

//! `repl-perf`: the replication layer's performance harness.
//!
//! Sweeps `ssync-repl` primary/backup groups over {replica count ×
//! mode × skew × mix × batch} plus a deterministic fault-injection
//! case, prints a per-case table and the replica-scaling headline, and
//! writes `BENCH_repl.json` unless `--no-write` is given. After the
//! sweep it runs the `ssync-cluster` reshard case — a live, faulted
//! 2 → 4 split under traffic that asserts zero acknowledged-write
//! loss — and reports it as a top-level `"reshard"` JSON object.
//!
//! ```text
//! repl-perf [--smoke] [--out PATH] [--no-write]
//! ```
//!
//! `--smoke` shrinks per-case op counts so CI can keep the harness
//! alive in seconds; smoke runs never overwrite the default
//! `BENCH_repl.json` unless an explicit `--out` is given. Issued op
//! counts and fault window counts are deterministic per seed in both
//! modes; every case asserts its backups converged.

use ssync_ccbench::repl_perf::{
    render_json, render_table, run_reshard_case, run_sweep, ReplSweepConfig,
};
use ssync_srv::workload::KeyDist;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repl-perf [--smoke] [--out PATH] [--no-write]");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let no_write = args.iter().any(|a| a == "--no-write");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => Some(p.clone()),
            _ => {
                eprintln!("repl-perf: --out requires a path argument");
                std::process::exit(2);
            }
        },
        None => None,
    };

    let config = ReplSweepConfig::for_host(smoke);
    eprintln!(
        "repl-perf: {} workers x {} key-ops, {} keys{}",
        config.workers,
        config.ops_per_worker,
        config.keys,
        if smoke { " (smoke mode)" } else { "" }
    );
    let results = run_sweep(config);
    print!("{}", render_table(&results));

    // The replica-scaling headline: batched zipfian YCSB-C, async,
    // 0 vs 2 backups.
    let pick = |replicas: usize| {
        results.iter().find(|r| {
            r.case.replicas == replicas
                && r.case.batch > 1
                && matches!(r.case.dist, KeyDist::Zipfian { .. })
                && r.case.mix.name == "ycsb-c"
        })
    };
    if let (Some(r0), Some(r2)) = (pick(0), pick(2)) {
        eprintln!(
            "replica scaling (ycsb-c zipf batch {}): 0 replicas {:.0} ops/s -> 2 replicas {:.0} ops/s ({:+.1}%)",
            r2.case.batch,
            r0.ops_per_sec,
            r2.ops_per_sec,
            (r2.ops_per_sec / r0.ops_per_sec - 1.0) * 100.0
        );
    }

    // The elastic-resharding case: a live, faulted 2 -> 4 split under
    // closed-loop traffic. Panics on any acknowledged-write loss, so
    // the smoke run doubles as the zero-loss gate in CI.
    let reshard = run_reshard_case(config);
    eprintln!(
        "reshard 2->4 (live, faulted): {} ops, dip {:.1}% ({:.0} -> {:.0} ops/s during), \
         wall {:.1} ms, {} redirects, {} deferred, lost_acked_writes {}",
        reshard.issued,
        reshard.dip_pct,
        reshard.rate_before,
        reshard.rate_during,
        reshard.migration_wall.as_secs_f64() * 1000.0,
        reshard.client_redirects,
        reshard.migration_ops_deferred,
        reshard.lost_acked_writes
    );

    // Smoke runs are startup-dominated; only a full run refreshes the
    // committed artifact by default (same discipline as kv-perf).
    let write_default = !smoke;
    if !no_write && (write_default || out_path.is_some()) {
        let path = out_path.unwrap_or_else(|| "BENCH_repl.json".to_string());
        let json = render_json(&results, config, &reshard);
        std::fs::write(&path, json).expect("write BENCH_repl.json");
        eprintln!("wrote {path}");
    }
}

//! # ssync-ccbench
//!
//! The experiment layer: for every table and figure of the paper's
//! evaluation, a driver function that stages the workload on the
//! simulator, runs a measurement window, and returns the series the
//! figure plots. The `ssync-figures` binaries are thin formatters over
//! these functions.
//!
//! | Paper artifact | Driver |
//! |---|---|
//! | Table 2 (remote latencies)        | [`tables::table2`] |
//! | Table 3 (local latencies)         | [`tables::table3`] |
//! | Figure 3 (ticket-lock variants)   | [`drivers::lock_latency`] |
//! | Figure 4 (atomic ops)             | [`drivers::atomic_mops`] |
//! | Figure 5/7/8 (lock throughput)    | [`drivers::lock_mops`] |
//! | Figure 6 (uncontested latency)    | [`drivers::uncontested_latency`] |
//! | Figure 9 (MP one-to-one)          | [`drivers::mp_one_to_one`] |
//! | Figure 10 (MP client-server)      | [`drivers::mp_client_server`] |
//! | Figure 11 (hash table)            | [`drivers::ssht_mops`] |
//! | Figure 12 (key-value store)       | [`drivers::kv_kops`] |

pub mod drivers;
pub mod json;
pub mod kv_perf;
pub mod lat_perf;
pub mod perf;
pub mod repl_perf;
pub mod series;
pub mod tables;

pub use series::Series;

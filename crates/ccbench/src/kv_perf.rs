//! The sharded KV service's performance harness (`kv-perf`).
//!
//! Where `sim-perf` watches the simulator engine, this suite watches
//! the *native* serving stack end to end: `ssync-srv` client threads
//! talking to per-shard server threads over `ssync-mp` channels, each
//! shard an `ssync-kv` store under a pluggable `ssync-locks` algorithm.
//! The sweep crosses {lock algorithm × shard count × key skew × rw
//! mix} — the axes the paper's Section 6.4 Memcached experiment varies
//! (lock algorithm) plus the ones a production deployment adds
//! (sharding, skew, mix, batching).
//!
//! Per case it reports key-ops/sec, hit rate, CAS outcomes, and
//! maintenance stalls (the store's periodic global-lock passes). The
//! `kv-perf` binary renders the suite as a table and as
//! `BENCH_kv.json`. Issued op counts are deterministic per seed — the
//! regression tests and the committed artifact rely on that — while
//! wall times are whatever the host gives.
//!
//! The sweep is followed by the **churn soak** ([`run_churn_soak`]): a
//! deterministic delete/replace-heavy stream that holds the epoch
//! store's retired-node backlog under [`SOAK_BACKLOG_BOUND`] at every
//! round boundary — reclamation running concurrently with traffic,
//! never a `purge_retired` quiescent point — against a
//! [`ReclaimMode::Deferred`] twin whose backlog just grows, the old
//! graveyard semantics made measurable.

use ssync_core::cores;
use ssync_kv::{KvStore, ReadPath, ReclaimMode};
use ssync_locks::{McsLock, MutexLock, RawLock, TicketLock, TtasLock};
use ssync_srv::router::ShardRouter;
use ssync_srv::workload::{
    run_closed_loop_on, KeyDist, Mix, OpCounts, Transport, ValueSize, WorkloadSpec,
};

use crate::json::Doc;

/// Key-operations each client worker issues in a full run.
pub const PERF_OPS_PER_WORKER: u64 = 6_000;

/// Key-operations per worker in `--smoke` mode (CI keep-alive).
pub const SMOKE_OPS_PER_WORKER: u64 = 400;

/// Keyspace size of a full run.
pub const PERF_KEYS: u64 = 4_096;

/// Keyspace size in `--smoke` mode.
pub const SMOKE_KEYS: u64 = 512;

/// Master seed for every case (the workload derives per-worker
/// streams from it).
pub const SEED: u64 = 0xCAFE_F00D;

/// Ring depth of the `transport=ring` cases (slots per direction per
/// client-shard pair).
pub const RING_DEPTH: usize = 64;

/// Reads a pipelining client keeps in flight across its shards on the
/// ring cases. At most `RING_WINDOW` one-frame requests can be queued
/// per shard, so sends never block (the pipelined-client discipline).
pub const RING_WINDOW: usize = 16;

/// Rounds the churn soak runs in a full invocation.
pub const SOAK_ROUNDS: usize = 64;

/// Key-operations per soak round in a full invocation.
pub const SOAK_OPS_PER_ROUND: u64 = 2_048;

/// Churn-soak rounds in `--smoke` mode.
pub const SMOKE_SOAK_ROUNDS: usize = 16;

/// Key-operations per soak round in `--smoke` mode.
pub const SMOKE_SOAK_OPS_PER_ROUND: u64 = 512;

/// Keyspace of the churn soak — small enough that most writes replace
/// or delete a live node, which is what loads the reclamation path.
pub const SOAK_KEYS: u64 = 512;

/// Retired-node backlog the epoch store must never exceed at a round
/// boundary. The deferred (graveyard) baseline blows through this in
/// both soak modes, which is the whole point of the contrast.
pub const SOAK_BACKLOG_BOUND: u64 = 2_048;

/// The native lock algorithms the sweep crosses. A subset of the nine:
/// one spin (TTAS), one fair spin (TICKET), one queue (MCS), one
/// blocking (MUTEX) — the four scaling classes of the paper's Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrvLockKind {
    /// Test-and-test-and-set with back-off.
    Ttas,
    /// Ticket lock with proportional back-off.
    Ticket,
    /// MCS queue lock.
    Mcs,
    /// Spin-then-park mutex (Pthread model).
    Mutex,
}

impl SrvLockKind {
    /// Every algorithm in the sweep.
    pub const ALL: [SrvLockKind; 4] = [
        SrvLockKind::Ttas,
        SrvLockKind::Ticket,
        SrvLockKind::Mcs,
        SrvLockKind::Mutex,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SrvLockKind::Ttas => TtasLock::NAME,
            SrvLockKind::Ticket => TicketLock::NAME,
            SrvLockKind::Mcs => McsLock::NAME,
            SrvLockKind::Mutex => MutexLock::NAME,
        }
    }
}

/// The sweep's configuration, fixed per invocation.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Client worker threads per case.
    pub workers: usize,
    /// Key-operations per worker per case.
    pub ops_per_worker: u64,
    /// Keyspace size.
    pub keys: u64,
}

impl SweepConfig {
    /// Scales the config to the host: two client workers minimum, more
    /// when the box has cores to spare.
    pub fn for_host(smoke: bool) -> SweepConfig {
        SweepConfig {
            workers: cores::available_cores().clamp(2, 4),
            ops_per_worker: if smoke {
                SMOKE_OPS_PER_WORKER
            } else {
                PERF_OPS_PER_WORKER
            },
            keys: if smoke { SMOKE_KEYS } else { PERF_KEYS },
        }
    }
}

/// Which channel flavour a case runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// The paper-calibrated one-line channels, strict request/reply.
    OneLine,
    /// Bounded rings ([`RING_DEPTH`]) with pipelined reads
    /// ([`RING_WINDOW`] in flight per client).
    Ring,
}

impl TransportKind {
    /// Display name matching the JSON field.
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::OneLine => "oneline",
            TransportKind::Ring => "ring",
        }
    }

    fn transport(self) -> Transport {
        match self {
            TransportKind::OneLine => Transport::OneLine,
            TransportKind::Ring => Transport::Ring {
                depth: RING_DEPTH,
                window: RING_WINDOW,
            },
        }
    }
}

/// One case of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Case {
    /// Lock algorithm under every shard's stripes and global lock.
    pub lock: SrvLockKind,
    /// Shard count (server threads).
    pub shards: usize,
    /// Key distribution.
    pub dist: KeyDist,
    /// Operation mix.
    pub mix: Mix,
    /// Reads per multi-get batch (1 = unbatched).
    pub batch: usize,
    /// Store read protocol (locked baseline vs. optimistic fast path).
    pub read_path: ReadPath,
    /// Channel flavour carrying the traffic.
    pub transport: TransportKind,
}

/// One measured case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The case that ran.
    pub case: Case,
    /// Client workers that drove it.
    pub workers: usize,
    /// Issued key-ops by type (deterministic per seed).
    pub issued: OpCounts,
    /// Client-observed read hits.
    pub hits: u64,
    /// Client-observed read misses.
    pub misses: u64,
    /// CAS attempts that stored / lost.
    pub cas_ok: u64,
    /// CAS attempts that lost.
    pub cas_fail: u64,
    /// Maintenance passes the stores ran during the measure phase.
    pub maintenance_runs: u64,
    /// Wall time of the measure phase, milliseconds.
    pub wall_ms: f64,
    /// Key-operations per wall-second.
    pub ops_per_sec: f64,
    /// Fraction of reads that hit.
    pub hit_rate: f64,
}

/// The full sweep, two groups:
///
/// 1. The **baseline grid** (every read locked, one-line channels —
///    the paper-calibrated serving model): every lock × {1, 4} shards
///    × {uniform, zipf 0.99} × {YCSB-A, YCSB-B, YCSB-C}, plus one
///    batched multi-get case per lock (YCSB-C, zipfian, 4 shards,
///    batch 4) and one churn case per lock (CAS + delete traffic
///    through the maintenance path). These cases' deterministic fields
///    are stable across harness versions.
/// 2. The **fast-path grid**: the `read_path` × `transport` axes on
///    the read-dominated headline workload (unbatched YCSB-C, zipf
///    0.99, {1, 4} shards) for every lock — the three combinations
///    beyond the baseline — plus one churn case per lock on
///    `{optimistic, ring}`, which keeps write pressure (and the locked
///    read fallback) in the measured set.
pub fn sweep_cases() -> Vec<Case> {
    let baseline = |lock, shards, dist, mix, batch| Case {
        lock,
        shards,
        dist,
        mix,
        batch,
        read_path: ReadPath::Locked,
        transport: TransportKind::OneLine,
    };
    let mut cases = Vec::new();
    for lock in SrvLockKind::ALL {
        for shards in [1usize, 4] {
            for dist in [KeyDist::Uniform, KeyDist::Zipfian { theta: 0.99 }] {
                for mix in [Mix::YCSB_A, Mix::YCSB_B, Mix::YCSB_C] {
                    cases.push(baseline(lock, shards, dist, mix, 1));
                }
            }
        }
        cases.push(baseline(
            lock,
            4,
            KeyDist::Zipfian { theta: 0.99 },
            Mix::YCSB_C,
            4,
        ));
        cases.push(baseline(
            lock,
            2,
            KeyDist::Zipfian { theta: 0.99 },
            Mix::CHURN,
            1,
        ));
    }
    for lock in SrvLockKind::ALL {
        for shards in [1usize, 4] {
            for (read_path, transport) in [
                (ReadPath::Locked, TransportKind::Ring),
                (ReadPath::Optimistic, TransportKind::OneLine),
                (ReadPath::Optimistic, TransportKind::Ring),
            ] {
                cases.push(Case {
                    lock,
                    shards,
                    dist: KeyDist::Zipfian { theta: 0.99 },
                    mix: Mix::YCSB_C,
                    batch: 1,
                    read_path,
                    transport,
                });
            }
        }
        cases.push(Case {
            lock,
            shards: 2,
            dist: KeyDist::Zipfian { theta: 0.99 },
            mix: Mix::CHURN,
            batch: 1,
            read_path: ReadPath::Optimistic,
            transport: TransportKind::Ring,
        });
    }
    cases
}

/// The churn soak's shape, fixed per invocation.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Churn rounds; the backlog gauge is sampled at each boundary.
    pub rounds: usize,
    /// Key-operations per round.
    pub ops_per_round: u64,
    /// Keyspace size.
    pub keys: u64,
}

impl SoakConfig {
    /// The soak shape for a full or `--smoke` invocation.
    pub fn for_host(smoke: bool) -> SoakConfig {
        SoakConfig {
            rounds: if smoke {
                SMOKE_SOAK_ROUNDS
            } else {
                SOAK_ROUNDS
            },
            ops_per_round: if smoke {
                SMOKE_SOAK_OPS_PER_ROUND
            } else {
                SOAK_OPS_PER_ROUND
            },
            keys: SOAK_KEYS,
        }
    }
}

/// What the churn soak measured. Every field is deterministic per
/// seed: the op stream, the amortized maintenance cadence, and the
/// epoch advances are all functions of the (single-threaded) driver.
#[derive(Debug, Clone, Copy)]
pub struct ChurnSoakResult {
    /// Rounds run.
    pub rounds: usize,
    /// Key-operations per round.
    pub ops_per_round: u64,
    /// Keyspace size.
    pub keys: u64,
    /// Issued key-ops by type (preload sets included).
    pub issued: OpCounts,
    /// Highest retired-node backlog any round-boundary sample saw on
    /// the epoch store.
    pub reclaim_backlog_max: u64,
    /// The epoch store's backlog after the final round (no shutdown
    /// purge — this is what online reclamation left behind).
    pub reclaim_backlog_final: u64,
    /// Nodes the epoch store freed online (no `purge_retired` ran).
    pub nodes_reclaimed: u64,
    /// Global-epoch advances the amortized maintenance performed.
    pub epochs_advanced: u64,
    /// Final backlog of the [`ReclaimMode::Deferred`] twin driven with
    /// the identical op stream — the PR-5 graveyard semantics, where
    /// nothing is freed before a `&mut` quiescent point. Grows with
    /// the op count, unbounded.
    pub deferred_backlog_final: u64,
    /// The bound [`ChurnSoakResult::check`] holds the epoch store to.
    pub backlog_bound: u64,
}

impl ChurnSoakResult {
    /// The soak's pass criteria: the epoch store's backlog stayed
    /// bounded, reclamation actually ran online, and the deferred
    /// baseline — same ops, no epochs — retired past anything the
    /// epoch store ever held.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated criterion.
    pub fn check(&self) -> Result<(), String> {
        if self.reclaim_backlog_max >= self.backlog_bound {
            return Err(format!(
                "epoch-store backlog hit {} (bound {})",
                self.reclaim_backlog_max, self.backlog_bound
            ));
        }
        if self.nodes_reclaimed == 0 {
            return Err("no nodes were reclaimed online".to_string());
        }
        if self.deferred_backlog_final <= self.reclaim_backlog_max {
            return Err(format!(
                "deferred baseline retired only {} nodes, not past the epoch store's max backlog {}",
                self.deferred_backlog_final, self.reclaim_backlog_max
            ));
        }
        Ok(())
    }

    /// One human-readable summary line for the harness output.
    pub fn summary(&self) -> String {
        format!(
            "churn-soak: {} rounds x {} ops, backlog max {} / final {} (bound {}), \
             {} reclaimed over {} epochs; deferred baseline final backlog {}",
            self.rounds,
            self.ops_per_round,
            self.reclaim_backlog_max,
            self.reclaim_backlog_final,
            self.backlog_bound,
            self.nodes_reclaimed,
            self.epochs_advanced,
            self.deferred_backlog_final
        )
    }
}

/// One xorshift64 step (the workload engine's generator family; kept
/// local so the soak stream is pinned independently of it).
fn soak_step(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Drives the deterministic churn stream against one store and samples
/// the backlog gauge at every round boundary. Returns the issued op
/// counts, the max and final backlog samples, and the final snapshot.
fn drive_soak<R: RawLock + Default>(
    config: SoakConfig,
    reclaim: ReclaimMode,
) -> (OpCounts, u64, u64, ssync_kv::StatsSnapshot) {
    // Stripe and bucket counts match a sweep shard's shape at the soak
    // keyspace; reclamation is exercised purely through the store's own
    // amortized after-write maintenance — the soak never calls
    // `reclaim_pass` or `purge_retired`.
    let store: KvStore<R> = KvStore::with_reclaim(512, 16, ReadPath::Optimistic, reclaim);
    let mut issued = OpCounts::default();
    for key in 0..config.keys {
        store.set(&key.to_be_bytes(), vec![key as u8; 24]);
        issued.sets += 1;
    }
    let mut rng = SEED;
    let mut backlog_max = store.reclaim_backlog();
    for _ in 0..config.rounds {
        for _ in 0..config.ops_per_round {
            let r = soak_step(&mut rng);
            let key = (r % config.keys).to_be_bytes();
            // Write-heavy churn: sets replace, deletes unlink — both
            // retire a node when the key is live — and a read slice
            // keeps pinned traversals in the mix.
            match (r >> 32) % 10 {
                0..=4 => {
                    store.set(&key, vec![(r >> 8) as u8; 24]);
                    issued.sets += 1;
                }
                5..=7 => {
                    store.delete(&key);
                    issued.deletes += 1;
                }
                _ => {
                    store.get(&key);
                    issued.gets += 1;
                }
            }
        }
        backlog_max = backlog_max.max(store.reclaim_backlog());
    }
    let snap = store.stats_snapshot();
    (issued, backlog_max, store.reclaim_backlog(), snap)
}

/// Runs the churn soak: the same deterministic churn stream against an
/// epoch-reclaiming store and a [`ReclaimMode::Deferred`] twin (the
/// PR-5 graveyard baseline). The epoch store must hold its retired
/// backlog under [`SOAK_BACKLOG_BOUND`] at every sample while freeing
/// concurrently with traffic; the twin's final backlog shows what the
/// old scheme would have accumulated by the first quiescent point.
pub fn run_churn_soak(config: SoakConfig) -> ChurnSoakResult {
    let (issued, backlog_max, backlog_final, snap) =
        drive_soak::<TtasLock>(config, ReclaimMode::Epoch);
    let (_, _, deferred_final, _) = drive_soak::<TtasLock>(config, ReclaimMode::Deferred);
    ChurnSoakResult {
        rounds: config.rounds,
        ops_per_round: config.ops_per_round,
        keys: config.keys,
        issued,
        reclaim_backlog_max: backlog_max,
        reclaim_backlog_final: backlog_final,
        nodes_reclaimed: snap.nodes_reclaimed,
        epochs_advanced: snap.epochs_advanced,
        deferred_backlog_final: deferred_final,
        backlog_bound: SOAK_BACKLOG_BOUND,
    }
}

fn run_case_typed<R: RawLock + Default>(case: Case, config: SweepConfig) -> CaseResult {
    // Shards stay small so per-case setup doesn't dominate: enough
    // buckets to keep chains short at the sweep's keyspace sizes.
    let buckets_per_shard = (config.keys as usize / case.shards).clamp(64, 4096);
    let router: ShardRouter<R> =
        ShardRouter::with_read_path(case.shards, buckets_per_shard, 16, case.read_path);
    let spec = WorkloadSpec {
        keys: config.keys,
        dist: case.dist,
        mix: case.mix,
        vsize: ValueSize::Uniform { min: 16, max: 96 },
        batch: case.batch,
        seed: SEED,
    };
    let report = run_closed_loop_on(
        &router,
        &spec,
        config.workers,
        config.ops_per_worker,
        case.transport.transport(),
    );
    let wall_ms = report.wall.as_secs_f64() * 1000.0;
    CaseResult {
        case,
        workers: config.workers,
        issued: report.issued,
        hits: report.hits,
        misses: report.misses,
        cas_ok: report.cas_ok,
        cas_fail: report.cas_fail,
        maintenance_runs: report.store.maintenance_runs,
        wall_ms,
        ops_per_sec: report.issued.total() as f64 / (report.wall.as_secs_f64().max(1e-9)),
        hit_rate: report.hit_rate(),
    }
}

/// Runs one case, dispatching on the lock algorithm.
pub fn run_case(case: Case, config: SweepConfig) -> CaseResult {
    match case.lock {
        SrvLockKind::Ttas => run_case_typed::<TtasLock>(case, config),
        SrvLockKind::Ticket => run_case_typed::<TicketLock>(case, config),
        SrvLockKind::Mcs => run_case_typed::<McsLock>(case, config),
        SrvLockKind::Mutex => run_case_typed::<MutexLock>(case, config),
    }
}

/// Runs the full sweep.
pub fn run_sweep(config: SweepConfig) -> Vec<CaseResult> {
    sweep_cases()
        .into_iter()
        .map(|case| run_case(case, config))
        .collect()
}

/// Renders the sweep as a plain-text table.
pub fn render_table(results: &[CaseResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:>9} {:>7} {:>6} {:>11} {:>8} {:>9} {:>9} {:>9} {:>7} {:>7} {:>10}",
        "lock",
        "shards",
        "dist",
        "mix",
        "batch",
        "read_path",
        "trans",
        "ops",
        "wall ms",
        "ops/sec",
        "hit%",
        "casf",
        "maint"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:<8} {:>6} {:>9} {:>7} {:>6} {:>11} {:>8} {:>9} {:>9.1} {:>9.0} {:>6.1}% {:>7} {:>10}",
            r.case.lock.name(),
            r.case.shards,
            r.case.dist.label(),
            r.case.mix.name,
            r.case.batch,
            r.case.read_path.label(),
            r.case.transport.label(),
            r.issued.total(),
            r.wall_ms,
            r.ops_per_sec,
            r.hit_rate * 100.0,
            r.cas_fail,
            r.maintenance_runs
        );
    }
    out
}

/// Renders the sweep as the `BENCH_kv.json` document. Hand-rolled JSON
/// like `BENCH_sim.json`: the workspace is offline and serde is not
/// among the vendored shims.
pub fn render_json(results: &[CaseResult], config: SweepConfig, soak: &ChurnSoakResult) -> String {
    let mut doc = Doc::open(
        "ssync-kv-perf-v3",
        "ops are key-operations (a multi-get counts per key); wall times are host milliseconds on the build machine; issued counts and every churn_soak field are deterministic per seed, wall/ops_per_sec are not",
    );
    doc.member(
        &format!(
            "\"config\": {{\"workers\": {}, \"ops_per_worker\": {}, \"keys\": {}, \"seed\": {}, \"ring_depth\": {}, \"ring_window\": {}}}",
            config.workers, config.ops_per_worker, config.keys, SEED, RING_DEPTH, RING_WINDOW
        ),
        true,
    );
    let cases: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"lock\": \"{}\", \"shards\": {}, \"dist\": \"{}\", \"mix\": \"{}\", \"batch\": {}, \"read_path\": \"{}\", \"transport\": \"{}\", \"gets\": {}, \"sets\": {}, \"cas\": {}, \"deletes\": {}, \"hits\": {}, \"misses\": {}, \"cas_ok\": {}, \"cas_fail\": {}, \"maintenance_runs\": {}, \"hit_rate\": {:.4}, \"wall_ms\": {:.2}, \"ops_per_sec\": {:.0}}}",
                r.case.lock.name(),
                r.case.shards,
                r.case.dist.label(),
                r.case.mix.name,
                r.case.batch,
                r.case.read_path.label(),
                r.case.transport.label(),
                r.issued.gets,
                r.issued.sets,
                r.issued.cas,
                r.issued.deletes,
                r.hits,
                r.misses,
                r.cas_ok,
                r.cas_fail,
                r.maintenance_runs,
                r.hit_rate,
                r.wall_ms,
                r.ops_per_sec
            )
        })
        .collect();
    doc.array("cases", &cases, true);
    doc.member(
        &format!(
            "\"churn_soak\": {{\"rounds\": {}, \"ops_per_round\": {}, \"keys\": {}, \"sets\": {}, \"deletes\": {}, \"gets\": {}, \"reclaim_backlog_max\": {}, \"reclaim_backlog_final\": {}, \"nodes_reclaimed\": {}, \"epochs_advanced\": {}, \"deferred_backlog_final\": {}, \"backlog_bound\": {}}}",
            soak.rounds,
            soak.ops_per_round,
            soak.keys,
            soak.issued.sets,
            soak.issued.deletes,
            soak.issued.gets,
            soak.reclaim_backlog_max,
            soak.reclaim_backlog_final,
            soak.nodes_reclaimed,
            soak.epochs_advanced,
            soak.deferred_backlog_final,
            soak.backlog_bound
        ),
        false,
    );
    doc.finish()
}

/// Runs the sweep twice and reports the first case whose issued op
/// counts differ — the determinism gate CI runs in smoke mode. On
/// success returns the first run's results, so the caller can render
/// them without paying for a third sweep.
///
/// # Errors
///
/// A human-readable description of the first mismatching case.
pub fn check_determinism(config: SweepConfig) -> Result<Vec<CaseResult>, String> {
    let first = run_sweep(config);
    let second = run_sweep(config);
    for (a, b) in first.iter().zip(second.iter()) {
        if a.issued != b.issued {
            return Err(format!(
                "issued op counts differ for {:?}: {:?} vs {:?}",
                a.case, a.issued, b.issued
            ));
        }
    }
    Ok(first)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SweepConfig {
        SweepConfig {
            workers: 2,
            ops_per_worker: 120,
            keys: 128,
        }
    }

    #[test]
    fn sweep_covers_the_required_axes() {
        let cases = sweep_cases();
        let locks: std::collections::HashSet<_> = cases.iter().map(|c| c.lock.name()).collect();
        let shards: std::collections::HashSet<_> = cases.iter().map(|c| c.shards).collect();
        let dists: std::collections::HashSet<_> = cases.iter().map(|c| c.dist.label()).collect();
        let mixes: std::collections::HashSet<_> = cases.iter().map(|c| c.mix.name).collect();
        assert!(locks.len() >= 3, "need >= 3 lock algorithms: {locks:?}");
        assert!(shards.len() >= 2, "need >= 2 shard counts: {shards:?}");
        assert!(dists.len() >= 2, "need >= 2 skew settings: {dists:?}");
        assert!(mixes.len() >= 3);
        assert!(cases.iter().any(|c| c.batch > 1), "batched case missing");
        // The read_path × transport grid: all four combinations appear,
        // and the headline {optimistic, ring} YCSB-C contrast exists at
        // the same shape as a {locked, oneline} baseline case.
        let combos: std::collections::HashSet<_> = cases
            .iter()
            .map(|c| (c.read_path.label(), c.transport.label()))
            .collect();
        assert_eq!(combos.len(), 4, "need all 4 combos: {combos:?}");
        for (rp, tr) in [
            (ReadPath::Locked, TransportKind::OneLine),
            (ReadPath::Optimistic, TransportKind::Ring),
        ] {
            assert!(
                cases.iter().any(|c| c.read_path == rp
                    && c.transport == tr
                    && c.mix.name == "ycsb-c"
                    && c.batch == 1
                    && c.shards == 1
                    && c.dist == KeyDist::Zipfian { theta: 0.99 }),
                "headline shape missing for ({}, {})",
                rp.label(),
                tr.label()
            );
        }
        // Write pressure reaches the fast path too.
        assert!(cases
            .iter()
            .any(|c| c.read_path == ReadPath::Optimistic && c.mix.name == "churn"));
    }

    #[test]
    fn one_case_runs_and_renders() {
        let config = tiny_config();
        let case = Case {
            lock: SrvLockKind::Ticket,
            shards: 2,
            dist: KeyDist::Zipfian { theta: 0.99 },
            mix: Mix::YCSB_B,
            batch: 1,
            read_path: ReadPath::Locked,
            transport: TransportKind::OneLine,
        };
        let r = run_case(case, config);
        assert_eq!(r.issued.total(), 240);
        assert!(r.hit_rate > 0.99); // Preloaded keyspace, no deletes.
        let table = render_table(std::slice::from_ref(&r));
        assert!(table.contains("TICKET"));
        let soak = run_churn_soak(tiny_soak_config());
        let json = render_json(std::slice::from_ref(&r), config, &soak);
        assert!(json.contains("\"ssync-kv-perf-v3\""));
        assert!(json.contains("\"mix\": \"ycsb-b\""));
        assert!(json.contains("\"read_path\": \"locked\""));
        assert!(json.contains("\"transport\": \"oneline\""));
        assert!(json.contains("\"churn_soak\""));
        assert!(json.contains("\"reclaim_backlog_max\""));
    }

    fn tiny_soak_config() -> SoakConfig {
        SoakConfig {
            rounds: 8,
            ops_per_round: 256,
            keys: 64,
        }
    }

    #[test]
    fn churn_soak_bounds_backlog_and_the_deferred_baseline_does_not() {
        let soak = run_churn_soak(tiny_soak_config());
        soak.check().expect("soak criteria");
        // Online reclamation happened without any quiescent purge, the
        // backlog stayed bounded, and the graveyard twin — identical
        // op stream — accumulated every retired node instead.
        assert!(soak.nodes_reclaimed > 0);
        assert!(soak.epochs_advanced > 0);
        assert!(soak.reclaim_backlog_max < soak.backlog_bound);
        assert!(soak.deferred_backlog_final > soak.reclaim_backlog_max);
        assert!(!soak.summary().is_empty());
    }

    #[test]
    fn churn_soak_is_deterministic() {
        let a = run_churn_soak(tiny_soak_config());
        let b = run_churn_soak(tiny_soak_config());
        assert_eq!(a.issued, b.issued);
        assert_eq!(a.reclaim_backlog_max, b.reclaim_backlog_max);
        assert_eq!(a.reclaim_backlog_final, b.reclaim_backlog_final);
        assert_eq!(a.nodes_reclaimed, b.nodes_reclaimed);
        assert_eq!(a.epochs_advanced, b.epochs_advanced);
        assert_eq!(a.deferred_backlog_final, b.deferred_backlog_final);
    }

    #[test]
    fn issued_counts_are_deterministic() {
        let config = tiny_config();
        let case = Case {
            lock: SrvLockKind::Mcs,
            shards: 4,
            dist: KeyDist::Uniform,
            mix: Mix::CHURN,
            batch: 1,
            read_path: ReadPath::Locked,
            transport: TransportKind::OneLine,
        };
        let a = run_case(case, config);
        let b = run_case(case, config);
        assert_eq!(a.issued, b.issued);
        // Churn deletes make hits load-dependent in principle, but the
        // op *stream* is fixed; the deterministic claim is on issued.
        assert!(a.issued.deletes > 0);
        assert!(a.issued.cas > 0);
    }

    #[test]
    fn fast_path_cases_issue_the_same_stream_as_the_baseline() {
        // The new axes must not perturb the deterministic fields: the
        // same (lock, shards, dist, mix, batch) case issues identical
        // op counts on every read_path × transport combination, and on
        // a delete-free mix the hit counts match too.
        let config = tiny_config();
        let shape = |read_path, transport| Case {
            lock: SrvLockKind::Ticket,
            shards: 2,
            dist: KeyDist::Zipfian { theta: 0.99 },
            mix: Mix::YCSB_C,
            batch: 1,
            read_path,
            transport,
        };
        let baseline = run_case(shape(ReadPath::Locked, TransportKind::OneLine), config);
        for (rp, tr) in [
            (ReadPath::Locked, TransportKind::Ring),
            (ReadPath::Optimistic, TransportKind::OneLine),
            (ReadPath::Optimistic, TransportKind::Ring),
        ] {
            let r = run_case(shape(rp, tr), config);
            assert_eq!(
                r.issued,
                baseline.issued,
                "({}, {})",
                rp.label(),
                tr.label()
            );
            assert_eq!(
                (r.hits, r.misses),
                (baseline.hits, baseline.misses),
                "({}, {})",
                rp.label(),
                tr.label()
            );
        }
    }
}

//! Plain-text series formatting for the figure binaries.

use std::fmt::Write as _;

/// One plotted line: a label plus (x, y) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (lock name, operation name, ...).
    pub label: String,
    /// The figure's x axis (threads, clients, distance index).
    pub xs: Vec<f64>,
    /// The measured values.
    pub ys: Vec<f64>,
}

impl Series {
    /// Creates a series from points.
    pub fn new(label: impl Into<String>, points: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let (xs, ys) = points.into_iter().unzip();
        Self {
            label: label.into(),
            xs,
            ys,
        }
    }

    /// The y value at an x (exact match), if present.
    pub fn at(&self, x: f64) -> Option<f64> {
        self.xs.iter().position(|&v| v == x).map(|i| self.ys[i])
    }
}

/// Renders series as an aligned text table: one x column, one column per
/// series — the format every figure binary prints.
pub fn render_table(title: &str, x_name: &str, series: &[Series]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let mut xs: Vec<f64> = series.iter().flat_map(|s| s.xs.iter().copied()).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
    xs.dedup();
    let _ = write!(out, "{x_name:>10}");
    for s in series {
        let _ = write!(out, " {:>14}", s.label);
    }
    let _ = writeln!(out);
    for &x in &xs {
        let _ = write!(out, "{x:>10}");
        for s in series {
            match s.at(x) {
                Some(y) => {
                    let _ = write!(out, " {y:>14.2}");
                }
                None => {
                    let _ = write!(out, " {:>14}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_roundtrip() {
        let s = Series::new("TAS", [(1.0, 5.0), (2.0, 3.0)]);
        assert_eq!(s.at(1.0), Some(5.0));
        assert_eq!(s.at(3.0), None);
    }

    #[test]
    fn render_aligns_and_fills_gaps() {
        let a = Series::new("A", [(1.0, 2.0), (2.0, 4.0)]);
        let b = Series::new("B", [(1.0, 1.0)]);
        let t = render_table("demo", "threads", &[a, b]);
        assert!(t.contains("# demo"));
        assert!(t.contains("threads"));
        assert!(t.lines().count() >= 4);
        assert!(t.contains('-'));
    }
}

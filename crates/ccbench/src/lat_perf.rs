//! The tail-latency harness (`lat-perf`).
//!
//! Where `kv-perf` drives the serving stack closed-loop (each worker
//! waits for its reply, so offered load adapts to the server and queue
//! delay hides from the numbers), this suite drives it **open-loop**:
//! Poisson arrivals at a fixed offered rate, latency stamped from the
//! *intended* send time, so coordinated omission is structurally
//! impossible. Sweeping the offered rate traces the latency-vs-
//! throughput curve and its knee — the paper-style tail-latency story
//! the closed-loop harness cannot tell.
//!
//! Each point runs the headline serving shape (ticket locks,
//! optimistic reads, ring transport, zipfian YCSB-B) at one offered
//! rate and reports achieved throughput plus read/write latency
//! percentiles from the log-bucketed [`HistogramSnapshot`]. Issued op
//! counts are a pure function of the seed — the committed
//! `BENCH_lat.json`'s deterministic fields rely on that — while
//! percentiles are whatever the host gives.

use ssync_core::stats::{HistogramSnapshot, HIST_BUCKETS, HIST_MAX_REL_ERROR, HIST_SUB_BITS};
use ssync_kv::ReadPath;
use ssync_locks::TicketLock;
use ssync_srv::router::ShardRouter;
use ssync_srv::workload::{
    run_open_loop, KeyDist, Mix, OpenLoopReport, OpenLoopSpec, ValueSize, WorkloadSpec,
};

use crate::json::Doc;

/// Key-operations each pacing worker issues per point in a full run.
pub const PERF_OPS_PER_WORKER: u64 = 4_000;

/// Key-operations per worker per point in `--smoke` mode.
pub const SMOKE_OPS_PER_WORKER: u64 = 250;

/// Keyspace size of a full run.
pub const PERF_KEYS: u64 = 4_096;

/// Keyspace size in `--smoke` mode.
pub const SMOKE_KEYS: u64 = 512;

/// Client endpoints over the ring mesh in a full run — two pacing
/// threads fan out over hundreds of connections, deepening server-side
/// buffering the way hundreds of physical clients would.
pub const PERF_CONNECTIONS: usize = 256;

/// Client endpoints in `--smoke` mode.
pub const SMOKE_CONNECTIONS: usize = 16;

/// Master seed (op streams and arrival schedules derive from it).
pub const SEED: u64 = 0x7A11_CAFE;

/// Ring depth per connection.
pub const RING_DEPTH: usize = 64;

/// Timed reads in flight per connection and shard.
pub const RING_WINDOW: usize = 16;

/// Shards of the serving stack under the sweep.
pub const SHARDS: usize = 2;

/// Offered aggregate rates of a full sweep, key-ops/sec. Spans from
/// comfortably under the 1-core stack's capacity to well past it, so
/// the knee lands inside the curve.
pub const PERF_OFFERED: &[f64] = &[
    20_000.0, 50_000.0, 100_000.0, 200_000.0, 400_000.0, 800_000.0,
];

/// Offered rates in `--smoke` mode: one underloaded point for the
/// latency-ceiling gate, one overloaded point exercising lateness.
pub const SMOKE_OFFERED: &[f64] = &[5_000.0, 400_000.0];

/// Read-latency p99 ceiling the smoke gate enforces on the *lowest*
/// offered point, ns. Generous — an underloaded request/reply on a
/// noisy CI box is microseconds to low milliseconds — but a blocking
/// regression in the send path pushes p99 toward the run's wall time
/// and trips it by orders of magnitude.
pub const SMOKE_P99_CEILING_NS: u64 = 250_000_000;

/// The sweep's configuration, fixed per invocation.
#[derive(Debug, Clone, Copy)]
pub struct LatSweepConfig {
    /// Pacing worker threads.
    pub workers: usize,
    /// Client endpoints over the ring mesh (multiple of `workers`).
    pub connections: usize,
    /// Key-operations per worker per point.
    pub ops_per_worker: u64,
    /// Keyspace size.
    pub keys: u64,
    /// Offered aggregate rates to sweep, key-ops/sec.
    pub offered: &'static [f64],
}

impl LatSweepConfig {
    /// Scales the config to the host. Pacing workers stay at two even
    /// on big boxes: open-loop accuracy wants few, evenly scheduled
    /// arrival threads, and connection count — not thread count — is
    /// the client-scaling axis.
    pub fn for_host(smoke: bool) -> LatSweepConfig {
        LatSweepConfig {
            workers: 2,
            connections: if smoke {
                SMOKE_CONNECTIONS
            } else {
                PERF_CONNECTIONS
            },
            ops_per_worker: if smoke {
                SMOKE_OPS_PER_WORKER
            } else {
                PERF_OPS_PER_WORKER
            },
            keys: if smoke { SMOKE_KEYS } else { PERF_KEYS },
            offered: if smoke { SMOKE_OFFERED } else { PERF_OFFERED },
        }
    }
}

/// One measured point of the offered-load sweep.
#[derive(Debug, Clone)]
pub struct LatPoint {
    /// The offered aggregate rate this point targeted.
    pub offered_ops_per_sec: f64,
    /// What the open-loop engine measured at that rate.
    pub report: OpenLoopReport,
}

/// Runs one offered-load point on a fresh serving stack.
pub fn run_point(config: LatSweepConfig, offered_ops_per_sec: f64) -> LatPoint {
    let buckets_per_shard = (config.keys as usize / SHARDS).clamp(64, 4096);
    let router: ShardRouter<TicketLock> =
        ShardRouter::with_read_path(SHARDS, buckets_per_shard, 16, ReadPath::Optimistic);
    let spec = OpenLoopSpec {
        workload: WorkloadSpec {
            keys: config.keys,
            dist: KeyDist::Zipfian { theta: 0.99 },
            mix: Mix::YCSB_B,
            vsize: ValueSize::Uniform { min: 16, max: 96 },
            batch: 1,
            seed: SEED,
        },
        workers: config.workers,
        connections: config.connections,
        ops_per_worker: config.ops_per_worker,
        offered_ops_per_sec,
        depth: RING_DEPTH,
        window: RING_WINDOW,
    };
    LatPoint {
        offered_ops_per_sec,
        report: run_open_loop(&router, &spec),
    }
}

/// Runs the full offered-load sweep, low rate to high.
pub fn run_sweep(config: LatSweepConfig) -> Vec<LatPoint> {
    config
        .offered
        .iter()
        .map(|&rate| run_point(config, rate))
        .collect()
}

/// The first point whose achieved rate fell more than 10% short of
/// offered — the knee of the latency-vs-throughput curve. `None` when
/// the stack kept up everywhere.
pub fn knee(points: &[LatPoint]) -> Option<&LatPoint> {
    points
        .iter()
        .find(|p| p.report.achieved_ops_per_sec < 0.9 * p.offered_ops_per_sec)
}

/// The CI gate `--smoke` enforces: on the *lowest* offered point the
/// read path must be comfortably fast (p99 under
/// [`SMOKE_P99_CEILING_NS`]), and on *every* point each issued read
/// must appear in the latency histogram — the structural
/// no-coordinated-omission check.
///
/// # Errors
///
/// A human-readable description of the first violated ceiling.
pub fn smoke_gate(points: &[LatPoint]) -> Result<(), String> {
    for p in points {
        if p.report.read_lat.count() != p.report.issued.gets {
            return Err(format!(
                "offered {:.0}: {} reads issued but {} measured — reads escaped the histogram",
                p.offered_ops_per_sec,
                p.report.issued.gets,
                p.report.read_lat.count()
            ));
        }
    }
    let lowest = points
        .iter()
        .min_by(|a, b| a.offered_ops_per_sec.total_cmp(&b.offered_ops_per_sec))
        .ok_or_else(|| "no points ran".to_string())?;
    let p99 = lowest
        .report
        .read_lat
        .quantile(0.99)
        .ok_or_else(|| "lowest point recorded no reads".to_string())?;
    if p99 > SMOKE_P99_CEILING_NS {
        return Err(format!(
            "offered {:.0}: read p99 {} ns exceeds the {} ns ceiling",
            lowest.offered_ops_per_sec, p99, SMOKE_P99_CEILING_NS
        ));
    }
    Ok(())
}

fn fmt_q(h: &HistogramSnapshot, q: f64) -> String {
    match h.quantile(q) {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Renders the sweep as a plain-text table.
pub fn render_table(points: &[LatPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>8} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "offered/s",
        "achieved/s",
        "ops",
        "late%",
        "rd p50 us",
        "rd p99 us",
        "rd p999 us",
        "rd max us",
        "wr p99 us"
    );
    for p in points {
        let r = &p.report;
        let us = |v: Option<u64>| v.map_or(f64::NAN, |n| n as f64 / 1000.0);
        let _ = writeln!(
            out,
            "{:>10.0} {:>10.0} {:>8} {:>5.1}% {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            p.offered_ops_per_sec,
            r.achieved_ops_per_sec,
            r.issued.total(),
            r.late as f64 * 100.0 / r.issued.total().max(1) as f64,
            us(r.read_lat.quantile(0.5)),
            us(r.read_lat.quantile(0.99)),
            us(r.read_lat.quantile(0.999)),
            us(r.read_lat.max()),
            us(r.write_lat.quantile(0.99)),
        );
    }
    out
}

/// Renders the sweep as the `BENCH_lat.json` document. Deterministic
/// fields per point: the offered rate and the issued op counts (pure
/// functions of the seed). Measured fields: achieved rate, lateness,
/// wall time, and every percentile.
pub fn render_json(points: &[LatPoint], config: LatSweepConfig) -> String {
    let mut doc = Doc::open(
        "ssync-lat-perf-v1",
        "open-loop: latency from intended Poisson arrival to reply drain, ns, log-bucketed histogram midpoints; offered/issued are deterministic per seed, achieved/late/percentiles/wall are host-measured",
    );
    doc.member(
        &format!(
            "\"config\": {{\"workers\": {}, \"connections\": {}, \"ops_per_worker\": {}, \"keys\": {}, \"seed\": {}, \"shards\": {}, \"ring_depth\": {}, \"ring_window\": {}, \"mix\": \"ycsb-b\", \"dist\": \"zipf-0.99\"}}",
            config.workers,
            config.connections,
            config.ops_per_worker,
            config.keys,
            SEED,
            SHARDS,
            RING_DEPTH,
            RING_WINDOW
        ),
        true,
    );
    doc.member(
        &format!(
            "\"histogram\": {{\"sub_bits\": {HIST_SUB_BITS}, \"buckets\": {HIST_BUCKETS}, \"max_rel_error\": {HIST_MAX_REL_ERROR:.5}}}"
        ),
        true,
    );
    let items: Vec<String> = points
        .iter()
        .map(|p| {
            let r = &p.report;
            format!(
                "{{\"offered_ops_per_sec\": {:.0}, \"gets\": {}, \"sets\": {}, \"cas\": {}, \"deletes\": {}, \"achieved_ops_per_sec\": {:.0}, \"late\": {}, \"wall_ms\": {:.2}, \"hits\": {}, \"misses\": {}, \"read_p50_ns\": {}, \"read_p90_ns\": {}, \"read_p99_ns\": {}, \"read_p999_ns\": {}, \"read_max_ns\": {}, \"write_p50_ns\": {}, \"write_p99_ns\": {}, \"write_max_ns\": {}}}",
                p.offered_ops_per_sec,
                r.issued.gets,
                r.issued.sets,
                r.issued.cas,
                r.issued.deletes,
                r.achieved_ops_per_sec,
                r.late,
                r.wall.as_secs_f64() * 1000.0,
                r.hits,
                r.misses,
                fmt_q(&r.read_lat, 0.5),
                fmt_q(&r.read_lat, 0.9),
                fmt_q(&r.read_lat, 0.99),
                fmt_q(&r.read_lat, 0.999),
                fmt_q(&r.read_lat, 1.0),
                fmt_q(&r.write_lat, 0.5),
                fmt_q(&r.write_lat, 0.99),
                fmt_q(&r.write_lat, 1.0),
            )
        })
        .collect();
    doc.array("points", &items, false);
    doc.finish()
}

/// Runs the sweep twice and reports the first point whose issued op
/// counts differ — the determinism gate CI runs in smoke mode. On
/// success returns the first run's points.
///
/// # Errors
///
/// A human-readable description of the first mismatching point.
pub fn check_determinism(config: LatSweepConfig) -> Result<Vec<LatPoint>, String> {
    let first = run_sweep(config);
    let second = run_sweep(config);
    for (a, b) in first.iter().zip(second.iter()) {
        if a.report.issued != b.report.issued {
            return Err(format!(
                "issued op counts differ at offered {:.0}: {:?} vs {:?}",
                a.offered_ops_per_sec, a.report.issued, b.report.issued
            ));
        }
    }
    Ok(first)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> LatSweepConfig {
        LatSweepConfig {
            workers: 2,
            connections: 4,
            ops_per_worker: 150,
            keys: 128,
            offered: &[4_000.0, 1_000_000.0],
        }
    }

    #[test]
    fn sweep_runs_measures_and_renders() {
        let config = tiny_config();
        let points = run_sweep(config);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.report.issued.total(), 300);
            assert_eq!(p.report.read_lat.count(), p.report.issued.gets);
            assert_eq!(p.report.write_lat.count(), p.report.issued.sets);
        }
        // The impossible point saturates: nearly every arrival is late.
        assert!(points[1].report.late > points[1].report.issued.total() / 2);
        let table = render_table(&points);
        assert!(table.contains("offered/s"));
        let json = render_json(&points, config);
        assert!(json.contains("\"ssync-lat-perf-v1\""));
        assert!(json.contains("\"offered_ops_per_sec\": 4000"));
        assert!(json.contains("\"read_p99_ns\": "));
        assert!(json.contains(&format!("\"buckets\": {HIST_BUCKETS}")));
    }

    #[test]
    fn issued_counts_replay_across_sweeps() {
        let points = check_determinism(tiny_config()).expect("deterministic");
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].report.issued, points[1].report.issued);
    }

    #[test]
    fn smoke_gate_passes_sane_runs_and_rejects_slow_ones() {
        let config = tiny_config();
        let mut points = run_sweep(config);
        smoke_gate(&points).expect("a tiny local run is far under the ceiling");
        // A doctored lowest point with a multi-second p99 trips it.
        let slow = ssync_core::Histogram::new();
        for _ in 0..points[0].report.issued.gets {
            slow.record(3_000_000_000);
        }
        points[0].report.read_lat = slow.snapshot();
        let err = smoke_gate(&points).expect_err("ceiling must trip");
        assert!(err.contains("ceiling"), "unexpected error: {err}");
    }

    #[test]
    fn knee_finds_the_first_shortfall_point() {
        // Synthetic points: a tiny live run completes inside the ring
        // buffering, so its "achieved" rate says nothing about
        // saturation — the knee rule is tested on doctored reports.
        let mk = |offered: f64, achieved: f64| LatPoint {
            offered_ops_per_sec: offered,
            report: OpenLoopReport {
                achieved_ops_per_sec: achieved,
                ..Default::default()
            },
        };
        let points = vec![
            mk(10_000.0, 9_950.0),
            mk(20_000.0, 19_100.0),
            mk(40_000.0, 30_000.0),
            mk(80_000.0, 31_000.0),
        ];
        let k = knee(&points).expect("two points fall short");
        assert_eq!(k.offered_ops_per_sec, 40_000.0);
        assert!(knee(&points[..2]).is_none(), "within 10% is keeping up");
    }
}

//! Byte-level golden tests for the BENCH_* JSON renderers.
//!
//! The committed `BENCH_*.json` artifacts are diffed by humans and
//! parsed by scripts that rely on the exact line layout (one case per
//! line, stable key order). These tests pin the renderers to golden
//! files built from fixed synthetic inputs, so a refactor of the JSON
//! scaffolding (`ccbench::json`) that changes even one byte of layout
//! fails loudly here instead of silently churning the artifacts.
//!
//! To regenerate after an *intentional* format change:
//! `GOLDEN_WRITE=1 cargo test -p ssync-ccbench --test json_golden`

use std::time::Duration;

use ssync_ccbench::kv_perf::{self, Case, CaseResult, SrvLockKind, SweepConfig, TransportKind};
use ssync_ccbench::perf::{self, PerfResult};
use ssync_ccbench::repl_perf::{self, ReplCase, ReplCaseResult, ReplSweepConfig};
use ssync_cluster::{MigrationReport, ReshardReport};
use ssync_kv::ReadPath;
use ssync_repl::{ReplMode, ReplReport};
use ssync_srv::workload::{KeyDist, Mix, OpCounts};

/// Compares `actual` against the committed golden file, or rewrites it
/// when `GOLDEN_WRITE` is set.
fn check(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("GOLDEN_WRITE").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).expect("read golden (GOLDEN_WRITE=1 to create)");
    assert!(
        expected == actual,
        "{name} drifted from its golden copy.\n--- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

fn issued() -> OpCounts {
    OpCounts {
        gets: 760,
        sets: 40,
        cas: 0,
        deletes: 0,
    }
}

#[test]
fn kv_perf_json_layout_is_pinned() {
    let case = Case {
        lock: SrvLockKind::Ticket,
        shards: 4,
        dist: KeyDist::Zipfian { theta: 0.99 },
        mix: Mix::YCSB_B,
        batch: 1,
        read_path: ReadPath::Locked,
        transport: TransportKind::OneLine,
    };
    let results = vec![
        CaseResult {
            case,
            workers: 2,
            issued: issued(),
            hits: 760,
            misses: 0,
            cas_ok: 0,
            cas_fail: 0,
            maintenance_runs: 3,
            wall_ms: 12.34,
            ops_per_sec: 64829.0,
            hit_rate: 1.0,
        },
        CaseResult {
            case: Case {
                lock: SrvLockKind::Mcs,
                transport: TransportKind::Ring,
                ..case
            },
            workers: 2,
            issued: issued(),
            hits: 700,
            misses: 60,
            cas_ok: 0,
            cas_fail: 0,
            maintenance_runs: 0,
            wall_ms: 9.5,
            ops_per_sec: 84210.0,
            hit_rate: 0.9211,
        },
    ];
    let config = SweepConfig {
        workers: 2,
        ops_per_worker: 400,
        keys: 512,
    };
    let soak = kv_perf::ChurnSoakResult {
        rounds: 16,
        ops_per_round: 512,
        keys: 512,
        issued: OpCounts {
            gets: 1650,
            sets: 4600,
            cas: 0,
            deletes: 2454,
        },
        reclaim_backlog_max: 320,
        reclaim_backlog_final: 96,
        nodes_reclaimed: 5000,
        epochs_advanced: 128,
        deferred_backlog_final: 5096,
        backlog_bound: 2048,
    };
    check(
        "kv_perf.json",
        &kv_perf::render_json(&results, config, &soak),
    );
}

#[test]
fn sim_perf_json_layout_is_pinned() {
    let results = vec![
        PerfResult {
            workload: "lock-contended",
            platform: "Opteron",
            threads: 16,
            window: 2_000_000,
            wall_ms: 210.5,
            events: 1_200_000,
            ops: 40_000,
        },
        PerfResult {
            workload: "atomics-fai",
            platform: "Niagara",
            threads: 8,
            window: 1_000_000,
            wall_ms: 55.25,
            events: 300_000,
            ops: 25_000,
        },
    ];
    check("sim_perf.json", &perf::render_json(&results, 140.0, 14.0));
}

#[test]
fn repl_perf_json_layout_is_pinned() {
    let base_case = ReplCase {
        replicas: 2,
        mode: ReplMode::Async { max_lag: 512 },
        dist: KeyDist::Uniform,
        mix: Mix::YCSB_C,
        batch: 1,
        faulty: false,
        failover: false,
    };
    let report = ReplReport {
        issued: issued(),
        hits: 750,
        misses: 10,
        replica_serves: 500,
        fallbacks: 4,
        entries: 40,
        crashes: 0,
        stalls: 0,
        from_log: 0,
        converged: true,
        ..ReplReport::default()
    };
    let mut failover_report = ReplReport {
        failovers: 2,
        lost_to_retry: 3,
        redirects: 11,
        unavailability: vec![Duration::from_micros(1500), Duration::from_micros(2500)],
        ..report.clone()
    };
    failover_report.replica_store.repl_applied = 38;
    failover_report.replica_store.repl_stale_drops = 2;
    let results = vec![
        ReplCaseResult {
            case: base_case,
            workers: 2,
            issued: issued(),
            report,
            wall_ms: 31.7,
            ops_per_sec: 25236.0,
        },
        ReplCaseResult {
            case: ReplCase {
                failover: true,
                faulty: true,
                ..base_case
            },
            workers: 2,
            issued: issued(),
            report: failover_report,
            wall_ms: 44.2,
            ops_per_sec: 18099.0,
        },
    ];
    let config = ReplSweepConfig {
        workers: 2,
        ops_per_worker: 400,
        keys: 512,
    };
    let reshard = ReshardReport {
        issued: 800,
        ops: [760, 40, 0, 0],
        hits: 750,
        misses: 10,
        cas_fail: 0,
        client_redirects: 21,
        wrong_shard_redirects: 19,
        migration_ops_deferred: 5,
        migration: MigrationReport {
            entries_migrated: 256,
            copy_restarts: 1,
            coordinator_restarts: 1,
            attempts: 2,
            source_keys_retired: 250,
            final_epoch: 2,
        },
        migration_wall: Duration::from_millis(120),
        rate_before: 50_000.0,
        rate_during: 42_000.0,
        rate_after: 51_000.0,
        dip_pct: 16.0,
        purged: 1,
        converged: true,
        lost_acked_writes: 0,
    };
    check(
        "repl_perf.json",
        &repl_perf::render_json(&results, config, &reshard),
    );
}

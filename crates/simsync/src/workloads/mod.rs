//! Experiment workload programs: one module per family of figures.
//!
//! * [`atomics`] — the Section 5.4 atomic-operation stress (Figure 4).
//! * [`lock_stress`] — contended lock throughput/latency (Figures 3, 5,
//!   7, 8) and the uncontested-handoff latency pairs (Figure 6).
//! * [`mp_bench`] — message-passing one-to-one and client-server
//!   benchmarks (Figures 9 and 10).
//! * [`ssht`] — the concurrent hash table workload (Figure 11).
//! * [`kv`] — the Memcached-model key-value store workload (Figure 12).

pub mod atomics;
pub mod kv;
pub mod lock_stress;
pub mod mp_bench;
pub mod ssht;

use ssync_sim::program::{Action, Env, SubProgram};

/// Drives an optional sub-program slot: creates it with `make` when
/// empty, feeds it `res`, and returns its next action — or `None` once it
/// completes (clearing the slot).
pub(crate) fn drive_sub(
    slot: &mut Option<Box<dyn SubProgram>>,
    make: impl FnOnce() -> Box<dyn SubProgram>,
    res: &mut Option<u64>,
    env: &mut Env<'_>,
) -> Option<Action> {
    if slot.is_none() {
        *slot = Some(make());
    }
    match slot.as_mut().expect("just filled").substep(res.take(), env) {
        Some(a) => Some(a),
        None => {
            *slot = None;
            None
        }
    }
}

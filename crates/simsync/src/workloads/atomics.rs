//! The Section 5.4 atomic-operations stress test (Figure 4).
//!
//! Every thread repeatedly performs one kind of atomic operation on a
//! single shared line, then pauses long enough that it cannot complete
//! consecutive operations out of its own cache ("long runs"). FAI, SWAP
//! and CAS-FAI always eventually write; TAS and plain CAS mostly fail —
//! all of them still bounce the line, which is the point.

use ssync_sim::memory::LineId;
use ssync_sim::program::{Action, Env, Program};

/// Pause after each completed operation, preventing local op streaks.
/// The paper sizes the delay "proportional to the maximum latency across
/// the involved cores": a lone thread barely pauses, a cross-socket run
/// pauses for a full remote transfer.
pub fn stress_pause(topo: &ssync_core::Topology, cores: &[usize]) -> u64 {
    use ssync_core::topology::{DistClass, Platform};
    let mut worst: u64 = 20;
    for (i, &a) in cores.iter().enumerate() {
        for &b in &cores[i + 1..] {
            let est = match topo.distance(a, b) {
                DistClass::Zero => 20,
                DistClass::SameCore => 60,
                DistClass::SameDie => match topo.platform() {
                    Platform::Niagara => 60,
                    _ => 120,
                },
                DistClass::SameMcm => 200,
                DistClass::OneHop => 320,
                DistClass::TwoHops => 430,
                DistClass::MeshHops(h) => 80 + 2 * u64::from(h),
            };
            worst = worst.max(est);
        }
    }
    worst
}

/// The atomic operation under stress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicKind {
    /// Compare-and-swap (expected = last observed value; usually fails
    /// under contention).
    Cas,
    /// Test-and-set (always writes; "succeeds" only when it reads 0).
    Tas,
    /// Fetch-and-increment built from a CAS retry loop (counts one
    /// operation per *successful* increment).
    CasFai,
    /// Atomic swap.
    Swap,
    /// Hardware fetch-and-increment.
    Fai,
}

impl AtomicKind {
    /// All five operations, in Figure 4's legend order.
    pub const ALL: [AtomicKind; 5] = [
        AtomicKind::Cas,
        AtomicKind::Tas,
        AtomicKind::CasFai,
        AtomicKind::Swap,
        AtomicKind::Fai,
    ];

    /// Display name matching the figure legend.
    pub fn name(self) -> &'static str {
        match self {
            AtomicKind::Cas => "CAS",
            AtomicKind::Tas => "TAS",
            AtomicKind::CasFai => "CAS based FAI",
            AtomicKind::Swap => "SWAP",
            AtomicKind::Fai => "FAI",
        }
    }
}

/// One stress thread.
pub struct AtomicStress {
    line: LineId,
    kind: AtomicKind,
    pause: u64,
    st: u8,
    last_seen: u64,
}

impl AtomicStress {
    /// Creates a stress worker hammering `line`, pausing `pause` cycles
    /// after each completed operation (see [`stress_pause`]).
    pub fn new(line: LineId, kind: AtomicKind, pause: u64) -> Self {
        Self {
            line,
            kind,
            pause,
            st: 0,
            last_seen: 0,
        }
    }
}

impl Program for AtomicStress {
    fn step(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Action {
        match self.st {
            // Issue the operation.
            0 => {
                self.st = 1;
                match self.kind {
                    AtomicKind::Cas => {
                        Action::Cas(self.line, self.last_seen, self.last_seen.wrapping_add(1))
                    }
                    AtomicKind::Tas => Action::Tas(self.line),
                    AtomicKind::CasFai => {
                        Action::Cas(self.line, self.last_seen, self.last_seen.wrapping_add(1))
                    }
                    AtomicKind::Swap => Action::Swap(self.line, env.tid as u64 + 1),
                    AtomicKind::Fai => Action::Fai(self.line),
                }
            }
            // Operation completed: account and pause.
            1 => {
                let old = result.expect("atomic result");
                match self.kind {
                    AtomicKind::CasFai => {
                        if old == self.last_seen {
                            // Successful increment.
                            env.complete_op();
                            self.last_seen = old.wrapping_add(1);
                            self.st = 2;
                            return Action::Pause(self.pause);
                        }
                        // Failed CAS: retry immediately with the fresh value
                        // (this is what makes CAS-FAI slower than native FAI).
                        self.last_seen = old;
                        self.st = 0;
                        return Action::Pause(2);
                    }
                    AtomicKind::Cas => {
                        env.complete_op();
                        self.last_seen = old;
                    }
                    _ => {
                        env.complete_op();
                        self.last_seen = old;
                    }
                }
                self.st = 2;
                Action::Pause(self.pause)
            }
            // Pause finished: go again.
            2 => {
                self.st = 1;
                match self.kind {
                    AtomicKind::Cas | AtomicKind::CasFai => {
                        Action::Cas(self.line, self.last_seen, self.last_seen.wrapping_add(1))
                    }
                    AtomicKind::Tas => Action::Tas(self.line),
                    AtomicKind::Swap => Action::Swap(self.line, env.tid as u64 + 1),
                    AtomicKind::Fai => Action::Fai(self.line),
                }
            }
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_core::Platform;
    use ssync_sim::Sim;

    fn throughput(platform: Platform, kind: AtomicKind, threads: usize) -> f64 {
        let mut sim = Sim::new(platform, 5);
        let cores = sim.topology().placement(threads);
        let line = sim.alloc_line_for_core(cores[0]);
        let pause = stress_pause(sim.topology(), &cores);
        for &c in &cores {
            sim.spawn_on_core(c, Box::new(AtomicStress::new(line, kind, pause)));
        }
        let window = 300_000;
        sim.run_until(window);
        sim.topology().mops(sim.total_ops(), window)
    }

    #[test]
    fn single_thread_is_fast_on_multisockets() {
        let t1 = throughput(Platform::Xeon, AtomicKind::Fai, 1);
        let t2 = throughput(Platform::Xeon, AtomicKind::Fai, 2);
        // The paper's Figure 4: steep drop from 1 to 2 threads.
        assert!(t1 > 2.0 * t2, "t1={t1:.1} t2={t2:.1}");
    }

    #[test]
    fn crossing_sockets_hurts_opteron() {
        let within = throughput(Platform::Opteron, AtomicKind::Fai, 6);
        let across = throughput(Platform::Opteron, AtomicKind::Fai, 12);
        assert!(within > across, "within={within:.1} across={across:.1}");
    }

    #[test]
    fn single_sockets_sustain_throughput() {
        let few = throughput(Platform::Niagara, AtomicKind::Tas, 8);
        let many = throughput(Platform::Niagara, AtomicKind::Tas, 56);
        // No collapse: throughput at 56 threads within 2x of 8 threads.
        assert!(many > few / 2.0, "few={few:.1} many={many:.1}");
    }

    #[test]
    fn niagara_tas_beats_cas() {
        let tas = throughput(Platform::Niagara, AtomicKind::Tas, 32);
        let fai = throughput(Platform::Niagara, AtomicKind::CasFai, 32);
        assert!(tas > fai, "tas={tas:.1} cas_fai={fai:.1}");
    }

    #[test]
    fn tilera_fai_fastest() {
        let fai = throughput(Platform::Tilera, AtomicKind::Fai, 18);
        let cas = throughput(Platform::Tilera, AtomicKind::Cas, 18);
        assert!(fai > cas, "fai={fai:.1} cas={cas:.1}");
    }
}

//! Message-passing benchmarks: Figures 9 and 10.
//!
//! * [`PingSender`] / [`PingReceiver`] — one-to-one communication. The
//!   sender stamps each message with the send time, so the receiver's
//!   samples are one-way latencies; in round-trip mode the sender also
//!   samples the full echo time.
//! * [`MpClient`] / [`MpServer`] — client-server: one server polls all
//!   client request channels round-robin and (in round-trip mode)
//!   responds on per-client reply channels. Client ops count throughput.
//!
//! Both work over coherence-based [`SsmpChannel`]s on every platform and
//! over [`HwChannel`]s on the Tilera.

use ssync_sim::program::{Action, Env, Program, SubProgram};

use super::drive_sub;
use crate::mp::{HwChannel, SsmpChannel};

/// A channel endpoint usable by the benchmarks: either `libssmp` over
/// coherence or Tilera hardware messaging.
#[derive(Clone)]
pub enum Chan {
    /// Coherence-based cache-line channel.
    Ssmp(SsmpChannel),
    /// Hardware (iMesh) channel.
    Hw(HwChannel),
}

impl Chan {
    fn send(&self, payload: u64) -> Box<dyn SubProgram> {
        match self {
            Chan::Ssmp(c) => c.send(payload),
            Chan::Hw(c) => c.send(payload),
        }
    }

    /// Sends a message carrying the issue time (see
    /// [`SsmpChannel::send_stamped`]); hardware sends never wait, so the
    /// caller-provided `now` is accurate for them.
    fn send_stamped(&self, now: u64) -> Box<dyn SubProgram> {
        match self {
            Chan::Ssmp(c) => c.send_stamped(),
            Chan::Hw(c) => c.send(now + 1),
        }
    }

    fn recv(&self) -> Box<dyn SubProgram> {
        match self {
            Chan::Ssmp(c) => c.recv(),
            Chan::Hw(c) => c.recv(),
        }
    }

    fn last_received(&self) -> u64 {
        match self {
            Chan::Ssmp(c) => c.last_received(),
            Chan::Hw(c) => c.last_received(),
        }
    }
}

/// One-to-one sender: streams messages stamped with the send time; in
/// round-trip mode waits for each echo and samples the round trip.
pub struct PingSender {
    out: Chan,
    back: Option<Chan>,
    st: u8,
    sub: Option<Box<dyn SubProgram>>,
    t0: u64,
}

impl PingSender {
    /// `back = None` gives one-way streaming; `Some` gives round trips.
    pub fn new(out: Chan, back: Option<Chan>) -> Self {
        Self {
            out,
            back,
            st: 0,
            sub: None,
            t0: 0,
        }
    }
}

impl Program for PingSender {
    fn step(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Action {
        let mut res = result;
        loop {
            match self.st {
                // Send one message (timestamp payload; +1 avoids 0).
                0 => {
                    if self.sub.is_none() {
                        self.t0 = env.now;
                    }
                    let (out, now) = (&self.out, env.now);
                    match drive_sub(&mut self.sub, || out.send_stamped(now), &mut res, env) {
                        Some(a) => return a,
                        None => {
                            self.st = if self.back.is_some() { 1 } else { 2 };
                        }
                    }
                }
                // Round-trip: wait for the echo.
                1 => {
                    let back = self.back.as_ref().expect("round-trip mode");
                    match drive_sub(&mut self.sub, || back.recv(), &mut res, env) {
                        Some(a) => return a,
                        None => {
                            env.record_sample(env.now - self.t0);
                            env.complete_op();
                            self.st = 0;
                        }
                    }
                }
                // One-way: count and continue.
                2 => {
                    env.complete_op();
                    self.st = 0;
                }
                _ => unreachable!(),
            }
        }
    }
}

/// One-to-one receiver: drains messages, sampling one-way latency from
/// the embedded timestamps; echoes when given a reply channel.
pub struct PingReceiver {
    input: Chan,
    reply: Option<Chan>,
    st: u8,
    sub: Option<Box<dyn SubProgram>>,
}

impl PingReceiver {
    /// `reply = None` for one-way mode, `Some` to echo (round trips).
    pub fn new(input: Chan, reply: Option<Chan>) -> Self {
        Self {
            input,
            reply,
            st: 0,
            sub: None,
        }
    }
}

impl Program for PingReceiver {
    fn step(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Action {
        let mut res = result;
        loop {
            match self.st {
                0 => {
                    let input = &self.input;
                    match drive_sub(&mut self.sub, || input.recv(), &mut res, env) {
                        Some(a) => return a,
                        None => {
                            let stamp = self.input.last_received().saturating_sub(1);
                            env.record_sample(env.now.saturating_sub(stamp));
                            env.complete_op();
                            self.st = if self.reply.is_some() { 1 } else { 0 };
                        }
                    }
                }
                1 => {
                    let reply = self.reply.as_ref().expect("echo mode");
                    let now = env.now;
                    match drive_sub(&mut self.sub, || reply.send(now + 1), &mut res, env) {
                        Some(a) => return a,
                        None => self.st = 0,
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Client of the client-server benchmark.
pub struct MpClient {
    request: Chan,
    reply: Option<Chan>,
    st: u8,
    sub: Option<Box<dyn SubProgram>>,
}

impl MpClient {
    /// `reply = None` for one-way requests, `Some` for round trips.
    pub fn new(request: Chan, reply: Option<Chan>) -> Self {
        Self {
            request,
            reply,
            st: 0,
            sub: None,
        }
    }
}

impl Program for MpClient {
    fn step(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Action {
        let mut res = result;
        loop {
            match self.st {
                0 => {
                    let (request, tid) = (&self.request, env.tid as u64);
                    match drive_sub(&mut self.sub, || request.send(tid + 1), &mut res, env) {
                        Some(a) => return a,
                        None => {
                            self.st = if self.reply.is_some() { 1 } else { 2 };
                        }
                    }
                }
                1 => {
                    let reply = self.reply.as_ref().expect("round-trip mode");
                    match drive_sub(&mut self.sub, || reply.recv(), &mut res, env) {
                        Some(a) => return a,
                        None => {
                            env.complete_op();
                            self.st = 0;
                        }
                    }
                }
                2 => {
                    env.complete_op();
                    self.st = 0;
                }
                _ => unreachable!(),
            }
        }
    }
}

/// The single server: polls client request channels round-robin; in
/// round-trip mode answers on the matching reply channel.
pub struct MpServer {
    requests: Vec<SsmpChannel>,
    replies: Option<Vec<Chan>>,
    /// Hardware mode: receive from the engine inbox instead of polling
    /// (the Tilera's "receive from any"); replies indexed by client tid.
    hw_recv: Option<HwChannel>,
    next: usize,
    st: u8,
    sub: Option<Box<dyn SubProgram>>,
    current: usize,
}

impl MpServer {
    /// Coherence-mode server polling `requests[i]` and replying on
    /// `replies[i]` when given.
    pub fn polling(requests: Vec<SsmpChannel>, replies: Option<Vec<Chan>>) -> Self {
        Self {
            requests,
            replies,
            hw_recv: None,
            next: 0,
            st: 0,
            sub: None,
            current: 0,
        }
    }

    /// Hardware-mode server (Tilera): blocking receive-from-any; replies
    /// indexed by the sender tid carried in the payload.
    pub fn hardware(recv: HwChannel, replies: Option<Vec<Chan>>) -> Self {
        Self {
            requests: Vec::new(),
            replies,
            hw_recv: Some(recv),
            next: 0,
            st: 0,
            sub: None,
            current: 0,
        }
    }
}

impl Program for MpServer {
    fn step(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Action {
        let mut res = result;
        loop {
            match self.st {
                // Get the next request.
                0 => {
                    if let Some(hw) = &self.hw_recv {
                        match drive_sub(&mut self.sub, || hw.recv(), &mut res, env) {
                            Some(a) => return a,
                            None => {
                                self.current = (hw.last_received() as usize).saturating_sub(1);
                                env.complete_op();
                                self.st = 2;
                            }
                        }
                    } else {
                        let ch = self.requests[self.next].clone();
                        match drive_sub(&mut self.sub, || ch.try_recv(), &mut res, env) {
                            Some(a) => return a,
                            None => {
                                let got = self.requests[self.next].last_received();
                                self.current = self.next;
                                self.next = (self.next + 1) % self.requests.len();
                                if got != 0 {
                                    env.complete_op();
                                    self.st = 2;
                                } else {
                                    self.st = 1;
                                    return Action::Pause(2);
                                }
                            }
                        }
                    }
                }
                // Nothing on that channel: scan on.
                1 => {
                    self.st = 0;
                }
                // Respond if in round-trip mode.
                2 => match &self.replies {
                    Some(replies) => {
                        let reply = replies[self.current % replies.len()].clone();
                        let now = env.now;
                        match drive_sub(&mut self.sub, || reply.send(now + 1), &mut res, env) {
                            Some(a) => return a,
                            None => self.st = 0,
                        }
                    }
                    None => self.st = 0,
                },
                _ => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_core::Platform;
    use ssync_sim::Sim;

    fn one_way_latency(platform: Platform, receiver_core: usize) -> f64 {
        let mut sim = Sim::new(platform, 9);
        let ch = SsmpChannel::new(&mut sim, receiver_core);
        sim.spawn_on_core(0, Box::new(PingSender::new(Chan::Ssmp(ch.clone()), None)));
        let rx = sim.spawn_on_core(
            receiver_core,
            Box::new(PingReceiver::new(Chan::Ssmp(ch), None)),
        );
        sim.run_until(300_000);
        let s = sim.samples(rx);
        assert!(!s.is_empty());
        s.iter().sum::<u64>() as f64 / s.len() as f64
    }

    #[test]
    fn one_way_costs_about_two_transfers() {
        // Xeon same-socket: a cache-line transfer is ~100-120 cycles, so
        // one-way should land in the few-hundreds (paper: 214 same die).
        let lat = one_way_latency(Platform::Xeon, 5);
        assert!(lat > 80.0 && lat < 700.0, "lat={lat:.0}");
    }

    #[test]
    fn one_way_latency_grows_across_sockets() {
        let near = one_way_latency(Platform::Xeon, 5);
        let far = one_way_latency(Platform::Xeon, 35);
        assert!(far > 1.5 * near, "near={near:.0} far={far:.0}");
    }

    #[test]
    fn round_trip_roughly_doubles_one_way() {
        let mut sim = Sim::new(Platform::Opteron, 9);
        let req = SsmpChannel::new(&mut sim, 6);
        let rep = SsmpChannel::new(&mut sim, 0);
        let tx = sim.spawn_on_core(
            0,
            Box::new(PingSender::new(
                Chan::Ssmp(req.clone()),
                Some(Chan::Ssmp(rep.clone())),
            )),
        );
        sim.spawn_on_core(
            6,
            Box::new(PingReceiver::new(Chan::Ssmp(req), Some(Chan::Ssmp(rep)))),
        );
        sim.run_until(400_000);
        let rt = sim.samples(tx).iter().sum::<u64>() as f64 / sim.samples(tx).len() as f64;
        let ow = one_way_latency(Platform::Opteron, 6);
        assert!(rt > 1.4 * ow && rt < 5.0 * ow, "rt={rt:.0} ow={ow:.0}");
    }

    #[test]
    fn client_server_round_trip_works() {
        let mut sim = Sim::new(Platform::Niagara, 9);
        let n_clients = 4;
        let server_core = 0;
        let mut requests = Vec::new();
        let mut replies = Vec::new();
        for i in 0..n_clients {
            requests.push(SsmpChannel::new(&mut sim, server_core));
            replies.push(Chan::Ssmp(SsmpChannel::new(&mut sim, 8 * (i + 1))));
        }
        sim.spawn_on_core(
            server_core,
            Box::new(MpServer::polling(requests.clone(), Some(replies.clone()))),
        );
        // The polling server replies on replies[i] for requests[i], so
        // client i listens on its own index.
        for i in 0..n_clients {
            sim.spawn_on_core(
                8 * (i + 1),
                Box::new(MpClient::new(
                    Chan::Ssmp(requests[i].clone()),
                    Some(replies[i].clone()),
                )),
            );
        }
        sim.run_until(500_000);
        assert!(sim.total_ops() > 10, "ops={}", sim.total_ops());
    }

    #[test]
    fn tilera_hardware_beats_ssmp() {
        // One-way ssmp on Tilera.
        let ssmp = one_way_latency(Platform::Tilera, 7);
        // One-way hardware.
        let mut sim = Sim::new(Platform::Tilera, 9);
        let hw = HwChannel::new(1);
        sim.spawn_on_core(0, Box::new(PingSender::new(Chan::Hw(hw.clone()), None)));
        let rx = sim.spawn_on_core(7, Box::new(PingReceiver::new(Chan::Hw(hw), None)));
        sim.run_until(200_000);
        let s = sim.samples(rx);
        let hw_lat = s.iter().sum::<u64>() as f64 / s.len() as f64;
        assert!(hw_lat < ssmp, "hw={hw_lat:.0} ssmp={ssmp:.0}");
    }
}

//! The Memcached-model key-value store workload (Figure 12).
//!
//! The paper replaces Memcached 1.4.15's pthread mutexes with `libslock`
//! and drives it with `memslap` over the network; throughput is bounded
//! by networking and the OS, yet the *set* test is still lock-sensitive
//! because writes periodically take global locks (hash-table maintenance
//! and the cache/slab bookkeeping), while the *get* test is not.
//!
//! Substitution (see DESIGN.md): the network stack and `memslap` clients
//! become a fixed per-request local cost; the hash table keeps
//! Memcached's structure — many fine-grained bucket locks plus a global
//! lock taken on a fraction of write requests (item LRU/slab
//! maintenance). This preserves what Figure 12 measures: how the lock
//! algorithm changes saturation and the multi-socket penalty.

use std::rc::Rc;

use rand::Rng;

use ssync_sim::memory::LineId;
use ssync_sim::program::{Action, Env, Program, SubProgram};

use super::drive_sub;
use crate::locks::SimLock;

/// Per-request "network + parse + syscall" cost (cycles). Dominates the
/// critical path, as in the real deployment where throughput tops out at
/// a few hundred Kops/s.
pub const REQUEST_OVERHEAD: u64 = 9_000;

/// Fraction (percent) of *set* requests that take the global lock.
pub const GLOBAL_LOCK_PCT: u32 = 25;

/// Cycles of work while holding the global lock (LRU/slab maintenance).
pub const GLOBAL_WORK: u64 = 2_000;

/// The request mix of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvMix {
    /// get-only: no global locks, reads under bucket locks.
    GetOnly,
    /// set-only: writes under bucket locks + periodic global lock.
    SetOnly,
}

/// One simulated Memcached worker thread.
pub struct KvWorker {
    bucket_locks: Vec<Rc<dyn SimLock>>,
    bucket_data: Vec<LineId>,
    global_lock: Rc<dyn SimLock>,
    mix: KvMix,
    tid: usize,
    st: u8,
    sub: Option<Box<dyn SubProgram>>,
    bucket: usize,
    needs_global: bool,
}

impl KvWorker {
    /// Creates a worker over the shared store structures.
    pub fn new(
        bucket_locks: Vec<Rc<dyn SimLock>>,
        bucket_data: Vec<LineId>,
        global_lock: Rc<dyn SimLock>,
        mix: KvMix,
        tid: usize,
    ) -> Self {
        assert_eq!(bucket_locks.len(), bucket_data.len());
        Self {
            bucket_locks,
            bucket_data,
            global_lock,
            mix,
            tid,
            st: 0,
            sub: None,
            bucket: 0,
            needs_global: false,
        }
    }
}

impl Program for KvWorker {
    fn step(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Action {
        let mut res = result;
        loop {
            match self.st {
                // Receive + parse the request.
                0 => {
                    self.bucket = env.rng.gen_range(0..self.bucket_locks.len());
                    self.needs_global = self.mix == KvMix::SetOnly
                        && env.rng.gen_range(0..100u32) < GLOBAL_LOCK_PCT;
                    self.st = 1;
                    return Action::Pause(REQUEST_OVERHEAD);
                }
                // Bucket lock.
                1 => {
                    let (locks, b, tid) = (&self.bucket_locks, self.bucket, self.tid);
                    match drive_sub(&mut self.sub, || locks[b].acquire(tid), &mut res, env) {
                        Some(a) => return a,
                        None => {
                            self.st = 2;
                            return Action::Load(self.bucket_data[self.bucket]);
                        }
                    }
                }
                // The item access.
                2 => {
                    let v = res.take().expect("item load");
                    match self.mix {
                        KvMix::GetOnly => {
                            self.st = 3;
                        }
                        KvMix::SetOnly => {
                            self.st = 3;
                            return Action::Store(self.bucket_data[self.bucket], v.wrapping_add(1));
                        }
                    }
                }
                // Release the bucket lock.
                3 => {
                    let (locks, b, tid) = (&self.bucket_locks, self.bucket, self.tid);
                    match drive_sub(&mut self.sub, || locks[b].release(tid), &mut res, env) {
                        Some(a) => return a,
                        None => {
                            self.st = if self.needs_global { 4 } else { 7 };
                        }
                    }
                }
                // Global maintenance lock.
                4 => {
                    let (global, tid) = (&self.global_lock, self.tid);
                    match drive_sub(&mut self.sub, || global.acquire(tid), &mut res, env) {
                        Some(a) => return a,
                        None => {
                            self.st = 5;
                            return Action::Pause(GLOBAL_WORK);
                        }
                    }
                }
                5 => {
                    self.st = 6;
                }
                6 => {
                    let (global, tid) = (&self.global_lock, self.tid);
                    match drive_sub(&mut self.sub, || global.release(tid), &mut res, env) {
                        Some(a) => return a,
                        None => self.st = 7,
                    }
                }
                // Request complete.
                7 => {
                    env.complete_op();
                    self.st = 0;
                }
                _ => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::{make_lock, LockConfig, SimLockKind};
    use ssync_core::Platform;
    use ssync_sim::Sim;

    /// Kops/s for a given platform / lock / thread count / mix.
    pub fn kv_kops(platform: Platform, kind: SimLockKind, threads: usize, mix: KvMix) -> f64 {
        let mut sim = Sim::new(platform, 17);
        let cfg = LockConfig::for_placement(&sim, threads);
        let n_buckets = 256;
        let bucket_locks: Vec<_> = (0..n_buckets)
            .map(|_| make_lock(kind, &mut sim, &cfg))
            .collect();
        let bucket_data: Vec<_> = (0..n_buckets)
            .map(|i| sim.alloc_line_for_core(cfg.thread_cores[i % threads]))
            .collect();
        let global = make_lock(kind, &mut sim, &cfg);
        for tid in 0..threads {
            sim.spawn_on_core(
                cfg.thread_cores[tid],
                Box::new(KvWorker::new(
                    bucket_locks.clone(),
                    bucket_data.clone(),
                    Rc::clone(&global),
                    mix,
                    tid,
                )),
            );
        }
        let window = 3_000_000;
        sim.run_until(window);
        // Kops/s = ops / seconds / 1000.
        sim.topology().mops(sim.total_ops(), window) * 1000.0
    }

    #[test]
    fn set_scales_then_saturates() {
        let t1 = kv_kops(Platform::Xeon, SimLockKind::Ticket, 1, KvMix::SetOnly);
        let t10 = kv_kops(Platform::Xeon, SimLockKind::Ticket, 10, KvMix::SetOnly);
        assert!(t10 > 3.0 * t1, "t1={t1:.0} t10={t10:.0}");
    }

    #[test]
    fn get_mix_is_lock_insensitive() {
        let mutex = kv_kops(Platform::Opteron, SimLockKind::Mutex, 8, KvMix::GetOnly);
        let ticket = kv_kops(Platform::Opteron, SimLockKind::Ticket, 8, KvMix::GetOnly);
        let ratio = ticket / mutex;
        assert!((0.8..1.25).contains(&ratio), "ratio={ratio:.2}");
    }

    #[test]
    fn set_mix_is_lock_sensitive_at_scale() {
        let mutex = kv_kops(Platform::Xeon, SimLockKind::Mutex, 18, KvMix::SetOnly);
        let ticket = kv_kops(Platform::Xeon, SimLockKind::Ticket, 18, KvMix::SetOnly);
        // The paper reports 29-50% speedups from replacing MUTEX.
        assert!(ticket > 1.05 * mutex, "ticket={ticket:.0} mutex={mutex:.0}");
    }
}

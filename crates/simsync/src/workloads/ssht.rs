//! The `ssht` concurrent hash table workload (Figure 11).
//!
//! The table is `buckets` buckets, each protected by one lock and laid
//! out cache-efficiently: entry metadata (key + pointer) packs four
//! entries per line, payloads are one 64-byte line each. An operation
//! hashes a random key (local compute), locks the bucket, walks the
//! metadata lines to a random position, touches the payload (get reads
//! it; put/remove write metadata, put also writes the payload), and
//! unlocks. The mix is the paper's 80% get / 10% put / 10% remove.
//!
//! The message-passing variant partitions buckets across server threads:
//! clients send the bucket id and wait for the reply (all operations
//! block, as in the paper); servers do the same traversal on their own
//! locally-cached lines — no locks at all.

use std::rc::Rc;

use rand::Rng;

use ssync_sim::memory::LineId;
use ssync_sim::program::{Action, Env, Program, SubProgram};
use ssync_sim::Sim;

use super::drive_sub;
use crate::locks::SimLock;
use crate::mp::SsmpChannel;

/// Entries whose metadata shares one cache line.
const ENTRIES_PER_META_LINE: usize = 4;

/// Cycles to hash a key and set up the operation.
const HASH_COST: u64 = 40;

/// Shape of the table and the operation mix.
#[derive(Debug, Clone, Copy)]
pub struct SshtConfig {
    /// Number of buckets (12 = high contention, 512 = low; Figure 11).
    pub buckets: usize,
    /// Entries per bucket (12 = short critical sections, 48 = long).
    pub entries: usize,
    /// Percent of get operations (put and remove split the rest evenly).
    pub get_pct: u32,
}

impl SshtConfig {
    /// The paper's four Figure 11 configurations.
    pub const FIGURE11: [SshtConfig; 4] = [
        SshtConfig {
            buckets: 12,
            entries: 12,
            get_pct: 80,
        },
        SshtConfig {
            buckets: 12,
            entries: 48,
            get_pct: 80,
        },
        SshtConfig {
            buckets: 512,
            entries: 12,
            get_pct: 80,
        },
        SshtConfig {
            buckets: 512,
            entries: 48,
            get_pct: 80,
        },
    ];

    fn meta_lines(&self) -> usize {
        self.entries.div_ceil(ENTRIES_PER_META_LINE)
    }
}

/// The shared simulated table: per-bucket lock + lines.
pub struct SshtTable {
    config: SshtConfig,
    locks: Vec<Rc<dyn SimLock>>,
    /// `meta[b]` are bucket b's metadata lines.
    meta: Vec<Vec<LineId>>,
    /// `payload[b]` are bucket b's payload lines (one per entry).
    payload: Vec<Vec<LineId>>,
}

impl SshtTable {
    /// Builds the table, spreading bucket storage across the memory
    /// nodes of the participating cores (`ssht` places data to allow
    /// prefetching and avoid false sharing).
    pub fn new(
        sim: &mut Sim,
        config: SshtConfig,
        locks: Vec<Rc<dyn SimLock>>,
        cores: &[usize],
    ) -> Self {
        assert_eq!(locks.len(), config.buckets);
        let mut meta = Vec::with_capacity(config.buckets);
        let mut payload = Vec::with_capacity(config.buckets);
        for b in 0..config.buckets {
            let home_core = cores[b % cores.len()];
            meta.push(
                (0..config.meta_lines())
                    .map(|_| sim.alloc_line_for_core(home_core))
                    .collect(),
            );
            payload.push(
                (0..config.entries)
                    .map(|_| sim.alloc_line_for_core(home_core))
                    .collect(),
            );
        }
        Self {
            config,
            locks,
            meta,
            payload,
        }
    }

    /// The table shape.
    pub fn config(&self) -> SshtConfig {
        self.config
    }
}

/// The three hash-table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HtOp {
    Get,
    Put,
    Remove,
}

fn pick_op(cfg: &SshtConfig, env: &mut Env<'_>) -> HtOp {
    let r = env.rng.gen_range(0..100u32);
    if r < cfg.get_pct {
        HtOp::Get
    } else if r < cfg.get_pct + (100 - cfg.get_pct) / 2 {
        HtOp::Put
    } else {
        HtOp::Remove
    }
}

/// Lock-based worker.
pub struct SshtWorker {
    table: Rc<SshtTable>,
    tid: usize,
    st: u8,
    sub: Option<Box<dyn SubProgram>>,
    bucket: usize,
    op: HtOp,
    /// Metadata lines left to walk, then payload/stores.
    walk: Vec<LineId>,
    write_queue: Vec<(LineId, u64)>,
}

impl SshtWorker {
    /// Creates a worker over the shared table.
    pub fn new(table: Rc<SshtTable>, tid: usize) -> Self {
        Self {
            table,
            tid,
            st: 0,
            sub: None,
            bucket: 0,
            op: HtOp::Get,
            walk: Vec::new(),
            write_queue: Vec::new(),
        }
    }

    fn plan_operation(&mut self, env: &mut Env<'_>) {
        let cfg = self.table.config;
        self.bucket = env.rng.gen_range(0..cfg.buckets);
        self.op = pick_op(&cfg, env);
        // Walk a random prefix of the metadata lines (expected position
        // of the key), most-recent last so `pop` walks in order.
        let depth = env.rng.gen_range(1..=cfg.meta_lines());
        self.walk = self.table.meta[self.bucket][..depth]
            .iter()
            .rev()
            .copied()
            .collect();
        let entry = env.rng.gen_range(0..cfg.entries);
        let payload = self.table.payload[self.bucket][entry];
        self.write_queue.clear();
        match self.op {
            HtOp::Get => {
                // Read the payload line after the walk.
                self.walk.insert(0, payload);
            }
            HtOp::Put => {
                self.write_queue.push((payload, env.rng.gen()));
                self.write_queue
                    .push((self.table.meta[self.bucket][depth - 1], env.rng.gen()));
            }
            HtOp::Remove => {
                self.write_queue
                    .push((self.table.meta[self.bucket][depth - 1], env.rng.gen()));
            }
        }
    }
}

impl Program for SshtWorker {
    fn step(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Action {
        let mut res = result;
        loop {
            match self.st {
                // Hash + plan.
                0 => {
                    self.plan_operation(env);
                    self.st = 1;
                    return Action::Pause(HASH_COST);
                }
                // Acquire the bucket lock.
                1 => {
                    let (table, bucket, tid) = (&self.table, self.bucket, self.tid);
                    match drive_sub(
                        &mut self.sub,
                        || table.locks[bucket].acquire(tid),
                        &mut res,
                        env,
                    ) {
                        Some(a) => return a,
                        None => self.st = 2,
                    }
                }
                // Walk the bucket (loads).
                2 => match self.walk.pop() {
                    Some(line) => return Action::Load(line),
                    None => self.st = 3,
                },
                // Apply writes (put/remove).
                3 => match self.write_queue.pop() {
                    Some((line, v)) => return Action::Store(line, v),
                    None => self.st = 4,
                },
                // Release.
                4 => {
                    let (table, bucket, tid) = (&self.table, self.bucket, self.tid);
                    match drive_sub(
                        &mut self.sub,
                        || table.locks[bucket].release(tid),
                        &mut res,
                        env,
                    ) {
                        Some(a) => return a,
                        None => {
                            env.complete_op();
                            self.st = 0;
                        }
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Message-passing client: sends the bucket id, waits for the answer.
pub struct SshtMpClient {
    request: SsmpChannel,
    reply: SsmpChannel,
    buckets: usize,
    st: u8,
    sub: Option<Box<dyn SubProgram>>,
}

impl SshtMpClient {
    /// Creates a client with its two channels to/from its server.
    pub fn new(request: SsmpChannel, reply: SsmpChannel, buckets: usize) -> Self {
        Self {
            request,
            reply,
            buckets,
            st: 0,
            sub: None,
        }
    }
}

impl Program for SshtMpClient {
    fn step(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Action {
        let mut res = result;
        loop {
            match self.st {
                0 => {
                    self.st = 1;
                    return Action::Pause(HASH_COST);
                }
                1 => {
                    let bucket = env.rng.gen_range(0..self.buckets) as u64;
                    let request = self.request.clone();
                    match drive_sub(&mut self.sub, || request.send(bucket + 1), &mut res, env) {
                        Some(a) => return a,
                        None => self.st = 2,
                    }
                }
                2 => {
                    let reply = self.reply.clone();
                    match drive_sub(&mut self.sub, || reply.recv(), &mut res, env) {
                        Some(a) => return a,
                        None => {
                            env.complete_op();
                            self.st = 0;
                        }
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Message-passing server: owns a bucket partition; serves traversals
/// from its own cache and replies.
pub struct SshtMpServer {
    table: Rc<SshtTable>,
    /// (request, reply) channel per client of this server.
    channels: Vec<(SsmpChannel, SsmpChannel)>,
    next: usize,
    st: u8,
    sub: Option<Box<dyn SubProgram>>,
    current: usize,
    walk: Vec<LineId>,
    write_queue: Vec<(LineId, u64)>,
}

impl SshtMpServer {
    /// Creates a server polling the given client channel pairs.
    pub fn new(table: Rc<SshtTable>, channels: Vec<(SsmpChannel, SsmpChannel)>) -> Self {
        Self {
            table,
            channels,
            next: 0,
            st: 0,
            sub: None,
            current: 0,
            walk: Vec::new(),
            write_queue: Vec::new(),
        }
    }
}

impl Program for SshtMpServer {
    fn step(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Action {
        let mut res = result;
        loop {
            match self.st {
                // Poll the next client.
                0 => {
                    let ch = self.channels[self.next].0.clone();
                    match drive_sub(&mut self.sub, || ch.try_recv(), &mut res, env) {
                        Some(a) => return a,
                        None => {
                            let got = self.channels[self.next].0.last_received();
                            self.current = self.next;
                            self.next = (self.next + 1) % self.channels.len();
                            if got == 0 {
                                self.st = 1;
                                return Action::Pause(2);
                            }
                            // Plan the traversal for the requested bucket.
                            let cfg = self.table.config;
                            let bucket = (got as usize - 1) % cfg.buckets;
                            let depth = env.rng.gen_range(1..=cfg.meta_lines());
                            self.walk = self.table.meta[bucket][..depth]
                                .iter()
                                .rev()
                                .copied()
                                .collect();
                            let op = pick_op(&cfg, env);
                            let entry = env.rng.gen_range(0..cfg.entries);
                            let payload = self.table.payload[bucket][entry];
                            self.write_queue.clear();
                            match op {
                                HtOp::Get => self.walk.insert(0, payload),
                                HtOp::Put => {
                                    self.write_queue.push((payload, env.rng.gen()));
                                    self.write_queue
                                        .push((self.table.meta[bucket][depth - 1], env.rng.gen()));
                                }
                                HtOp::Remove => {
                                    self.write_queue
                                        .push((self.table.meta[bucket][depth - 1], env.rng.gen()));
                                }
                            }
                            self.st = 2;
                        }
                    }
                }
                1 => {
                    self.st = 0;
                }
                // Traverse.
                2 => match self.walk.pop() {
                    Some(line) => return Action::Load(line),
                    None => self.st = 3,
                },
                3 => match self.write_queue.pop() {
                    Some((line, v)) => return Action::Store(line, v),
                    None => self.st = 4,
                },
                // Reply.
                4 => {
                    let reply = self.channels[self.current].1.clone();
                    match drive_sub(&mut self.sub, || reply.send(1), &mut res, env) {
                        Some(a) => return a,
                        None => self.st = 0,
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::{make_lock, LockConfig, SimLockKind};
    use ssync_core::Platform;

    /// Lock-based throughput helper (shared with ccbench via re-export).
    pub fn lock_based_mops(
        platform: Platform,
        kind: SimLockKind,
        threads: usize,
        config: SshtConfig,
    ) -> f64 {
        let mut sim = Sim::new(platform, 21);
        let cfg = LockConfig::for_placement(&sim, threads);
        let locks: Vec<_> = (0..config.buckets)
            .map(|_| make_lock(kind, &mut sim, &cfg))
            .collect();
        let table = Rc::new(SshtTable::new(&mut sim, config, locks, &cfg.thread_cores));
        for tid in 0..threads {
            sim.spawn_on_core(
                cfg.thread_cores[tid],
                Box::new(SshtWorker::new(Rc::clone(&table), tid)),
            );
        }
        let window = 500_000;
        sim.run_until(window);
        sim.topology().mops(sim.total_ops(), window)
    }

    #[test]
    fn low_contention_scales() {
        let cfg = SshtConfig {
            buckets: 512,
            entries: 12,
            get_pct: 80,
        };
        let t1 = lock_based_mops(Platform::Niagara, SimLockKind::Ticket, 1, cfg);
        let t32 = lock_based_mops(Platform::Niagara, SimLockKind::Ticket, 32, cfg);
        assert!(t32 > 5.0 * t1, "t1={t1:.2} t32={t32:.2}");
    }

    #[test]
    fn high_contention_limits_multisocket_scaling() {
        let cfg = SshtConfig {
            buckets: 12,
            entries: 12,
            get_pct: 80,
        };
        let t1 = lock_based_mops(Platform::Xeon, SimLockKind::Tas, 1, cfg);
        let t36 = lock_based_mops(Platform::Xeon, SimLockKind::Tas, 36, cfg);
        // Scalability well below the 36x ideal (paper: < 1x..2x range).
        assert!(t36 < 8.0 * t1, "t1={t1:.2} t36={t36:.2}");
    }

    #[test]
    fn mp_version_processes_operations() {
        let mut sim = Sim::new(Platform::Opteron, 33);
        let config = SshtConfig {
            buckets: 12,
            entries: 12,
            get_pct: 80,
        };
        // 1 server (core 0) + 3 clients. The table belongs to the server.
        let cfg = LockConfig::for_placement(&sim, 4);
        let locks: Vec<_> = (0..config.buckets)
            .map(|_| make_lock(SimLockKind::Ticket, &mut sim, &cfg))
            .collect();
        let table = Rc::new(SshtTable::new(&mut sim, config, locks, &[0]));
        let mut pairs = Vec::new();
        let mut client_chans = Vec::new();
        for i in 1..4 {
            let req = SsmpChannel::new(&mut sim, 0);
            let rep = SsmpChannel::new(&mut sim, i);
            pairs.push((req.clone(), rep.clone()));
            client_chans.push((req, rep));
        }
        sim.spawn_on_core(0, Box::new(SshtMpServer::new(Rc::clone(&table), pairs)));
        for (i, (req, rep)) in client_chans.into_iter().enumerate() {
            sim.spawn_on_core(i + 1, Box::new(SshtMpClient::new(req, rep, config.buckets)));
        }
        sim.run_until(600_000);
        assert!(sim.total_ops() > 20, "ops={}", sim.total_ops());
    }
}

//! Lock stress workloads: Figures 3, 5, 6, 7 and 8.
//!
//! * [`LockStress`] — each thread acquires a (uniformly random) lock out
//!   of `n` locks, reads and writes the lock's data line, releases, and
//!   pauses briefly (Section 6.1.2's methodology; `n = 1` is the extreme
//!   contention of Figure 5, `n = 512` the very low contention of
//!   Figure 7, and `n ∈ {4, 16, 32, 128}` the Figure 8 sweep). Each
//!   iteration also records its latency, which is Figure 3's metric.
//! * [`UncontestedPair`] — two threads strictly alternate acquiring one
//!   lock via a turn line, so every acquisition finds the lock free but
//!   *held last by the other core*: Figure 6's distance ladder.

use std::rc::Rc;

use rand::Rng;

use ssync_sim::memory::LineId;
use ssync_sim::program::{Action, Env, Program, SubProgram, WaitCond};

use super::drive_sub;
use crate::locks::SimLock;

/// Base post-release pause in the contended stress (lets the release
/// become globally visible before the same thread retries;
/// Section 6.1.2). Each pause adds uniform jitter of the same magnitude:
/// real runs have timing noise that randomizes FIFO queue order, and
/// without it the deterministic simulation phase-locks into socket-major
/// handoff order, which understates cross-socket traffic.
pub const RELEASE_PAUSE: u64 = 80;

/// One stress worker for the throughput experiments.
pub struct LockStress {
    locks: Vec<Rc<dyn SimLock>>,
    data: Vec<LineId>,
    tid: usize,
    st: u8,
    sub: Option<Box<dyn SubProgram>>,
    idx: usize,
    started_at: u64,
}

impl LockStress {
    /// Creates a worker over `locks` with one data line per lock.
    ///
    /// # Panics
    ///
    /// Panics if `locks` and `data` differ in length or are empty.
    pub fn new(locks: Vec<Rc<dyn SimLock>>, data: Vec<LineId>, tid: usize) -> Self {
        assert_eq!(locks.len(), data.len());
        assert!(!locks.is_empty());
        Self {
            locks,
            data,
            tid,
            st: 0,
            sub: None,
            idx: 0,
            started_at: 0,
        }
    }
}

impl Program for LockStress {
    fn step(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Action {
        let mut res = result;
        loop {
            match self.st {
                // Pick a lock and start acquiring.
                0 => {
                    if self.sub.is_none() {
                        self.idx = if self.locks.len() == 1 {
                            0
                        } else {
                            env.rng.gen_range(0..self.locks.len())
                        };
                        self.started_at = env.now;
                    }
                    let (locks, idx, tid) = (&self.locks, self.idx, self.tid);
                    match drive_sub(&mut self.sub, || locks[idx].acquire(tid), &mut res, env) {
                        Some(a) => return a,
                        None => {
                            self.st = 1;
                            return Action::Load(self.data[self.idx]);
                        }
                    }
                }
                // Critical section: read, then write the data line.
                1 => {
                    let v = res.take().expect("data load");
                    self.st = 2;
                    return Action::Store(self.data[self.idx], v.wrapping_add(1));
                }
                // Release.
                2 => {
                    let (locks, idx, tid) = (&self.locks, self.idx, self.tid);
                    match drive_sub(&mut self.sub, || locks[idx].release(tid), &mut res, env) {
                        Some(a) => return a,
                        None => {
                            env.complete_op();
                            env.record_sample(env.now - self.started_at);
                            self.st = 3;
                            let jitter = env.rng.gen_range(0..=RELEASE_PAUSE);
                            return Action::Pause(RELEASE_PAUSE + jitter);
                        }
                    }
                }
                // Pause done: next iteration.
                3 => {
                    self.st = 0;
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Two-thread alternating acquisition for the uncontested-latency ladder.
pub struct UncontestedPair {
    lock: Rc<dyn SimLock>,
    turn: LineId,
    tid: usize,
    /// 0 or 1: whose turn value we wait for.
    my_turn: u64,
    st: u8,
    sub: Option<Box<dyn SubProgram>>,
    started_at: u64,
}

impl UncontestedPair {
    /// Creates one of the two alternating threads. `my_turn` must be 0
    /// for the first thread and 1 for the second; `turn` is a shared
    /// line initialized to 0.
    pub fn new(lock: Rc<dyn SimLock>, turn: LineId, tid: usize, my_turn: u64) -> Self {
        Self {
            lock,
            turn,
            tid,
            my_turn,
            st: 0,
            sub: None,
            started_at: 0,
        }
    }
}

impl Program for UncontestedPair {
    fn step(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Action {
        let mut res = result;
        loop {
            match self.st {
                // Wait for our turn.
                0 => {
                    self.st = 1;
                    return Action::Load(self.turn);
                }
                1 => {
                    let turn = res.take().expect("turn load");
                    if turn % 2 == self.my_turn {
                        self.started_at = env.now;
                        self.st = 3;
                    } else {
                        // Park until the partner's FAI flips the parity,
                        // then re-check (state 1 again).
                        return Action::SpinWait {
                            line: self.turn,
                            cond: WaitCond::Ne(turn),
                            pause: 8,
                        };
                    }
                }
                // Acquire (always uncontested: the other thread is waiting
                // on the turn line).
                3 => {
                    let (lock, tid) = (&self.lock, self.tid);
                    match drive_sub(&mut self.sub, || lock.acquire(tid), &mut res, env) {
                        Some(a) => return a,
                        None => self.st = 4,
                    }
                }
                // Release immediately.
                4 => {
                    let (lock, tid) = (&self.lock, self.tid);
                    match drive_sub(&mut self.sub, || lock.release(tid), &mut res, env) {
                        Some(a) => return a,
                        None => {
                            env.record_sample(env.now - self.started_at);
                            env.complete_op();
                            self.st = 5;
                            // Hand the turn to the partner.
                            return Action::Fai(self.turn);
                        }
                    }
                }
                // Turn handed over.
                5 => {
                    self.st = 0;
                }
                _ => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::{make_lock, LockConfig, SimLockKind};
    use ssync_core::Platform;
    use ssync_sim::Sim;

    /// Throughput of `kind` with `threads` threads over `n_locks` locks.
    pub fn stress_mops(
        platform: Platform,
        kind: SimLockKind,
        threads: usize,
        n_locks: usize,
    ) -> f64 {
        let mut sim = Sim::new(platform, 11);
        let cfg = LockConfig::for_placement(&sim, threads);
        let mut locks = Vec::new();
        let mut data = Vec::new();
        for _ in 0..n_locks {
            locks.push(make_lock(kind, &mut sim, &cfg));
            data.push(sim.alloc_line_for_core(cfg.home_core));
        }
        for tid in 0..threads {
            let w = LockStress::new(locks.clone(), data.clone(), tid);
            sim.spawn_on_core(cfg.thread_cores[tid], Box::new(w));
        }
        let window = 400_000;
        sim.run_until(window);
        sim.topology().mops(sim.total_ops(), window)
    }

    #[test]
    fn multisocket_single_lock_collapses() {
        let t1 = stress_mops(Platform::Opteron, SimLockKind::Ticket, 1, 1);
        let t12 = stress_mops(Platform::Opteron, SimLockKind::Ticket, 12, 1);
        assert!(t1 > 2.0 * t12, "t1={t1:.2} t12={t12:.2}");
    }

    #[test]
    fn single_socket_single_lock_holds_up() {
        let t1 = stress_mops(Platform::Niagara, SimLockKind::Ticket, 1, 1);
        let t32 = stress_mops(Platform::Niagara, SimLockKind::Ticket, 32, 1);
        // No collapse below ~40% of single-thread throughput.
        assert!(t32 > 0.4 * t1, "t1={t1:.2} t32={t32:.2}");
    }

    #[test]
    fn low_contention_scales_on_single_socket() {
        let t1 = stress_mops(Platform::Tilera, SimLockKind::Tas, 1, 128);
        let t18 = stress_mops(Platform::Tilera, SimLockKind::Tas, 18, 128);
        assert!(t18 > 3.0 * t1, "t1={t1:.2} t18={t18:.2}");
    }

    #[test]
    fn queue_locks_resilient_under_extreme_contention() {
        // On the Xeon at high thread counts, CLH should beat plain TAS.
        let clh = stress_mops(Platform::Xeon, SimLockKind::Clh, 30, 1);
        let tas = stress_mops(Platform::Xeon, SimLockKind::Tas, 30, 1);
        assert!(clh > tas, "clh={clh:.2} tas={tas:.2}");
    }

    #[test]
    fn uncontested_pair_records_samples() {
        let mut sim = Sim::new(Platform::Xeon, 3);
        let cfg = LockConfig {
            n_threads: 2,
            home_core: 0,
            thread_cores: vec![0, 10],
        };
        let lock = make_lock(SimLockKind::Ticket, &mut sim, &cfg);
        let turn = sim.alloc_line_for_core(0);
        let t0 = sim.spawn_on_core(
            0,
            Box::new(UncontestedPair::new(Rc::clone(&lock), turn, 0, 0)),
        );
        let t1 = sim.spawn_on_core(
            10,
            Box::new(UncontestedPair::new(Rc::clone(&lock), turn, 1, 1)),
        );
        sim.run_until(400_000);
        assert!(sim.samples(t0).len() > 10);
        assert!(sim.samples(t1).len() > 10);
        // Cross-socket handoff: each acquire+release costs hundreds of
        // cycles (remote line transfers), not single digits.
        let mean: u64 = sim.samples(t1).iter().sum::<u64>() / sim.samples(t1).len() as u64;
        assert!(mean > 100, "mean={mean}");
    }
}

//! Simulated hierarchical (cohort) locks: HCLH and HTICKET.
//!
//! Built by composition, as in `ssync-locks`: one global lock plus one
//! local lock per cluster (die/socket), with a per-cluster *baton* line.
//! A releasing holder that detects a same-cluster waiter (via the local
//! lock's [`SimLock::no_waiter_sentinel`] probe) stores 1 to the baton
//! and releases only the local lock; the next local owner consumes the
//! baton instead of touching the global lock. All cross-socket traffic
//! concentrates on the (rare) global handoffs — the behaviour that makes
//! hierarchical locks the Figure 5 winners on the Xeon.

use std::cell::RefCell;
use std::rc::Rc;

use ssync_sim::memory::LineId;
use ssync_sim::program::{Action, Env, SubProgram};
use ssync_sim::Sim;

use super::clh::SimClh;
use super::ticket::{SimTicket, TicketMode};
use super::{LockConfig, SimLock, SimLockKind};

/// Local handoffs allowed before the global lock must rotate clusters.
const MAX_PASSES: u32 = 64;

struct Inner {
    kind: SimLockKind,
    global: Rc<dyn SimLock>,
    /// One local lock per cluster.
    locals: Vec<Rc<dyn SimLock>>,
    /// One baton line per cluster (1 = global lock left with the cohort).
    batons: Vec<LineId>,
    /// Local passes since the cohort took the global lock.
    passes: RefCell<Vec<u32>>,
    /// The thread id that acquired the global lock for each cluster
    /// (queue-lock bookkeeping must be released under the same id).
    global_holder: RefCell<Vec<usize>>,
    /// Cluster of each thread.
    cluster_of: Vec<usize>,
}

/// Simulated cohort lock (HCLH / HTICKET).
pub struct SimCohort {
    inner: Rc<Inner>,
}

impl SimCohort {
    /// Builds HTICKET: ticket locks at both levels.
    pub fn new_ticket(sim: &mut Sim, cfg: &LockConfig) -> Self {
        Self::build(sim, cfg, SimLockKind::Hticket, |sim, sub_cfg| {
            Rc::new(SimTicket::new(sim, sub_cfg, TicketMode::Proportional))
        })
    }

    /// Builds HCLH: CLH locks at both levels.
    pub fn new_clh(sim: &mut Sim, cfg: &LockConfig) -> Self {
        Self::build(sim, cfg, SimLockKind::Hclh, |sim, sub_cfg| {
            Rc::new(SimClh::new(sim, sub_cfg))
        })
    }

    fn build(
        sim: &mut Sim,
        cfg: &LockConfig,
        kind: SimLockKind,
        mut make: impl FnMut(&mut Sim, &LockConfig) -> Rc<dyn SimLock>,
    ) -> Self {
        // Dense cluster ids over the dies the threads actually occupy.
        let dies: Vec<usize> = cfg
            .thread_cores
            .iter()
            .map(|&c| sim.topology().die_of(c))
            .collect();
        let mut uniq: Vec<usize> = dies.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let cluster_of: Vec<usize> = dies
            .iter()
            .map(|d| uniq.iter().position(|u| u == d).expect("die present"))
            .collect();

        let global = make(sim, cfg);
        let mut locals = Vec::with_capacity(uniq.len());
        let mut batons = Vec::with_capacity(uniq.len());
        for &die in &uniq {
            // Local lock lines live on the cluster's own node.
            let home_core = cfg
                .thread_cores
                .iter()
                .copied()
                .find(|&c| sim.topology().die_of(c) == die)
                .expect("cluster has a thread");
            let sub_cfg = LockConfig {
                n_threads: cfg.n_threads,
                home_core,
                thread_cores: cfg.thread_cores.clone(),
            };
            locals.push(make(sim, &sub_cfg));
            batons.push(sim.alloc_line_for_core(home_core));
        }
        let n_clusters = uniq.len();
        Self {
            inner: Rc::new(Inner {
                kind,
                global,
                locals,
                batons,
                passes: RefCell::new(vec![0; n_clusters]),
                global_holder: RefCell::new(vec![usize::MAX; n_clusters]),
                cluster_of,
            }),
        }
    }
}

impl SimLock for SimCohort {
    fn kind(&self) -> SimLockKind {
        self.inner.kind
    }

    fn acquire(&self, tid: usize) -> Box<dyn SubProgram> {
        Box::new(CohortAcquire {
            lock: Rc::clone(&self.inner),
            tid,
            st: 0,
            sub: None,
        })
    }

    fn release(&self, tid: usize) -> Box<dyn SubProgram> {
        Box::new(CohortRelease {
            lock: Rc::clone(&self.inner),
            tid,
            st: 0,
            sub: None,
        })
    }
}

struct CohortAcquire {
    lock: Rc<Inner>,
    tid: usize,
    st: u8,
    sub: Option<Box<dyn SubProgram>>,
}

impl SubProgram for CohortAcquire {
    fn substep(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Option<Action> {
        let c = self.lock.cluster_of[self.tid];
        let mut res = result;
        loop {
            match self.st {
                // Acquire the local lock.
                0 => {
                    if self.sub.is_none() {
                        self.sub = Some(self.lock.locals[c].acquire(self.tid));
                    }
                    match self.sub.as_mut().unwrap().substep(res.take(), env) {
                        Some(a) => return Some(a),
                        None => {
                            self.sub = None;
                            self.st = 1;
                            return Some(Action::Load(self.lock.batons[c]));
                        }
                    }
                }
                // Inspect the baton.
                1 => {
                    if res.take().expect("baton load") == 1 {
                        // The cohort already owns the global lock.
                        self.st = 2;
                        return Some(Action::Store(self.lock.batons[c], 0));
                    }
                    self.st = 3;
                }
                // Baton consumed: acquired.
                2 => return None,
                // Acquire the global lock.
                3 => {
                    if self.sub.is_none() {
                        self.sub = Some(self.lock.global.acquire(self.tid));
                    }
                    match self.sub.as_mut().unwrap().substep(res.take(), env) {
                        Some(a) => return Some(a),
                        None => {
                            self.sub = None;
                            self.lock.global_holder.borrow_mut()[c] = self.tid;
                            self.lock.passes.borrow_mut()[c] = 0;
                            return None;
                        }
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

struct CohortRelease {
    lock: Rc<Inner>,
    tid: usize,
    st: u8,
    sub: Option<Box<dyn SubProgram>>,
}

impl SubProgram for CohortRelease {
    fn substep(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Option<Action> {
        let c = self.lock.cluster_of[self.tid];
        let mut res = result;
        loop {
            match self.st {
                // Decide: pass locally or release globally?
                0 => {
                    if self.lock.passes.borrow()[c] >= MAX_PASSES {
                        self.st = 4;
                        continue;
                    }
                    let (line, _sentinel) = self.lock.locals[c]
                        .no_waiter_sentinel(self.tid)
                        .expect("cohort-local lock must detect waiters");
                    self.st = 1;
                    return Some(Action::Load(line));
                }
                // Waiter probe result.
                1 => {
                    let v = res.take().expect("probe load");
                    let (_line, sentinel) = self.lock.locals[c]
                        .no_waiter_sentinel(self.tid)
                        .expect("probe");
                    if v != sentinel {
                        // Same-cluster waiter: pass the baton.
                        self.lock.passes.borrow_mut()[c] += 1;
                        self.st = 2;
                        return Some(Action::Store(self.lock.batons[c], 1));
                    }
                    self.st = 4;
                }
                // Baton stored: release the local lock only.
                2 | 3 => {
                    if self.sub.is_none() {
                        self.sub = Some(self.lock.locals[c].release(self.tid));
                    }
                    match self.sub.as_mut().unwrap().substep(res.take(), env) {
                        Some(a) => return Some(a),
                        None => {
                            self.sub = None;
                            return None;
                        }
                    }
                }
                // Release the global lock (under its acquirer's id) ...
                4 => {
                    if self.sub.is_none() {
                        let holder = self.lock.global_holder.borrow()[c];
                        debug_assert_ne!(holder, usize::MAX, "global held by this cohort");
                        self.lock.passes.borrow_mut()[c] = 0;
                        self.sub = Some(self.lock.global.release(holder));
                    }
                    match self.sub.as_mut().unwrap().substep(res.take(), env) {
                        Some(a) => return Some(a),
                        None => {
                            self.sub = None;
                            self.st = 3; // ... then the local lock.
                        }
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::exclusion_torture;
    use super::super::SimLockKind;
    use ssync_core::Platform;

    #[test]
    fn exclusion_on_multi_sockets() {
        for p in [Platform::Opteron, Platform::Xeon] {
            exclusion_torture(SimLockKind::Hticket, p, 4, 40);
            exclusion_torture(SimLockKind::Hclh, p, 4, 40);
        }
    }

    #[test]
    fn exclusion_across_sockets() {
        // 20 Xeon threads span two sockets: local passing and global
        // rotation both exercise.
        exclusion_torture(SimLockKind::Hticket, Platform::Xeon, 20, 10);
        exclusion_torture(SimLockKind::Hclh, Platform::Xeon, 20, 10);
    }

    #[test]
    fn exclusion_single_cluster_degenerates() {
        exclusion_torture(SimLockKind::Hticket, Platform::Niagara, 8, 20);
    }
}

//! Simulated blocking mutex (Pthread-mutex model).
//!
//! A short TTAS-style optimistic spin, then enqueue-and-park. The engine
//! charges the suspend and wake-up costs, which is why MUTEX never wins
//! when every thread owns a core (the handoff always eats a wake-up
//! latency) but degrades gracefully when cores are shared.
//!
//! The wait queue itself is engine-level (`RefCell<VecDeque>`), standing
//! in for the kernel's futex queue; the lock word is a real simulated
//! line, and the enqueue cost is charged as a pause.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use ssync_sim::memory::LineId;
use ssync_sim::program::{Action, Env, SubProgram};
use ssync_sim::Sim;

use super::{LockConfig, SimLock, SimLockKind, POLL_PAUSE};

/// Optimistic spin polls before parking (glibc's adaptive mutex spins a
/// bounded number of times).
const SPIN_BUDGET: u32 = 2;

/// Cycles charged for manipulating the kernel-side wait queue.
const QUEUE_COST: u64 = 80;

struct Inner {
    flag: LineId,
    waiters: RefCell<VecDeque<usize>>,
}

/// Simulated Pthread-style mutex.
pub struct SimMutex {
    inner: Rc<Inner>,
}

impl SimMutex {
    /// Allocates the lock word on the config's home node.
    pub fn new(sim: &mut Sim, cfg: &LockConfig) -> Self {
        Self {
            inner: Rc::new(Inner {
                flag: sim.alloc_line_for_core(cfg.home_core),
                waiters: RefCell::new(VecDeque::new()),
            }),
        }
    }
}

impl SimLock for SimMutex {
    fn kind(&self) -> SimLockKind {
        SimLockKind::Mutex
    }

    fn acquire(&self, tid: usize) -> Box<dyn SubProgram> {
        Box::new(MutexAcquire {
            lock: Rc::clone(&self.inner),
            tid,
            st: 0,
            spins: 0,
        })
    }

    fn release(&self, tid: usize) -> Box<dyn SubProgram> {
        let _ = tid;
        Box::new(MutexRelease {
            lock: Rc::clone(&self.inner),
            st: 0,
        })
    }
}

struct MutexAcquire {
    lock: Rc<Inner>,
    tid: usize,
    st: u8,
    spins: u32,
}

impl SubProgram for MutexAcquire {
    fn substep(&mut self, result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        match self.st {
            // Optimistic CAS.
            0 => {
                self.st = 1;
                Some(Action::Cas(self.lock.flag, 0, 1))
            }
            1 => {
                if result.expect("cas result") == 0 {
                    return None; // Acquired.
                }
                self.spins += 1;
                if self.spins < SPIN_BUDGET {
                    self.st = 2;
                    return Some(Action::Pause(POLL_PAUSE * u64::from(self.spins)));
                }
                // Give up spinning: enqueue and revalidate before parking
                // (the futex protocol's recheck, which prevents the lost
                // wakeup when the holder released in the meantime).
                self.lock.waiters.borrow_mut().push_back(self.tid);
                self.st = 3;
                Some(Action::Pause(QUEUE_COST))
            }
            // Re-poll after a spin pause.
            2 => {
                self.st = 1;
                Some(Action::Cas(self.lock.flag, 0, 1))
            }
            // Queue cost paid: revalidate the flag.
            3 => {
                self.st = 4;
                Some(Action::Load(self.lock.flag))
            }
            4 => {
                if result.expect("load result") == 0 {
                    // Lock became free: dequeue ourselves and retry (an
                    // unpark permit, if one raced in, is consumed by the
                    // next park — the engine's permit semantics).
                    let mut q = self.lock.waiters.borrow_mut();
                    if let Some(pos) = q.iter().position(|&t| t == self.tid) {
                        q.remove(pos);
                    }
                    drop(q);
                    self.st = 0;
                    self.spins = 0;
                    return Some(Action::Pause(QUEUE_COST));
                }
                self.st = 5;
                Some(Action::Park)
            }
            // Woken: retry from the top.
            5 => {
                self.st = 0;
                self.spins = 0;
                Some(Action::Pause(POLL_PAUSE))
            }
            _ => unreachable!(),
        }
    }
}

struct MutexRelease {
    lock: Rc<Inner>,
    st: u8,
}

impl SubProgram for MutexRelease {
    fn substep(&mut self, _result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        match self.st {
            // Clear the lock word.
            0 => {
                self.st = 1;
                Some(Action::Store(self.lock.flag, 0))
            }
            // Wake one waiter, if any.
            1 => {
                let waiter = self.lock.waiters.borrow_mut().pop_front();
                match waiter {
                    Some(t) => {
                        self.st = 2;
                        Some(Action::Unpark(t))
                    }
                    None => None,
                }
            }
            2 => None,
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::exclusion_torture;
    use super::super::SimLockKind;
    use ssync_core::Platform;

    #[test]
    fn exclusion_on_all_platforms() {
        for p in Platform::ALL {
            exclusion_torture(SimLockKind::Mutex, p, 4, 40);
        }
    }

    #[test]
    fn exclusion_many_threads() {
        exclusion_torture(SimLockKind::Mutex, Platform::Opteron, 16, 10);
    }
}

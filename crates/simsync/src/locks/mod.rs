//! The nine lock algorithms of `libslock` as simulator state machines.
//!
//! Each algorithm implements [`SimLock`]: `acquire(tid)` and
//! `release(tid)` return [`SubProgram`]s that a workload drives to
//! completion before entering / after leaving its critical section. Locks
//! keep per-thread bookkeeping (tickets, queue nodes) in `Rc<RefCell<..>>`
//! state — the engine is single-threaded and deterministic, so interior
//! mutability is safe and cheap; the *simulated* synchronization happens
//! entirely through the memory-line [`Action`]s the sub-programs issue.
//!
//! Spin loops pace themselves with [`POLL_PAUSE`]-cycle pauses between
//! polls, modelling loop overhead (and keeping simulated spinning from
//! flooding the event queue). A waiter whose line is locally cached polls
//! at L1 cost; the handoff invalidation makes its next poll a real miss,
//! exactly the coherence traffic the paper analyses.

pub mod array;
pub mod clh;
pub mod cohort;
pub mod mcs;
pub mod mutex;
pub mod tas;
pub mod ticket;
pub mod ttas;

use std::rc::Rc;

use ssync_sim::program::SubProgram;
use ssync_sim::Sim;

/// Cycles of local work between successive spin polls.
pub const POLL_PAUSE: u64 = 4;

/// The sim lock algorithms, including the Figure 3 ticket variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimLockKind {
    /// Test-and-set.
    Tas,
    /// Test-and-test-and-set with exponential back-off.
    Ttas,
    /// Ticket lock with proportional back-off (the optimized TICKET).
    Ticket,
    /// Ticket lock spinning continuously (Figure 3 baseline).
    TicketNoBackoff,
    /// Ticket lock with proportional back-off **and** `prefetchw` on the
    /// spin loop (Figure 3's best variant; Section 5.3).
    TicketPrefetchw,
    /// Anderson array lock.
    Array,
    /// Blocking mutex (Pthread model: brief spin, then park).
    Mutex,
    /// MCS queue lock.
    Mcs,
    /// CLH queue lock.
    Clh,
    /// Hierarchical CLH (cohort of CLH locks).
    Hclh,
    /// Hierarchical ticket lock (cohort of ticket locks).
    Hticket,
}

impl SimLockKind {
    /// The paper's nine locks, in its figures' order.
    pub const ALL: [SimLockKind; 9] = [
        SimLockKind::Tas,
        SimLockKind::Ttas,
        SimLockKind::Ticket,
        SimLockKind::Array,
        SimLockKind::Mutex,
        SimLockKind::Mcs,
        SimLockKind::Clh,
        SimLockKind::Hclh,
        SimLockKind::Hticket,
    ];

    /// The flat locks used on the single-socket platforms (Section 6.1.2
    /// skips hierarchical locks there).
    pub const FLAT: [SimLockKind; 7] = [
        SimLockKind::Tas,
        SimLockKind::Ttas,
        SimLockKind::Ticket,
        SimLockKind::Array,
        SimLockKind::Mutex,
        SimLockKind::Mcs,
        SimLockKind::Clh,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SimLockKind::Tas => "TAS",
            SimLockKind::Ttas => "TTAS",
            SimLockKind::Ticket => "TICKET",
            SimLockKind::TicketNoBackoff => "TICKET-NOBO",
            SimLockKind::TicketPrefetchw => "TICKET-PW",
            SimLockKind::Array => "ARRAY",
            SimLockKind::Mutex => "MUTEX",
            SimLockKind::Mcs => "MCS",
            SimLockKind::Clh => "CLH",
            SimLockKind::Hclh => "HCLH",
            SimLockKind::Hticket => "HTICKET",
        }
    }

    /// True for the cluster-aware locks.
    pub fn is_hierarchical(self) -> bool {
        matches!(self, SimLockKind::Hclh | SimLockKind::Hticket)
    }
}

/// Configuration for building a sim lock.
#[derive(Debug, Clone)]
pub struct LockConfig {
    /// Number of participating threads (sizes per-thread queue nodes).
    pub n_threads: usize,
    /// Core whose memory node the lock's lines are allocated from ("the
    /// first participating memory node", Section 6).
    pub home_core: usize,
    /// Core of each participating thread, indexed by thread id — the
    /// hierarchical locks derive each thread's cluster (die) from this.
    pub thread_cores: Vec<usize>,
}

impl LockConfig {
    /// Config for threads placed by the platform's standard placement.
    pub fn for_placement(sim: &Sim, n_threads: usize) -> Self {
        let cores = sim.topology().placement(n_threads);
        Self {
            n_threads,
            home_core: cores[0],
            thread_cores: cores,
        }
    }

    /// The cluster (die) of thread `tid` on the given simulation.
    pub fn cluster_of(&self, sim: &Sim, tid: usize) -> usize {
        sim.topology().die_of(self.thread_cores[tid])
    }
}

/// A lock algorithm running on the simulator.
pub trait SimLock {
    /// Which algorithm this is.
    fn kind(&self) -> SimLockKind;

    /// Begins an acquisition for thread `tid`; drive the returned
    /// sub-program to completion to hold the lock.
    fn acquire(&self, tid: usize) -> Box<dyn SubProgram>;

    /// Begins a release for thread `tid` (which must hold the lock).
    fn release(&self, tid: usize) -> Box<dyn SubProgram>;

    /// Cohort-detection probe for hierarchical composition: a line to
    /// load and the value meaning "no thread is queued behind holder
    /// `tid`". `None` if the algorithm cannot detect waiters (such locks
    /// cannot serve as cohort-local locks).
    fn no_waiter_sentinel(&self, tid: usize) -> Option<(ssync_sim::LineId, u64)> {
        let _ = tid;
        None
    }
}

/// Builds a sim lock of the given kind, allocating its cache lines.
pub fn make_lock(kind: SimLockKind, sim: &mut Sim, cfg: &LockConfig) -> Rc<dyn SimLock> {
    match kind {
        SimLockKind::Tas => Rc::new(tas::SimTas::new(sim, cfg)),
        SimLockKind::Ttas => Rc::new(ttas::SimTtas::new(sim, cfg)),
        SimLockKind::Ticket => Rc::new(ticket::SimTicket::new(
            sim,
            cfg,
            ticket::TicketMode::Proportional,
        )),
        SimLockKind::TicketNoBackoff => Rc::new(ticket::SimTicket::new(
            sim,
            cfg,
            ticket::TicketMode::NoBackoff,
        )),
        SimLockKind::TicketPrefetchw => Rc::new(ticket::SimTicket::new(
            sim,
            cfg,
            ticket::TicketMode::Prefetchw,
        )),
        SimLockKind::Array => Rc::new(array::SimArray::new(sim, cfg)),
        SimLockKind::Mutex => Rc::new(mutex::SimMutex::new(sim, cfg)),
        SimLockKind::Mcs => Rc::new(mcs::SimMcs::new(sim, cfg)),
        SimLockKind::Clh => Rc::new(clh::SimClh::new(sim, cfg)),
        SimLockKind::Hclh => Rc::new(cohort::SimCohort::new_clh(sim, cfg)),
        SimLockKind::Hticket => Rc::new(cohort::SimCohort::new_ticket(sim, cfg)),
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A mutual-exclusion checker run against every sim lock: threads
    //! repeatedly acquire, perform a non-atomic read-modify-write on a
    //! shared data line, and release. Lost updates expose broken locks.

    use super::*;
    use ssync_sim::program::{Action, Env, Program};
    use ssync_sim::Sim;

    struct CsWorker {
        lock: Rc<dyn SimLock>,
        data: ssync_sim::LineId,
        iters: u32,
        tid: usize,
        st: u8,
        sub: Option<Box<dyn SubProgram>>,
        read: u64,
    }

    impl Program for CsWorker {
        fn step(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Action {
            // `res` is consumed by the first substep/transition; fresh
            // sub-programs must start with `None`.
            let mut res = result;
            loop {
                match self.st {
                    // Acquire.
                    0 => {
                        if self.sub.is_none() {
                            self.sub = Some(self.lock.acquire(self.tid));
                        }
                        match self.sub.as_mut().unwrap().substep(res.take(), env) {
                            Some(a) => return a,
                            None => {
                                self.sub = None;
                                self.st = 1;
                                return Action::Load(self.data);
                            }
                        }
                    }
                    // Critical section: read came back, write read+1.
                    1 => {
                        self.read = res.take().expect("load result");
                        self.st = 2;
                        return Action::Store(self.data, self.read + 1);
                    }
                    // Release.
                    2 => {
                        if self.sub.is_none() {
                            self.sub = Some(self.lock.release(self.tid));
                        }
                        match self.sub.as_mut().unwrap().substep(res.take(), env) {
                            Some(a) => return a,
                            None => {
                                self.sub = None;
                                self.iters -= 1;
                                env.complete_op();
                                if self.iters == 0 {
                                    return Action::Done;
                                }
                                self.st = 0;
                            }
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Runs `threads` workers × `iters` critical sections and asserts no
    /// updates were lost.
    pub fn exclusion_torture(
        kind: SimLockKind,
        platform: ssync_core::Platform,
        threads: usize,
        iters: u32,
    ) {
        let mut sim = Sim::new(platform, 7);
        let cfg = LockConfig::for_placement(&sim, threads);
        let lock = make_lock(kind, &mut sim, &cfg);
        let data = sim.alloc_line_for_core(cfg.home_core);
        for tid in 0..threads {
            let w = CsWorker {
                lock: Rc::clone(&lock),
                data,
                iters,
                tid,
                st: 0,
                sub: None,
                read: 0,
            };
            sim.spawn_on_core(cfg.thread_cores[tid], Box::new(w));
        }
        sim.run_to_completion();
        assert_eq!(
            sim.memory().line(data).value,
            threads as u64 * u64::from(iters),
            "{:?} lost updates on {:?}",
            kind,
            platform
        );
    }
}

//! Simulated CLH queue lock.
//!
//! The queue is implicit: the tail line holds the line-id of the last
//! waiter's node, and each waiter spins on its *predecessor's* node.
//! Nodes recycle exactly as in the real algorithm — after release, the
//! thread adopts its predecessor's node for the next acquisition.

use std::cell::RefCell;
use std::rc::Rc;

use ssync_sim::memory::LineId;
use ssync_sim::program::{Action, Env, SubProgram, WaitCond};
use ssync_sim::Sim;

use super::{LockConfig, SimLock, SimLockKind, POLL_PAUSE};

struct Inner {
    tail: LineId,
    /// Each thread's current node line and, while holding the lock, the
    /// predecessor node it will adopt.
    node: RefCell<Vec<LineId>>,
    pred: RefCell<Vec<LineId>>,
}

/// Simulated CLH lock.
pub struct SimClh {
    inner: Rc<Inner>,
}

impl SimClh {
    /// Allocates one dummy node plus one node line per thread (node lines
    /// local to their thread's core).
    pub fn new(sim: &mut Sim, cfg: &LockConfig) -> Self {
        let dummy = sim.alloc_line_for_core(cfg.home_core);
        // Dummy starts unlocked (0).
        let tail = sim.alloc_line_for_core(cfg.home_core);
        sim.memory_mut().line_mut(tail).value = dummy;
        let node: Vec<LineId> = (0..cfg.n_threads)
            .map(|t| sim.alloc_line_for_core(cfg.thread_cores[t]))
            .collect();
        Self {
            inner: Rc::new(Inner {
                tail,
                node: RefCell::new(node),
                pred: RefCell::new(vec![0; cfg.n_threads]),
            }),
        }
    }
}

impl SimLock for SimClh {
    fn kind(&self) -> SimLockKind {
        SimLockKind::Clh
    }

    fn acquire(&self, tid: usize) -> Box<dyn SubProgram> {
        Box::new(ClhAcquire {
            lock: Rc::clone(&self.inner),
            tid,
            st: 0,
            pred: 0,
        })
    }

    fn release(&self, tid: usize) -> Box<dyn SubProgram> {
        let node = self.inner.node.borrow()[tid];
        // Adopt the predecessor node for the next acquisition.
        let pred = self.inner.pred.borrow()[tid];
        self.inner.node.borrow_mut()[tid] = pred;
        Box::new(ClhRelease { node, done: false })
    }

    fn no_waiter_sentinel(&self, tid: usize) -> Option<(LineId, u64)> {
        // No waiter iff the tail still points at our own node.
        Some((self.inner.tail, self.inner.node.borrow()[tid]))
    }
}

struct ClhAcquire {
    lock: Rc<Inner>,
    tid: usize,
    st: u8,
    pred: LineId,
}

impl SubProgram for ClhAcquire {
    fn substep(&mut self, result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        match self.st {
            // Mark our node locked.
            0 => {
                self.st = 1;
                let node = self.lock.node.borrow()[self.tid];
                Some(Action::Store(node, 1))
            }
            // Swing the tail to our node.
            1 => {
                self.st = 2;
                let node = self.lock.node.borrow()[self.tid];
                Some(Action::Swap(self.lock.tail, node))
            }
            // Got the predecessor's node: park on it until its release.
            2 => {
                self.pred = result.expect("swap result");
                self.lock.pred.borrow_mut()[self.tid] = self.pred;
                self.st = 3;
                Some(Action::SpinWait {
                    line: self.pred,
                    cond: WaitCond::Eq(0),
                    pause: POLL_PAUSE,
                })
            }
            3 => {
                debug_assert_eq!(result, Some(0));
                None
            }
            _ => unreachable!(),
        }
    }
}

struct ClhRelease {
    node: LineId,
    done: bool,
}

impl SubProgram for ClhRelease {
    fn substep(&mut self, _result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        if self.done {
            None
        } else {
            self.done = true;
            Some(Action::Store(self.node, 0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::exclusion_torture;
    use super::super::SimLockKind;
    use ssync_core::Platform;

    #[test]
    fn exclusion_on_all_platforms() {
        for p in Platform::ALL {
            exclusion_torture(SimLockKind::Clh, p, 4, 50);
        }
    }

    #[test]
    fn exclusion_many_threads() {
        exclusion_torture(SimLockKind::Clh, Platform::Niagara, 24, 10);
    }
}

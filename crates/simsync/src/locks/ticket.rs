//! Simulated ticket lock: the Figure 3 ablation in one module.
//!
//! Three spin-policy variants, exactly the three curves of Figure 3:
//!
//! * [`TicketMode::NoBackoff`] — waiters re-read `current` continuously.
//!   Every release (a store on a line shared by all waiters) pays the
//!   full invalidation, and the flood of re-loads keeps the directory
//!   busy: latency explodes with the thread count on the Opteron.
//! * [`TicketMode::Proportional`] — a waiter `k` tickets from the head
//!   pauses `k * SLOT` cycles between polls (Section 5.3).
//! * [`TicketMode::Prefetchw`] — additionally issues `prefetchw` before
//!   each poll, keeping the line Modified at the polling waiter so the
//!   releasing store avoids the Opteron's owned/shared-state broadcast.
//!
//! The two counters live on separate simulated lines (the model tracks
//! one value per line); the real `libslock` packs them in one line, a
//! difference noted in DESIGN.md that does not affect the handoff path.

use std::cell::RefCell;
use std::rc::Rc;

use ssync_sim::memory::LineId;
use ssync_sim::program::{Action, Env, SubProgram, WaitCond};
use ssync_sim::Sim;

use super::{LockConfig, SimLock, SimLockKind, POLL_PAUSE};

/// Cycles per queue position for proportional back-off, sized to the
/// platform's contended handoff cost. `libslock` ships platform-specific
/// back-off tuning for exactly this reason: a multi-socket handoff costs
/// on the order of a cross-socket line transfer plus queue effects
/// (~1000 cycles), while the uniform Niagara and the Tilera hand off in
/// tens of cycles — a waiter sleeping a multi-socket slot there wakes up
/// long after its turn.
fn slot_for(platform: ssync_core::Platform) -> u64 {
    use ssync_core::Platform;
    match platform {
        Platform::Opteron | Platform::Opteron2 | Platform::Xeon | Platform::Xeon2 => 1_000,
        Platform::Niagara => 120,
        Platform::Tilera => 220,
    }
}

/// Spin policy of the simulated ticket lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketMode {
    /// Continuous polling (Figure 3 "non-optimized").
    NoBackoff,
    /// Proportional back-off (Figure 3 "back-off"; the default TICKET).
    Proportional,
    /// Proportional back-off + `prefetchw` (Figure 3 best variant).
    Prefetchw,
}

struct Inner {
    next: LineId,
    current: LineId,
    mode: TicketMode,
    /// Per-queue-position back-off pause (see [`slot_for`]).
    slot: u64,
    /// Ticket held by each thread (valid between acquire and release).
    tickets: RefCell<Vec<u64>>,
}

/// Simulated ticket lock.
pub struct SimTicket {
    inner: Rc<Inner>,
}

impl SimTicket {
    /// Allocates the two counter lines on the config's home node.
    pub fn new(sim: &mut Sim, cfg: &LockConfig, mode: TicketMode) -> Self {
        Self {
            inner: Rc::new(Inner {
                slot: slot_for(sim.topology().platform()),
                next: sim.alloc_line_for_core(cfg.home_core),
                current: sim.alloc_line_for_core(cfg.home_core),
                mode,
                tickets: RefCell::new(vec![0; cfg.n_threads]),
            }),
        }
    }
}

impl SimLock for SimTicket {
    fn kind(&self) -> SimLockKind {
        match self.inner.mode {
            TicketMode::NoBackoff => SimLockKind::TicketNoBackoff,
            TicketMode::Proportional => SimLockKind::Ticket,
            TicketMode::Prefetchw => SimLockKind::TicketPrefetchw,
        }
    }

    fn acquire(&self, tid: usize) -> Box<dyn SubProgram> {
        Box::new(TicketAcquire {
            lock: Rc::clone(&self.inner),
            tid,
            st: 0,
            ticket: 0,
        })
    }

    fn release(&self, tid: usize) -> Box<dyn SubProgram> {
        let ticket = self.inner.tickets.borrow()[tid];
        Box::new(TicketRelease {
            current: self.inner.current,
            ticket,
            done: false,
        })
    }

    fn no_waiter_sentinel(&self, tid: usize) -> Option<(LineId, u64)> {
        // No waiter iff `next` has only advanced past our own ticket.
        let ticket = self.inner.tickets.borrow()[tid];
        Some((self.inner.next, ticket + 1))
    }
}

struct TicketAcquire {
    lock: Rc<Inner>,
    tid: usize,
    st: u8,
    ticket: u64,
}

impl SubProgram for TicketAcquire {
    fn substep(&mut self, result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        match self.st {
            // Draw a ticket.
            0 => {
                self.st = 1;
                Some(Action::Fai(self.lock.next))
            }
            // Got the ticket; start polling `current`.
            1 => {
                self.ticket = result.expect("fai result");
                self.lock.tickets.borrow_mut()[self.tid] = self.ticket;
                match self.lock.mode {
                    TicketMode::Prefetchw => {
                        self.st = 4;
                        Some(Action::Prefetchw(self.lock.current))
                    }
                    // Continuous polling: a fixed-pause wait the engine
                    // re-arms internally until our ticket comes up.
                    TicketMode::NoBackoff => {
                        self.st = 2;
                        Some(Action::SpinWait {
                            line: self.lock.current,
                            cond: WaitCond::Eq(self.ticket),
                            pause: POLL_PAUSE,
                        })
                    }
                    // Proportional back-off: read once to learn the queue
                    // distance, then wait with the matching pause.
                    TicketMode::Proportional => {
                        self.st = 3;
                        Some(Action::Load(self.lock.current))
                    }
                }
            }
            // NoBackoff wait satisfied: our ticket is up.
            2 => {
                debug_assert_eq!(result, Some(self.ticket));
                None
            }
            // Proportional poll result: acquired, or sleep proportionally
            // to the queue distance until `current` changes, then
            // re-evaluate (the pause shrinks as the queue drains).
            3 => {
                let current = result.expect("load result");
                if current == self.ticket {
                    return None;
                }
                let queued = self.ticket.saturating_sub(current);
                Some(Action::SpinWait {
                    line: self.lock.current,
                    cond: WaitCond::Ne(current),
                    pause: (queued * self.lock.slot).max(POLL_PAUSE),
                })
            }
            // prefetchw done (or pause done in pw mode): read the now
            // locally-Modified line.
            4 => {
                self.st = 5;
                Some(Action::Load(self.lock.current))
            }
            // pw-mode poll result (like state 3, but re-prefetch; the
            // prefetchw is a write-class action every poll, so this mode
            // keeps its explicit loop).
            5 => {
                let current = result.expect("load result");
                if current == self.ticket {
                    return None;
                }
                let queued = self.ticket.saturating_sub(current);
                self.st = 6;
                Some(Action::Pause((queued * self.lock.slot).max(POLL_PAUSE)))
            }
            // pw-mode pause done: prefetchw again, then read.
            6 => {
                self.st = 4;
                Some(Action::Prefetchw(self.lock.current))
            }
            _ => unreachable!(),
        }
    }
}

struct TicketRelease {
    current: LineId,
    ticket: u64,
    done: bool,
}

impl SubProgram for TicketRelease {
    fn substep(&mut self, _result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        if self.done {
            None
        } else {
            self.done = true;
            Some(Action::Store(self.current, self.ticket + 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::exclusion_torture;
    use super::super::SimLockKind;
    use ssync_core::Platform;

    #[test]
    fn exclusion_all_modes_all_platforms() {
        for kind in [
            SimLockKind::Ticket,
            SimLockKind::TicketNoBackoff,
            SimLockKind::TicketPrefetchw,
        ] {
            for p in Platform::ALL {
                exclusion_torture(kind, p, 4, 40);
            }
        }
    }

    #[test]
    fn exclusion_many_threads() {
        exclusion_torture(SimLockKind::Ticket, Platform::Opteron, 24, 10);
    }
}

//! Simulated MCS queue lock.
//!
//! Per-thread queue nodes are two lines each (`locked` flag and `next`
//! pointer); the queue tail is one line holding `tid + 1` (0 = empty).
//! A waiter spins on its own `locked` line, so after the first poll it
//! reads from L1 until the predecessor's handoff store invalidates it —
//! one line transfer per handoff, the property that makes MCS "the most
//! resilient to contention" (Figure 5).

use std::rc::Rc;

use ssync_sim::memory::LineId;
use ssync_sim::program::{Action, Env, SubProgram, WaitCond};
use ssync_sim::Sim;

use super::{LockConfig, SimLock, SimLockKind, POLL_PAUSE};

struct Inner {
    tail: LineId,
    /// Per-thread spin flag line.
    locked: Vec<LineId>,
    /// Per-thread successor pointer line (value = successor tid + 1).
    next: Vec<LineId>,
}

/// Simulated MCS lock.
pub struct SimMcs {
    inner: Rc<Inner>,
}

impl SimMcs {
    /// Allocates the tail line plus two lines per thread. Queue node
    /// lines are allocated local to each thread's core, as `libslock`
    /// allocates qnodes from thread-local memory.
    pub fn new(sim: &mut Sim, cfg: &LockConfig) -> Self {
        let tail = sim.alloc_line_for_core(cfg.home_core);
        let locked = (0..cfg.n_threads)
            .map(|t| sim.alloc_line_for_core(cfg.thread_cores[t]))
            .collect();
        let next = (0..cfg.n_threads)
            .map(|t| sim.alloc_line_for_core(cfg.thread_cores[t]))
            .collect();
        Self {
            inner: Rc::new(Inner { tail, locked, next }),
        }
    }
}

impl SimLock for SimMcs {
    fn kind(&self) -> SimLockKind {
        SimLockKind::Mcs
    }

    fn acquire(&self, tid: usize) -> Box<dyn SubProgram> {
        Box::new(McsAcquire {
            lock: Rc::clone(&self.inner),
            tid,
            st: 0,
        })
    }

    fn release(&self, tid: usize) -> Box<dyn SubProgram> {
        Box::new(McsRelease {
            lock: Rc::clone(&self.inner),
            tid,
            st: 0,
            successor: 0,
        })
    }
}

struct McsAcquire {
    lock: Rc<Inner>,
    tid: usize,
    st: u8,
}

impl SubProgram for McsAcquire {
    fn substep(&mut self, result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        let me = self.tid;
        match self.st {
            // Reset our next pointer.
            0 => {
                self.st = 1;
                Some(Action::Store(self.lock.next[me], 0))
            }
            // Arm our spin flag.
            1 => {
                self.st = 2;
                Some(Action::Store(self.lock.locked[me], 1))
            }
            // Swap ourselves into the tail.
            2 => {
                self.st = 3;
                Some(Action::Swap(self.lock.tail, me as u64 + 1))
            }
            // Inspect the predecessor.
            3 => {
                let pred = result.expect("swap result");
                if pred == 0 {
                    return None; // Queue was empty: lock acquired.
                }
                self.st = 4;
                Some(Action::Store(
                    self.lock.next[pred as usize - 1],
                    me as u64 + 1,
                ))
            }
            // Linked in: park on our own flag until the predecessor's
            // handoff store clears it.
            4 => {
                self.st = 5;
                Some(Action::SpinWait {
                    line: self.lock.locked[me],
                    cond: WaitCond::Eq(0),
                    pause: POLL_PAUSE,
                })
            }
            5 => {
                debug_assert_eq!(result, Some(0));
                None
            }
            _ => unreachable!(),
        }
    }
}

struct McsRelease {
    lock: Rc<Inner>,
    tid: usize,
    st: u8,
    successor: u64,
}

impl SubProgram for McsRelease {
    fn substep(&mut self, result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        let me = self.tid;
        match self.st {
            // Do we have a successor?
            0 => {
                self.st = 1;
                Some(Action::Load(self.lock.next[me]))
            }
            1 => {
                self.successor = result.expect("load result");
                if self.successor != 0 {
                    self.st = 5;
                    return Some(Action::Store(
                        self.lock.locked[self.successor as usize - 1],
                        0,
                    ));
                }
                // No visible successor: try to clear the tail.
                self.st = 2;
                Some(Action::Cas(self.lock.tail, me as u64 + 1, 0))
            }
            2 => {
                if result.expect("cas result") == me as u64 + 1 {
                    return None; // Tail cleared: released.
                }
                // A successor is linking itself: wait for the pointer.
                self.st = 3;
                Some(Action::SpinWait {
                    line: self.lock.next[me],
                    cond: WaitCond::Ne(0),
                    pause: POLL_PAUSE,
                })
            }
            3 => {
                self.successor = result.expect("spin result");
                debug_assert_ne!(self.successor, 0);
                self.st = 5;
                Some(Action::Store(
                    self.lock.locked[self.successor as usize - 1],
                    0,
                ))
            }
            // Handoff store completed.
            5 => None,
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::exclusion_torture;
    use super::super::SimLockKind;
    use ssync_core::Platform;

    #[test]
    fn exclusion_on_all_platforms() {
        for p in Platform::ALL {
            exclusion_torture(SimLockKind::Mcs, p, 4, 50);
        }
    }

    #[test]
    fn exclusion_many_threads() {
        exclusion_torture(SimLockKind::Mcs, Platform::Xeon, 20, 12);
    }
}

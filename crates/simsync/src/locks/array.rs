//! Simulated Anderson array lock.
//!
//! Each ticket maps to a slot line; a waiter spins (reads) on its own
//! slot, so the only cross-core traffic per handoff is the releasing
//! store on the successor's slot line.

use std::cell::RefCell;
use std::rc::Rc;

use ssync_sim::memory::LineId;
use ssync_sim::program::{Action, Env, SubProgram, WaitCond};
use ssync_sim::Sim;

use super::{LockConfig, SimLock, SimLockKind, POLL_PAUSE};

struct Inner {
    tail: LineId,
    slots: Vec<LineId>,
    /// Ticket held by each thread.
    tickets: RefCell<Vec<u64>>,
}

/// Simulated array lock: a tail counter line plus one line per slot.
pub struct SimArray {
    inner: Rc<Inner>,
}

impl SimArray {
    /// Allocates `n_threads + 1` slot lines (so the array never wraps
    /// onto an active waiter) plus the tail counter.
    pub fn new(sim: &mut Sim, cfg: &LockConfig) -> Self {
        let capacity = cfg.n_threads + 1;
        let tail = sim.alloc_line_for_core(cfg.home_core);
        let slots: Vec<LineId> = (0..capacity)
            .map(|_| sim.alloc_line_for_core(cfg.home_core))
            .collect();
        // Slot 0 starts runnable.
        sim.memory_mut().line_mut(slots[0]).value = 1;
        Self {
            inner: Rc::new(Inner {
                tail,
                slots,
                tickets: RefCell::new(vec![0; cfg.n_threads]),
            }),
        }
    }
}

impl SimLock for SimArray {
    fn kind(&self) -> SimLockKind {
        SimLockKind::Array
    }

    fn acquire(&self, tid: usize) -> Box<dyn SubProgram> {
        Box::new(ArrayAcquire {
            lock: Rc::clone(&self.inner),
            tid,
            st: 0,
            slot: 0,
        })
    }

    fn release(&self, tid: usize) -> Box<dyn SubProgram> {
        let ticket = self.inner.tickets.borrow()[tid];
        let next = self.inner.slots[(ticket as usize + 1) % self.inner.slots.len()];
        Box::new(ArrayRelease { next, done: false })
    }
}

struct ArrayAcquire {
    lock: Rc<Inner>,
    tid: usize,
    st: u8,
    slot: LineId,
}

impl SubProgram for ArrayAcquire {
    fn substep(&mut self, result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        match self.st {
            // Take a ticket.
            0 => {
                self.st = 1;
                Some(Action::Fai(self.lock.tail))
            }
            // Resolve the slot; park on it until it turns runnable.
            1 => {
                let ticket = result.expect("fai result");
                self.lock.tickets.borrow_mut()[self.tid] = ticket;
                self.slot = self.lock.slots[ticket as usize % self.lock.slots.len()];
                self.st = 2;
                Some(Action::SpinWait {
                    line: self.slot,
                    cond: WaitCond::Eq(1),
                    pause: POLL_PAUSE,
                })
            }
            // Runnable: re-arm the slot for its next ticket.
            2 => {
                debug_assert_eq!(result, Some(1));
                self.st = 4;
                Some(Action::Store(self.slot, 0))
            }
            // Slot re-armed: acquired.
            4 => None,
            _ => unreachable!(),
        }
    }
}

struct ArrayRelease {
    next: LineId,
    done: bool,
}

impl SubProgram for ArrayRelease {
    fn substep(&mut self, _result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        if self.done {
            None
        } else {
            self.done = true;
            Some(Action::Store(self.next, 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::exclusion_torture;
    use super::super::SimLockKind;
    use ssync_core::Platform;

    #[test]
    fn exclusion_on_all_platforms() {
        for p in Platform::ALL {
            exclusion_torture(SimLockKind::Array, p, 4, 50);
        }
    }

    #[test]
    fn exclusion_many_threads() {
        exclusion_torture(SimLockKind::Array, Platform::Tilera, 18, 12);
    }
}

//! Simulated test-and-set lock.
//!
//! Acquire is a bare atomic TAS retried until it returns 0; every retry
//! is a write-class operation that rips the line out of the previous
//! spinner's cache — the coherence storm the paper's Figure 5 shows
//! collapsing on the multi-sockets.

use ssync_sim::memory::LineId;
use ssync_sim::program::{Action, Env, SubProgram};
use ssync_sim::Sim;

use super::{LockConfig, SimLock, SimLockKind, POLL_PAUSE};

/// Simulated TAS lock: one flag line.
pub struct SimTas {
    line: LineId,
}

impl SimTas {
    /// Allocates the lock's flag line on the config's home node.
    pub fn new(sim: &mut Sim, cfg: &LockConfig) -> Self {
        Self {
            line: sim.alloc_line_for_core(cfg.home_core),
        }
    }
}

impl SimLock for SimTas {
    fn kind(&self) -> SimLockKind {
        SimLockKind::Tas
    }

    fn acquire(&self, _tid: usize) -> Box<dyn SubProgram> {
        Box::new(TasAcquire {
            line: self.line,
            st: 0,
        })
    }

    fn release(&self, _tid: usize) -> Box<dyn SubProgram> {
        Box::new(OneShot(Some(Action::Store(self.line, 0))))
    }
}

struct TasAcquire {
    line: LineId,
    st: u8,
}

impl SubProgram for TasAcquire {
    fn substep(&mut self, result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        match self.st {
            // Issue the TAS.
            0 => {
                self.st = 1;
                Some(Action::Tas(self.line))
            }
            // Check: 0 means we won.
            1 => {
                if result.expect("tas result") == 0 {
                    None
                } else {
                    self.st = 0;
                    // Brief pause, then retry the TAS (plain TAS has no
                    // back-off: it hammers the line).
                    Some(Action::Pause(POLL_PAUSE))
                }
            }
            _ => unreachable!(),
        }
    }
}

/// A sub-program that issues one action and finishes (shared by several
/// locks' release paths).
pub(crate) struct OneShot(pub Option<Action>);

impl SubProgram for OneShot {
    fn substep(&mut self, _result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        self.0.take()
    }
}

/// Convenience shared by simple spin locks whose state machines need the
/// line id; also used by tests.
impl SimTas {
    /// The flag line (tests / staging).
    pub fn line(&self) -> LineId {
        self.line
    }
}

#[allow(unused_imports)] // Re-exported for sibling modules.
pub(crate) use OneShot as _OneShot;

#[cfg(test)]
mod tests {
    use super::super::test_support::exclusion_torture;
    use super::super::SimLockKind;
    use ssync_core::Platform;

    #[test]
    fn exclusion_on_all_platforms() {
        for p in Platform::ALL {
            exclusion_torture(SimLockKind::Tas, p, 4, 50);
        }
    }

    #[test]
    fn exclusion_many_threads() {
        exclusion_torture(SimLockKind::Tas, Platform::Opteron, 12, 20);
    }
}

//! Simulated test-and-test-and-set lock with exponential back-off.
//!
//! The read-only spin phase keeps the flag line Shared among waiters (a
//! cached poll is an L1 hit in the model); only an observed-free flag
//! triggers the atomic swap, and failed swaps back off exponentially.
//! The spin phase is a single [`Action::SpinWait`]: the engine parks the
//! waiter on the flag line's wait-list and wakes it at the poll boundary
//! that observes the release, instead of simulating every poll.

use ssync_sim::memory::LineId;
use ssync_sim::program::{Action, Env, SubProgram, WaitCond};
use ssync_sim::Sim;

use super::tas::OneShot;
use super::{LockConfig, SimLock, SimLockKind, POLL_PAUSE};

/// Maximum exponential back-off pause, in cycles.
const MAX_BACKOFF: u64 = 4_096;

/// Simulated TTAS lock: one flag line.
pub struct SimTtas {
    line: LineId,
}

impl SimTtas {
    /// Allocates the lock's flag line on the config's home node.
    pub fn new(sim: &mut Sim, cfg: &LockConfig) -> Self {
        Self {
            line: sim.alloc_line_for_core(cfg.home_core),
        }
    }
}

impl SimLock for SimTtas {
    fn kind(&self) -> SimLockKind {
        SimLockKind::Ttas
    }

    fn acquire(&self, _tid: usize) -> Box<dyn SubProgram> {
        Box::new(TtasAcquire {
            line: self.line,
            st: 0,
            backoff: 32,
        })
    }

    fn release(&self, _tid: usize) -> Box<dyn SubProgram> {
        Box::new(OneShot(Some(Action::Store(self.line, 0))))
    }
}

struct TtasAcquire {
    line: LineId,
    st: u8,
    backoff: u64,
}

impl SubProgram for TtasAcquire {
    fn substep(&mut self, result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        match self.st {
            // Read phase: park on the flag until a release stores 0.
            0 => {
                self.st = 1;
                Some(Action::SpinWait {
                    line: self.line,
                    cond: WaitCond::Eq(0),
                    pause: POLL_PAUSE,
                })
            }
            // Flag observed free: try the swap.
            1 => {
                debug_assert_eq!(result, Some(0));
                self.st = 2;
                Some(Action::Tas(self.line))
            }
            // Swap outcome.
            2 => {
                if result.expect("tas result") == 0 {
                    return None;
                }
                // Lost the race: exponential back-off, then re-read.
                let pause = self.backoff;
                self.backoff = (self.backoff * 2).min(MAX_BACKOFF);
                self.st = 0;
                Some(Action::Pause(pause))
            }
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::exclusion_torture;
    use super::super::SimLockKind;
    use ssync_core::Platform;

    #[test]
    fn exclusion_on_all_platforms() {
        for p in Platform::ALL {
            exclusion_torture(SimLockKind::Ttas, p, 4, 50);
        }
    }

    #[test]
    fn exclusion_many_threads() {
        exclusion_torture(SimLockKind::Ttas, Platform::Xeon, 16, 15);
    }
}

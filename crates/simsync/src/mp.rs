//! Simulated `libssmp`: message passing over cache coherence.
//!
//! A channel is one cache line acting as a one-directional, single-writer
//! single-reader buffer: value 0 means empty, anything else is a message
//! (the real `libssmp` uses a flag byte plus a cache-line payload; one
//! simulated line captures the same transfer pattern). A send spins until
//! the buffer drains, then stores the message; a receive spins until a
//! message appears, reads it, and clears the buffer.
//!
//! This reproduces the paper's Section 6.2 cost anatomy: a one-way
//! message costs ~2 cache-line transfers (the receiver's clearing store
//! pulls the line away from the sender; the sender's next store pulls it
//! back), and a round-trip ~4.
//!
//! On the Tilera, [`HwChannel`] instead uses the engine's hardware
//! message actions (iMesh user-level network).
//!
//! Blocking waits (send on a full buffer, receive on an empty one) use
//! [`Action::SpinWait`], so a polling endpoint parks on the buffer
//! line's wait-list and the partner's store wakes it — one event per
//! transfer instead of one per poll.

use std::cell::Cell;
use std::rc::Rc;

use ssync_sim::memory::LineId;
use ssync_sim::program::{Action, Env, SubProgram, WaitCond};
use ssync_sim::Sim;

/// Cycles between polls of a not-yet-ready buffer.
const MP_POLL_PAUSE: u64 = 4;

/// A one-directional cache-line channel.
///
/// The last received message is available through
/// [`SsmpChannel::last_received`] after a `recv` sub-program completes.
#[derive(Clone)]
pub struct SsmpChannel {
    line: LineId,
    last: Rc<Cell<u64>>,
}

impl SsmpChannel {
    /// Allocates the buffer line local to the *receiver*'s core, the
    /// placement `libssmp` uses after the Section 5 analysis.
    pub fn new(sim: &mut Sim, receiver_core: usize) -> Self {
        Self {
            line: sim.alloc_line_for_core(receiver_core),
            last: Rc::new(Cell::new(0)),
        }
    }

    /// The buffer's line id (experiment staging).
    pub fn line(&self) -> LineId {
        self.line
    }

    /// The payload delivered by the most recently completed `recv`.
    pub fn last_received(&self) -> u64 {
        self.last.get()
    }

    /// Sends `payload` (must be non-zero: 0 encodes "empty").
    pub fn send(&self, payload: u64) -> Box<dyn SubProgram> {
        assert_ne!(payload, 0, "payload 0 is the empty marker");
        Box::new(SsmpSend {
            line: self.line,
            payload,
            stamped: false,
            st: 0,
        })
    }

    /// Sends the current simulated time (+1) as payload, stamped at the
    /// moment the buffer store is issued — i.e. *after* any wait for the
    /// buffer to drain. The latency benchmarks use this so that one-way
    /// latency measures the transfer, not the sender's queueing.
    pub fn send_stamped(&self) -> Box<dyn SubProgram> {
        Box::new(SsmpSend {
            line: self.line,
            payload: 0,
            stamped: true,
            st: 0,
        })
    }

    /// Receives the next message; the payload lands in
    /// [`SsmpChannel::last_received`].
    pub fn recv(&self) -> Box<dyn SubProgram> {
        Box::new(SsmpRecv {
            line: self.line,
            last: Rc::clone(&self.last),
            st: 0,
        })
    }

    /// Non-blocking probe + receive: completes with `last_received() = 0`
    /// if no message is waiting (used by servers polling many clients).
    pub fn try_recv(&self) -> Box<dyn SubProgram> {
        Box::new(SsmpTryRecv {
            line: self.line,
            last: Rc::clone(&self.last),
            st: 0,
        })
    }
}

struct SsmpSend {
    line: LineId,
    payload: u64,
    stamped: bool,
    st: u8,
}

impl SubProgram for SsmpSend {
    fn substep(&mut self, result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        match self.st {
            // Wait for the buffer to drain.
            0 => {
                self.st = 1;
                Some(Action::SpinWait {
                    line: self.line,
                    cond: WaitCond::Eq(0),
                    pause: MP_POLL_PAUSE,
                })
            }
            // Empty: store the message.
            1 => {
                debug_assert_eq!(result, Some(0));
                self.st = 2;
                let payload = if self.stamped {
                    _env.now + 1
                } else {
                    self.payload
                };
                Some(Action::Store(self.line, payload))
            }
            // Message stored: sent.
            2 => None,
            _ => unreachable!(),
        }
    }
}

struct SsmpRecv {
    line: LineId,
    last: Rc<Cell<u64>>,
    st: u8,
}

impl SubProgram for SsmpRecv {
    fn substep(&mut self, result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        match self.st {
            // Wait for a message to land.
            0 => {
                self.st = 1;
                Some(Action::SpinWait {
                    line: self.line,
                    cond: WaitCond::Ne(0),
                    pause: MP_POLL_PAUSE,
                })
            }
            1 => {
                let v = result.expect("spin result");
                debug_assert_ne!(v, 0);
                self.last.set(v);
                self.st = 2;
                // Drain the buffer for the next message.
                Some(Action::Store(self.line, 0))
            }
            2 => None,
            _ => unreachable!(),
        }
    }
}

struct SsmpTryRecv {
    line: LineId,
    last: Rc<Cell<u64>>,
    st: u8,
}

impl SubProgram for SsmpTryRecv {
    fn substep(&mut self, result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        match self.st {
            0 => {
                self.st = 1;
                Some(Action::Load(self.line))
            }
            1 => {
                let v = result.expect("load result");
                self.last.set(v);
                if v != 0 {
                    self.st = 2;
                    Some(Action::Store(self.line, 0))
                } else {
                    None
                }
            }
            2 => None,
            _ => unreachable!(),
        }
    }
}

/// A hardware message channel (Tilera iMesh): a thin wrapper over the
/// engine's `HwSend`/`HwRecv` actions with the same sub-program interface
/// as [`SsmpChannel`].
#[derive(Clone)]
pub struct HwChannel {
    /// Receiving thread id.
    pub to: usize,
    last: Rc<Cell<u64>>,
}

impl HwChannel {
    /// Creates a channel addressed to thread `to`.
    pub fn new(to: usize) -> Self {
        Self {
            to,
            last: Rc::new(Cell::new(0)),
        }
    }

    /// The payload delivered by the most recently completed `recv`.
    pub fn last_received(&self) -> u64 {
        self.last.get()
    }

    /// Sends `payload` to the channel's receiver thread.
    pub fn send(&self, payload: u64) -> Box<dyn SubProgram> {
        Box::new(HwSendSp {
            to: self.to,
            payload,
            done: false,
        })
    }

    /// Receives the next hardware message addressed to the *calling*
    /// thread (the engine queues per thread id).
    pub fn recv(&self) -> Box<dyn SubProgram> {
        Box::new(HwRecvSp {
            last: Rc::clone(&self.last),
            st: 0,
        })
    }
}

struct HwSendSp {
    to: usize,
    payload: u64,
    done: bool,
}

impl SubProgram for HwSendSp {
    fn substep(&mut self, _result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        if self.done {
            None
        } else {
            self.done = true;
            Some(Action::HwSend {
                to: self.to,
                payload: self.payload,
            })
        }
    }
}

struct HwRecvSp {
    last: Rc<Cell<u64>>,
    st: u8,
}

impl SubProgram for HwRecvSp {
    fn substep(&mut self, result: Option<u64>, _env: &mut Env<'_>) -> Option<Action> {
        match self.st {
            0 => {
                self.st = 1;
                Some(Action::HwRecv)
            }
            1 => {
                self.last.set(result.expect("hw message payload"));
                None
            }
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_core::Platform;
    use ssync_sim::program::{fn_program, Program};

    /// Drives a single sub-program to completion, then `Done`.
    struct Driver {
        sub: Box<dyn SubProgram>,
    }

    impl Program for Driver {
        fn step(&mut self, result: Option<u64>, env: &mut Env<'_>) -> Action {
            match self.sub.substep(result, env) {
                Some(a) => a,
                None => Action::Done,
            }
        }
    }

    #[test]
    fn ssmp_one_way_delivers() {
        let mut sim = Sim::new(Platform::Xeon, 3);
        let ch = SsmpChannel::new(&mut sim, 1);
        sim.spawn_on_core(0, Box::new(Driver { sub: ch.send(42) }));
        sim.spawn_on_core(1, Box::new(Driver { sub: ch.recv() }));
        sim.run_to_completion();
        assert_eq!(ch.last_received(), 42);
        // Buffer drained.
        assert_eq!(sim.memory().line(ch.line()).value, 0);
    }

    #[test]
    fn ssmp_try_recv_empty_and_full() {
        let mut sim = Sim::new(Platform::Opteron, 3);
        let ch = SsmpChannel::new(&mut sim, 0);
        sim.spawn_on_core(0, Box::new(Driver { sub: ch.try_recv() }));
        sim.run_to_completion();
        assert_eq!(ch.last_received(), 0);
        let mut sim = Sim::new(Platform::Opteron, 3);
        let ch = SsmpChannel::new(&mut sim, 0);
        sim.memory_mut().line_mut(ch.line()).value = 9;
        sim.spawn_on_core(0, Box::new(Driver { sub: ch.try_recv() }));
        sim.run_to_completion();
        assert_eq!(ch.last_received(), 9);
    }

    #[test]
    fn ssmp_send_blocks_until_drained() {
        // Receiver starts late; sender must wait for its first message to
        // drain before sending the second.
        let mut sim = Sim::new(Platform::Niagara, 3);
        let ch = SsmpChannel::new(&mut sim, 8);
        let ch2 = ch.clone();
        let mut sent = 0;
        sim.spawn_on_core(0, {
            let ch = ch.clone();
            let mut sub: Option<Box<dyn SubProgram>> = None;
            fn_program(move |r, env| {
                let mut res = r;
                loop {
                    if sub.is_none() {
                        if sent == 2 {
                            return Action::Done;
                        }
                        sent += 1;
                        sub = Some(ch.send(sent));
                    }
                    match sub.as_mut().unwrap().substep(res.take(), env) {
                        Some(a) => return a,
                        None => sub = None,
                    }
                }
            })
        });
        let mut got = Vec::new();
        sim.spawn_on_core(8, {
            let mut sub: Option<Box<dyn SubProgram>> = None;
            fn_program(move |r, env| {
                let mut res = r;
                loop {
                    if sub.is_none() {
                        if got.len() == 2 {
                            return Action::Done;
                        }
                        sub = Some(ch2.recv());
                    }
                    match sub.as_mut().unwrap().substep(res.take(), env) {
                        Some(a) => return a,
                        None => {
                            got.push(ch2.last_received());
                            sub = None;
                        }
                    }
                }
            })
        });
        sim.run_to_completion();
        // Both messages got through in order (1 then 2): the channel is
        // FIFO because the sender cannot overwrite an undrained buffer.
        assert_eq!(ch.last_received(), 2);
    }

    #[test]
    fn hw_channel_roundtrip_on_tilera() {
        let mut sim = Sim::new(Platform::Tilera, 3);
        let to_server = HwChannel::new(1);
        let to_client = HwChannel::new(0);
        let (ts, tc) = (to_server.clone(), to_client.clone());
        let mut st = 0;
        sim.spawn_on_core(0, {
            let mut sub: Option<Box<dyn SubProgram>> = None;
            fn_program(move |r, env| {
                let mut res = r;
                loop {
                    if sub.is_none() {
                        sub = match st {
                            0 => Some(ts.send(5)),
                            1 => Some(tc.recv()),
                            _ => return Action::Done,
                        };
                    }
                    match sub.as_mut().unwrap().substep(res.take(), env) {
                        Some(a) => return a,
                        None => {
                            st += 1;
                            sub = None;
                        }
                    }
                }
            })
        });
        let (ts2, tc2) = (to_server.clone(), to_client.clone());
        let mut st2 = 0;
        sim.spawn_on_core(35, {
            let mut sub: Option<Box<dyn SubProgram>> = None;
            fn_program(move |r, env| {
                let mut res = r;
                loop {
                    if sub.is_none() {
                        sub = match st2 {
                            0 => Some(ts2.recv()),
                            1 => Some(tc2.send(ts2.last_received() + 1)),
                            _ => return Action::Done,
                        };
                    }
                    match sub.as_mut().unwrap().substep(res.take(), env) {
                        Some(a) => return a,
                        None => {
                            st2 += 1;
                            sub = None;
                        }
                    }
                }
            })
        });
        sim.run_to_completion();
        assert_eq!(to_client.last_received(), 6);
    }
}

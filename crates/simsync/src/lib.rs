//! # ssync-simsync
//!
//! The SSYNC software stack of the paper, re-expressed as `ssync-sim`
//! programs so that the study's figures can be regenerated on the
//! simulated platforms:
//!
//! * [`locks`] — all nine lock algorithms (plus the Figure 3 ticket-lock
//!   variants) as simulator state machines implementing [`locks::SimLock`].
//! * [`mp`] — `libssmp`: message passing over cache-line buffers, plus
//!   the Tilera's hardware channels.
//! * [`workloads`] — the experiment programs: lock stress (Figures 3 and
//!   5–8), uncontested acquisition (Figure 6), client-server messaging
//!   (Figures 9/10), the `ssht` hash table (Figure 11) and the
//!   Memcached-model KV store (Figure 12).
//!
//! The native, real-atomics implementations of the same algorithms live
//! in `ssync-locks` / `ssync-mp` / `ssync-ht` / `ssync-kv`; this crate is
//! their simulator twin, structured so each algorithm is a small explicit
//! state machine over [`ssync_sim::Action`]s.

pub mod locks;
pub mod mp;
pub mod workloads;

pub use locks::{make_lock, SimLock, SimLockKind};

//! Model-checked interleavings of the resharding cutover protocol.
//!
//! Compiled only under `RUSTFLAGS='--cfg ssync_chk'`. These models
//! drive the real [`ShardMap`] — whose atomics are the checker's
//! shadow atomics under this cfg — through the freeze / round-tagged
//! quiesce / cutover handshake, with a compressed node loop standing
//! in for `serve_cluster_node` (same loads, same order, none of the
//! transport).
//!
//! The first test is the tentpole property: once the coordinator has
//! accepted a source's round-tagged quiesce acknowledgement and cut
//! the map over, **no write can have landed on the old owner beyond
//! the acknowledged high-water mark** — the final delta the
//! coordinator drained at that mark is complete, so an acknowledged
//! write cannot be left behind by the migration. The proof hinges on
//! the node's write path loading the freeze mask *before* routing:
//! seeing the mask clear (Acquire) after the coordinator's unfreeze
//! (Release, sequenced after the cutover CAS) forces the route load to
//! see the new map, bouncing the write to the new owner.
//!
//! The second test rips that load order out — route first, mask second
//! — and the checker must find the lost-write interleaving: the node
//! routes under the old map, the coordinator drains, cuts, and
//! unfreezes in the window between the two loads, and the write lands
//! on a shard that no longer owns it. This is the false-negative guard
//! proving the mask-before-route discipline (and not some accident of
//! the transport) carries the property.
//!
//! Run with:
//! `RUSTFLAGS='--cfg ssync_chk' cargo test -p ssync-cluster --test chk_models`
#![cfg(ssync_chk)]

use std::sync::Arc;

use ssync_chk::{thread, Builder};
use ssync_cluster::ShardMap;
use ssync_srv::{slot_of, ROUTE_SLOTS};

/// The first key routing to `slot` — slot 1 moves to shard 1 in a
/// 1 → 2 split, so its writes are the contended ones.
fn key_in_slot(slot: usize) -> u64 {
    (0u64..)
        .find(|&k| slot_of(k) == slot)
        .expect("slot reachable")
}

/// The mod-2 ownership table a 1 → 2 split stages.
fn owners_mod2() -> [usize; ROUTE_SLOTS] {
    let mut owners = [0usize; ROUTE_SLOTS];
    for (slot, owner) in owners.iter_mut().enumerate() {
        *owner = slot % 2;
    }
    owners
}

/// One write attempt at node 0 with the server's fencing checks;
/// `mask_first` selects the load order under test. Returns whether
/// the write executed (landed in the old owner's store and log).
fn try_write(map: &ShardMap, key: u64, mask_first: bool) -> bool {
    let (frozen, owner) = if mask_first {
        let frozen = map.frozen();
        let (owner, _) = map.route(key);
        (frozen, owner)
    } else {
        // The broken order the violation twin checks.
        let (owner, _) = map.route(key);
        (map.frozen(), owner)
    };
    owner == 0 && frozen & (1 << slot_of(key)) == 0
}

/// The whole handshake, node and coordinator concurrent. Asserts the
/// drained-high-water-mark property whenever a cutover completed.
fn cutover_protocol(mask_first: bool) {
    let map = Arc::new(ShardMap::new(1));
    let key = key_in_slot(1);
    let mask = 1u64 << slot_of(key);
    let node = {
        let map = Arc::clone(&map);
        thread::spawn(move || {
            // Two passes of the serve loop, essentials only: the
            // round-before-mask quiesce handshake, then one write
            // attempt against the live fences.
            let mut executed = 0u64;
            let mut acked = 0u64;
            for _ in 0..2 {
                let round = map.round();
                if round != acked && map.frozen() & mask != 0 {
                    map.publish_quiesced(0, round, executed);
                    acked = round;
                }
                if try_write(&map, key, mask_first) {
                    executed += 1;
                }
            }
            executed
        })
    };
    // The coordinator: freeze, open the round, and poll for the ack a
    // bounded number of times (schedules that never see it skip the
    // cutover and prove nothing — the checker also runs the ones that
    // do).
    map.freeze(mask);
    let round = map.begin_round();
    let mut drained = None;
    for _ in 0..4 {
        match map.quiesced_of(0) {
            Some((r, hwm)) if r == round => {
                // The final delta reads the source log through `hwm`
                // here; then one CAS publishes the new map.
                map.stage(&owners_mod2());
                map.try_cutover(map.view(), 2).expect("sole coordinator");
                map.unfreeze(mask);
                drained = Some(hwm);
                break;
            }
            _ => thread::yield_now(),
        }
    }
    let executed = node.join();
    if let Some(hwm) = drained {
        assert_eq!(
            executed, hwm,
            "a write landed on the old owner after its final delta"
        );
    }
}

/// Mask-before-route: in every interleaving where the cutover
/// completed, the acknowledged high-water mark covers everything the
/// old owner ever executed.
#[test]
fn fenced_cutover_drains_every_old_owner_write() {
    let report = Builder::new().check(|| cutover_protocol(true));
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("cutover fence model: {} executions", report.executions);
}

/// Route-before-mask must lose a write: the coordinator drains, cuts,
/// and unfreezes between the node's two loads, and the stale-routed
/// write lands on the old owner after its final delta was read.
#[test]
fn unfenced_route_before_mask_loses_a_write() {
    let v = Builder::new().expect_violation(|| cutover_protocol(false));
    assert!(v.message.contains("old owner"), "{v}");
    eprintln!("unfenced lost write found in execution {}", v.execution);
}

/// Two coordinators race the same staged cutover: the epoch CAS lets
/// exactly one through, and the loser observes the winner's view —
/// the single-winner guarantee `run_reshard_coordinator` leans on.
#[test]
fn racing_cutovers_publish_exactly_one_epoch() {
    let report = Builder::new().check(|| {
        let map = Arc::new(ShardMap::new(1));
        let view = map.view();
        let rival = {
            let map = Arc::clone(&map);
            thread::spawn(move || {
                map.stage(&owners_mod2());
                map.try_cutover(view, 2).is_ok()
            })
        };
        map.stage(&owners_mod2());
        let mine = map.try_cutover(view, 2).is_ok();
        let theirs = rival.join();
        assert!(mine ^ theirs, "exactly one cutover must win");
        assert_eq!(map.epoch(), 2, "the winner's epoch published");
        assert_eq!(map.num_shards(), 2);
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("cutover race model: {} executions", report.executions);
}

//! Cluster node servers and the map-following client.
//!
//! One [`serve_cluster_node`] thread per shard, over the ring
//! transport. A node is the `ssync-srv` shard server plus the three
//! duties elastic routing adds:
//!
//! * **Ownership fencing** — every request is routed against the live
//!   [`ShardMap`] before executing; a key whose slot the node does not
//!   own under its current map is bounced with
//!   [`Response::WrongShard`] (nothing executes), and the client
//!   refetches the map and retries. An operation is therefore executed
//!   by exactly the node that acknowledges it.
//! * **The freeze protocol** — writes to slots frozen for a
//!   migration's final drain are *deferred* (parked in the node, the
//!   client blocked on its reply) and re-examined each loop pass:
//!   after an aborted migration they execute here; after a cutover
//!   the node no longer owns them and they bounce to the new owner.
//!   Reads keep being served throughout — the freeze window is
//!   write-unavailability only, and it is bounded by the final delta
//!   drain, not the whole copy.
//! * **The migration stream** — a per-node SPSC ring the coordinator
//!   replays `Replicate`/`ReplicateDelete` frames over. Entries apply
//!   through the store's per-key version gate
//!   ([`KvStore::apply_replicated`]), so replayed duplicates after a
//!   faulted attempt drop as stale; progress is published to the map
//!   so the coordinator can prove the stream drained.
//!
//! Ordering discipline (the heart of the zero-lost-writes argument;
//! model-checked in `tests/chk_models.rs`): the write path loads the
//! freeze mask *before* routing. If the mask already shows this
//! round's freeze, the write defers — safe. If it does not, either the
//! freeze is not up yet (the write lands before the node's quiesce ack
//! and the final delta carries it), or the mask was cleared *after*
//! the cutover — and because the coordinator unfreezes only after the
//! cutover CAS, the Acquire mask load then guarantees the route read
//! sees the new map and the write bounces to the new owner. In no
//! interleaving does a moved-slot write land on the old owner after
//! the final delta was read.

use core::cell::{Cell, RefCell};

use bytes::Bytes;

use ssync_core::{ParkingWait, RegistrySnapshot};
use ssync_kv::KvStore;
use ssync_locks::RawLock;
use ssync_mp::{
    ring_channel, Message, MsgReceiver, MsgSender, RingReceiver, RingSender, ServerHub,
};
use ssync_repl::{LogEntry, LogOp, OpLog};
use ssync_srv::router::key_bytes;
use ssync_srv::slot_of;
use ssync_srv::wire::{Request, Response, WireError};

use crate::map::{MapSnapshot, ShardMap};
use crate::sync::atomic::Ordering;

/// A cluster node's side of the mesh: per-client request/reply rings
/// plus the coordinator's migration stream.
pub struct ClusterNodeEndpoint {
    requests: Vec<RingReceiver>,
    replies: Vec<RingSender>,
    migration: RingReceiver,
}

/// One client's per-shard `(request sender, reply receiver)` pairs.
pub type ClientConn = Vec<(RingSender, RingReceiver)>;

/// What [`cluster_mesh`] returns: node endpoints (element `s` serves
/// shard `s`), client connections, and the per-shard migration-stream
/// senders the coordinator keeps.
pub type ClusterMesh = (Vec<ClusterNodeEndpoint>, Vec<ClientConn>, Vec<RingSender>);

/// Builds the ring mesh for `shards` nodes × `clients` clients, with a
/// `mig_depth`-deep migration stream into every node. Every client
/// gets a connection to every node — including shards that own nothing
/// under the current map, so a fleet can grow without re-wiring.
///
/// # Panics
///
/// Panics if any dimension is zero or a depth is not a power of two.
pub fn cluster_mesh(shards: usize, clients: usize, depth: usize, mig_depth: usize) -> ClusterMesh {
    assert!(shards > 0 && clients > 0);
    let mut endpoints: Vec<ClusterNodeEndpoint> = Vec::with_capacity(shards);
    let mut mig_senders = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (mig_tx, mig_rx) = ring_channel(mig_depth);
        mig_senders.push(mig_tx);
        endpoints.push(ClusterNodeEndpoint {
            requests: Vec::with_capacity(clients),
            replies: Vec::with_capacity(clients),
            migration: mig_rx,
        });
    }
    let mut conns: Vec<ClientConn> = Vec::with_capacity(clients);
    for _ in 0..clients {
        let mut per_shard = Vec::with_capacity(shards);
        for endpoint in endpoints.iter_mut() {
            let (req_tx, req_rx) = ring_channel(depth);
            let (rep_tx, rep_rx) = ring_channel(depth);
            endpoint.requests.push(req_rx);
            endpoint.replies.push(rep_tx);
            per_shard.push((req_tx, rep_rx));
        }
        conns.push(per_shard);
    }
    (endpoints, conns, mig_senders)
}

/// What one cluster node did before all its clients stopped.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NodeReport {
    /// Request messages served (a multi-get head counts once).
    pub requests: u64,
    /// Key-operations executed.
    pub key_ops: u64,
    /// Undecodable or out-of-protocol frames answered with
    /// [`Response::Malformed`].
    pub malformed: u64,
    /// Requests bounced with [`Response::WrongShard`].
    pub wrong_shard_redirects: u64,
    /// Writes deferred at least once by a migration freeze.
    pub migration_ops_deferred: u64,
    /// Migration-stream entries processed (applied or version-gated).
    pub migration_entries: u64,
}

/// What executing one request produced.
enum Served {
    /// Responses to send, in order.
    Replies(Vec<Response>),
    /// The write's slot is frozen: park the request, reply later.
    Deferred(Request),
}

/// Runs one cluster node: serve clients, drain the migration stream,
/// and keep the freeze handshake current, until every client sent
/// [`Request::Stop`]. Returns once the last client stops.
pub fn serve_cluster_node<R: RawLock + Default>(
    me: usize,
    store: &KvStore<R>,
    log: &OpLog,
    map: &ShardMap,
    endpoint: ClusterNodeEndpoint,
) -> NodeReport {
    let ClusterNodeEndpoint {
        requests,
        replies,
        migration,
    } = endpoint;
    let mut live = requests.len();
    let mut hub = ServerHub::new(requests);
    let mut report = NodeReport::default();
    let mut frames: Vec<Message> = Vec::new();
    let mut deferred: Vec<(usize, Request)> = Vec::new();
    let mut wait = ParkingWait::new();
    // Highest op-log version this node assigned — what it quiesces at.
    let mut last_version = 0u64;
    // The freeze round this node last acknowledged.
    let mut acked_round = 0u64;
    // Cumulative migration-stream entries processed.
    let mut mig_processed = 0u64;
    // Online reclamation cadence: one epoch advance-and-collect pass
    // per RECLAIM_PERIOD progressed loop turns — client writes and
    // migration-stream applies both retire displaced nodes, and the
    // pass keeps that backlog bounded without a quiescent point.
    const RECLAIM_PERIOD: u64 = 1024;
    let mut since_reclaim = 0u64;
    while live > 0 {
        let mut progressed = false;
        // Quiesce handshake: reading the round first (Acquire) is what
        // guarantees the freeze bits of that round are visible, and —
        // by per-object coherence on the single-threaded node — every
        // later mask load this pass and beyond still sees them, so no
        // frozen-slot write can slip through after this ack.
        let round = map.round();
        if round != acked_round {
            let mine = owned_mask(map, me);
            if map.frozen() & mine != 0 {
                map.publish_quiesced(me, round, last_version);
                acked_round = round;
                progressed = true;
            }
        }
        // Drain the migration stream.
        while let Some(head) = migration.try_recv() {
            progressed = true;
            match Request::decode(head, || migration.recv()) {
                Ok(Request::Replicate {
                    key,
                    version,
                    value,
                }) => {
                    store.apply_replicated(&key_bytes(key), version, Some(&value));
                }
                Ok(Request::ReplicateDelete { key, version }) => {
                    store.apply_replicated(&key_bytes(key), version, None);
                }
                _ => report.malformed += 1,
            }
            mig_processed += 1;
            report.migration_entries += 1;
            map.publish_migrated(me, mig_processed);
        }
        // Re-examine parked writes: an aborted migration unfreezes
        // them here, a completed one bounces them to the new owner.
        if !deferred.is_empty() {
            let mut still = Vec::new();
            for (client, request) in deferred.drain(..) {
                match execute(me, store, log, map, request, &mut last_version, &mut report) {
                    Served::Replies(responses) => {
                        progressed = true;
                        reply(&replies[client], &responses, &mut frames);
                    }
                    Served::Deferred(request) => still.push((client, request)),
                }
            }
            deferred = still;
        }
        // Poll the clients once.
        if let Some((client, head)) = hub.try_recv_from_any() {
            progressed = true;
            match Request::decode(head, || hub.recv_from_subset(&[client]).1) {
                Err(_) => {
                    report.malformed += 1;
                    reply(&replies[client], &[Response::Malformed], &mut frames);
                }
                Ok(Request::Stop) => live -= 1,
                Ok(request) => {
                    report.requests += 1;
                    match execute(me, store, log, map, request, &mut last_version, &mut report) {
                        Served::Replies(responses) => {
                            reply(&replies[client], &responses, &mut frames);
                        }
                        Served::Deferred(request) => {
                            report.migration_ops_deferred += 1;
                            store
                                .stats()
                                .migration_ops_deferred
                                .fetch_add(1, Ordering::Relaxed);
                            deferred.push((client, request));
                        }
                    }
                }
            }
        }
        if progressed {
            since_reclaim += 1;
            if since_reclaim >= RECLAIM_PERIOD {
                since_reclaim = 0;
                store.reclaim_pass();
            }
            wait.reset();
        } else {
            wait.snooze();
        }
    }
    report
}

/// The slots `shard` owns under the current map, as a bitmask.
fn owned_mask(map: &ShardMap, shard: usize) -> u64 {
    map.snapshot()
        .owners
        .iter()
        .enumerate()
        .filter(|&(_, &owner)| owner == shard)
        .fold(0, |mask, (slot, _)| mask | 1 << slot)
}

/// Encodes and sends each response to one client, in order.
fn reply(tx: &RingSender, responses: &[Response], frames: &mut Vec<Message>) {
    for response in responses {
        response.encode_into(frames);
        for &frame in frames.iter() {
            tx.send(frame);
        }
    }
}

/// Executes one request at node `me`, or asks for it to be deferred.
fn execute<R: RawLock + Default>(
    me: usize,
    store: &KvStore<R>,
    log: &OpLog,
    map: &ShardMap,
    request: Request,
    last_version: &mut u64,
    report: &mut NodeReport,
) -> Served {
    let bounce = |at: u64, report: &mut NodeReport| {
        report.wrong_shard_redirects += 1;
        store
            .stats()
            .wrong_shard_redirects
            .fetch_add(1, Ordering::Relaxed);
        Response::WrongShard { map_epoch: at }
    };
    // The read path: ownership is fenced, the freeze is not — reads
    // stay available for the whole migration.
    let lookup = |key: u64, report: &mut NodeReport| {
        report.key_ops += 1;
        let (owner, at) = map.route(key);
        if owner != me {
            return bounce(at, report);
        }
        match store.get_with_version(&key_bytes(key)) {
            Some((version, value)) => Response::Value {
                version,
                value: value.as_ref().to_vec(),
            },
            None => Response::Miss,
        }
    };
    // The write path: the mask load MUST precede the route — see the
    // module docs for why the other order loses acknowledged writes.
    macro_rules! fence_write {
        ($key:expr, $request:expr) => {{
            let frozen = map.frozen();
            let (owner, at) = map.route($key);
            if owner != me {
                report.key_ops += 1;
                return Served::Replies(vec![bounce(at, report)]);
            }
            if frozen & (1 << slot_of($key)) != 0 {
                return Served::Deferred($request);
            }
            report.key_ops += 1;
        }};
    }
    match request {
        Request::Get { key } => Served::Replies(vec![lookup(key, report)]),
        // A timed read routes exactly like a plain one — the stamp only
        // shapes the client-side open-loop measurement. Cluster nodes
        // keep no per-node histograms; the latency split lives in the
        // single-shard service.
        Request::TimedGet { key, .. } => Served::Replies(vec![lookup(key, report)]),
        // Introspection: flatten the live report and store counters
        // into a registry snapshot, assembled only when asked for.
        Request::Stats => {
            let mut snap = RegistrySnapshot::default();
            let s = store.stats_snapshot();
            for (name, value) in [
                ("node.requests", report.requests),
                ("node.key_ops", report.key_ops),
                ("node.malformed", report.malformed),
                ("node.wrong_shard_redirects", report.wrong_shard_redirects),
                ("node.migration_ops_deferred", report.migration_ops_deferred),
                ("node.migration_entries", report.migration_entries),
                ("store.hits", s.hits),
                ("store.misses", s.misses),
                ("store.sets", s.sets),
                ("store.deletes", s.deletes),
                ("store.cas_failures", s.cas_failures),
                ("store.repl_applied", s.repl_applied),
                ("store.migration_ops_deferred", s.migration_ops_deferred),
                ("store.wrong_shard_redirects", s.wrong_shard_redirects),
                ("store.epochs_advanced", s.epochs_advanced),
                ("store.nodes_reclaimed", s.nodes_reclaimed),
                ("store.reclaim_backlog", s.reclaim_backlog),
            ] {
                snap.counters.push((name.to_string(), value));
            }
            Served::Replies(vec![Response::StatsReply {
                payload: snap.to_bytes(),
            }])
        }
        Request::MultiGet { keys } => Served::Replies(
            keys.iter()
                .map(|&key| lookup(key, report))
                .collect::<Vec<_>>(),
        ),
        Request::Set { key, value } => {
            fence_write!(key, Request::Set { key, value });
            let value = Bytes::from(value);
            let version = store.set(&key_bytes(key), value.clone());
            log.append(LogEntry {
                key,
                version,
                op: LogOp::Put(value),
            });
            *last_version = version;
            Served::Replies(vec![Response::Stored { version }])
        }
        Request::Cas {
            key,
            expected,
            value,
        } => {
            fence_write!(
                key,
                Request::Cas {
                    key,
                    expected,
                    value,
                }
            );
            let value = Bytes::from(value);
            Served::Replies(vec![
                match store.cas(&key_bytes(key), value.clone(), expected) {
                    Ok(version) => {
                        log.append(LogEntry {
                            key,
                            version,
                            op: LogOp::Put(value),
                        });
                        *last_version = version;
                        Response::Stored { version }
                    }
                    Err(current) => Response::CasFail { current },
                },
            ])
        }
        Request::Delete { key } => {
            fence_write!(key, Request::Delete { key });
            Served::Replies(vec![match store.delete_versioned(&key_bytes(key)) {
                Some(version) => {
                    log.append(LogEntry {
                        key,
                        version,
                        op: LogOp::Delete,
                    });
                    *last_version = version;
                    Response::Deleted { version }
                }
                None => Response::NotFound,
            }])
        }
        // Replication traffic arrives on the migration stream, never
        // on a client channel; anywhere else it is refused.
        Request::Replicate { .. }
        | Request::ReplicateDelete { .. }
        | Request::ReplGet { .. }
        | Request::ReplMultiGet { .. } => {
            report.malformed += 1;
            Served::Replies(vec![Response::Malformed])
        }
        Request::Stop => unreachable!("Stop is handled by the serve loop"),
    }
}

/// The map-following client: routes by a cached [`MapSnapshot`] and
/// chases [`Response::WrongShard`] redirects by refetching the shared
/// map — the elastic mirror of `ssync-repl`'s leader-chasing client.
/// An operation is retried verbatim until some node owns it; since a
/// bounced request executed nothing, the retry loop preserves
/// exactly-once execution at whichever node finally acknowledges.
pub struct ClusterClient<'a> {
    map: &'a ShardMap,
    cached: RefCell<MapSnapshot>,
    shards: ClientConn,
    frames: RefCell<Vec<Message>>,
    redirects: Cell<u64>,
}

impl<'a> ClusterClient<'a> {
    /// A client over one [`cluster_mesh`] connection set, primed with
    /// a fresh map snapshot.
    pub fn new(map: &'a ShardMap, shards: ClientConn) -> ClusterClient<'a> {
        assert!(!shards.is_empty());
        ClusterClient {
            cached: RefCell::new(map.snapshot()),
            map,
            shards,
            frames: RefCell::new(Vec::new()),
            redirects: Cell::new(0),
        }
    }

    /// `WrongShard` redirects chased so far — each one is a map
    /// refetch a resharding forced on this client.
    pub fn redirects(&self) -> u64 {
        self.redirects.get()
    }

    /// The epoch of the client's cached map.
    pub fn cached_epoch(&self) -> u64 {
        self.cached.borrow().epoch
    }

    /// Scrapes the live introspection snapshot of one node, by index.
    /// Any node answers regardless of what it owns — introspection is
    /// never routed.
    pub fn stats(&self, node: usize) -> Result<RegistrySnapshot, WireError> {
        self.send_request(node, &Request::Stats)?;
        match self.read_response(node)? {
            Response::StatsReply { payload } => {
                RegistrySnapshot::from_bytes(&payload).ok_or(WireError::UnexpectedResponse("Stats"))
            }
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Stats")),
        }
    }

    fn send_request(&self, shard: usize, request: &Request) -> Result<(), WireError> {
        let (tx, _) = &self.shards[shard];
        let mut frames = self.frames.borrow_mut();
        request.encode_into(&mut frames);
        tx.send_all_connected(&frames)
            .map_err(|_| WireError::Disconnected)
    }

    fn read_response(&self, shard: usize) -> Result<Response, WireError> {
        let (_, rx) = &self.shards[shard];
        let head = rx.recv_connected().map_err(|_| WireError::Disconnected)?;
        let mut dead = false;
        let resp = Response::decode(head, || match rx.recv_connected() {
            Ok(m) => m,
            Err(_) => {
                dead = true;
                [0; ssync_mp::MSG_WORDS]
            }
        })?;
        if dead {
            return Err(WireError::Disconnected);
        }
        Ok(resp)
    }

    /// One operation against whoever owns the key: route by the cached
    /// map, chase `WrongShard` redirects (refetching a map at least as
    /// fresh as the bouncing node's) until an owner executes.
    fn call_owner(&self, key: u64, request: &Request) -> Result<Response, WireError> {
        loop {
            let owner = self.cached.borrow().owner_of_key(key);
            self.send_request(owner, request)?;
            match self.read_response(owner)? {
                Response::WrongShard { map_epoch } => {
                    self.redirects.set(self.redirects.get() + 1);
                    // The shared map can trail the bouncer's view only
                    // momentarily; spin the refetch up to its floor.
                    loop {
                        let snap = self.map.snapshot();
                        let fresh = snap.epoch >= map_epoch;
                        *self.cached.borrow_mut() = snap;
                        if fresh {
                            break;
                        }
                        core::hint::spin_loop();
                    }
                }
                response => return Ok(response),
            }
        }
    }

    /// Looks a key up; `Some((version, value))` on a hit.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    pub fn get(&self, key: u64) -> Result<Option<(u64, Vec<u8>)>, WireError> {
        match self.call_owner(key, &Request::Get { key })? {
            Response::Value { version, value } => Ok(Some((version, value))),
            Response::Miss => Ok(None),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Get")),
        }
    }

    /// Stores a value; returns its new CAS version. Blocks while the
    /// key's slot is frozen mid-migration (the bounded unavailability
    /// window a cutover imposes on writes).
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    pub fn set(&self, key: u64, value: Vec<u8>) -> Result<u64, WireError> {
        match self.call_owner(key, &Request::Set { key, value })? {
            Response::Stored { version } => Ok(version),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Set")),
        }
    }

    /// Compare-and-set; the inner result is the CAS outcome.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    pub fn cas(
        &self,
        key: u64,
        value: Vec<u8>,
        expected: u64,
    ) -> Result<Result<u64, u64>, WireError> {
        match self.call_owner(
            key,
            &Request::Cas {
                key,
                expected,
                value,
            },
        )? {
            Response::Stored { version } => Ok(Ok(version)),
            Response::CasFail { current } => Ok(Err(current)),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Cas")),
        }
    }

    /// Deletes a key; `Some(tombstone_version)` if it existed.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    pub fn delete(&self, key: u64) -> Result<Option<u64>, WireError> {
        match self.call_owner(key, &Request::Delete { key })? {
            Response::Deleted { version } => Ok(Some(version)),
            Response::NotFound => Ok(None),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Delete")),
        }
    }

    /// Tells every node this client is done, consuming the client.
    pub fn close(self) {
        for shard in 0..self.shards.len() {
            let _ = self.send_request(shard, &Request::Stop);
        }
    }
}

impl ssync_srv::KvClient for ClusterClient<'_> {
    fn get(&self, key: u64) -> Result<Option<(u64, Vec<u8>)>, WireError> {
        ClusterClient::get(self, key)
    }

    /// Key-by-key under elastic routing: a batch frame can only target
    /// one node, and mid-migration the members of a batch may be owned
    /// by different nodes under different epochs.
    fn get_many(&self, keys: &[u64]) -> Result<Vec<Option<(u64, Vec<u8>)>>, WireError> {
        keys.iter()
            .map(|&key| ClusterClient::get(self, key))
            .collect()
    }

    fn set(&self, key: u64, value: Vec<u8>) -> Result<u64, WireError> {
        ClusterClient::set(self, key, value)
    }

    fn cas(&self, key: u64, value: Vec<u8>, expected: u64) -> Result<Result<u64, u64>, WireError> {
        ClusterClient::cas(self, key, value, expected)
    }

    fn delete(&self, key: u64) -> Result<Option<u64>, WireError> {
        ClusterClient::delete(self, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_locks::TicketLock;

    fn stores(n: usize) -> Vec<KvStore<TicketLock>> {
        (0..n).map(|_| KvStore::new(64, 8)).collect()
    }

    fn logs(n: usize) -> Vec<OpLog> {
        (0..n).map(|_| OpLog::new(4096)).collect()
    }

    #[test]
    fn routes_and_serves_under_the_initial_map() {
        let map = ShardMap::new(2);
        let stores = stores(2);
        let logs = logs(2);
        let (endpoints, mut conns, _mig) = cluster_mesh(2, 1, 16, 16);
        std::thread::scope(|s| {
            for (shard, endpoint) in endpoints.into_iter().enumerate() {
                let (store, log, map) = (&stores[shard], &logs[shard], &map);
                s.spawn(move || serve_cluster_node(shard, store, log, map, endpoint));
            }
            let client = ClusterClient::new(&map, conns.pop().unwrap());
            assert!(client.get(1).unwrap().is_none());
            let v1 = client.set(1, b"one".to_vec()).unwrap();
            let (v, value) = client.get(1).unwrap().unwrap();
            assert_eq!((v, value.as_slice()), (v1, b"one".as_slice()));
            let v2 = client.cas(1, b"two".to_vec(), v1).unwrap().unwrap();
            assert_eq!(client.cas(1, b"x".to_vec(), v1).unwrap(), Err(v2));
            assert!(client.delete(1).unwrap().is_some());
            assert!(client.delete(1).unwrap().is_none());
            assert_eq!(client.redirects(), 0);
            client.close();
        });
        // Writes landed on the store owning the key's slot, and each
        // state-changing op appended to that shard's log.
        let owner = map.owner_of(slot_of(1));
        assert_eq!(logs[owner].entries_after(0).len(), 3);
        assert_eq!(logs[owner ^ 1].entries_after(0).len(), 0);
    }

    #[test]
    fn stale_client_is_redirected_after_a_cutover() {
        let map = ShardMap::new(1);
        let stores = stores(2);
        let logs = logs(2);
        let (endpoints, mut conns, _mig) = cluster_mesh(2, 1, 16, 16);
        std::thread::scope(|s| {
            for (shard, endpoint) in endpoints.into_iter().enumerate() {
                let (store, log, map) = (&stores[shard], &logs[shard], &map);
                s.spawn(move || serve_cluster_node(shard, store, log, map, endpoint));
            }
            // Client snapshots the 1-shard map, then the map grows.
            let client = ClusterClient::new(&map, conns.pop().unwrap());
            assert_eq!(client.cached_epoch(), 1);
            let next: Vec<usize> = (0..ssync_srv::ROUTE_SLOTS).map(|s| s % 2).collect();
            map.stage(&next);
            map.try_cutover(map.view(), 2).unwrap();
            // Writes to slots now owned by shard 1 bounce once, then
            // land; the client's map refreshes along the way.
            for key in 0..32 {
                client.set(key, vec![7]).unwrap();
            }
            assert!(client.redirects() > 0, "an odd-slot key must redirect");
            assert_eq!(client.cached_epoch(), 2);
            for key in 0..32 {
                assert_eq!(client.get(key).unwrap().unwrap().1, vec![7]);
            }
            client.close();
        });
        assert!(!stores[1].is_empty(), "shard 1 owns half the slots");
        let redirected: u64 = stores
            .iter()
            .map(|s| s.stats_snapshot().wrong_shard_redirects)
            .sum();
        assert!(redirected > 0, "server-side redirect counter must move");
    }

    #[test]
    fn stats_scrape_works_live_and_survives_malformed_frames() {
        let map = ShardMap::new(2);
        let stores = stores(2);
        let logs = logs(2);
        let (endpoints, mut conns, _mig) = cluster_mesh(2, 1, 16, 16);
        std::thread::scope(|s| {
            for (shard, endpoint) in endpoints.into_iter().enumerate() {
                let (store, log, map) = (&stores[shard], &logs[shard], &map);
                s.spawn(move || serve_cluster_node(shard, store, log, map, endpoint));
            }
            let client = ClusterClient::new(&map, conns.pop().unwrap());
            for key in 0..32u64 {
                client.set(key, vec![9]).unwrap();
                client.get(key).unwrap().unwrap();
            }
            // Every node answers a scrape, and the counters add up.
            let before: Vec<_> = (0..2).map(|n| client.stats(n).unwrap()).collect();
            let sets: u64 = before
                .iter()
                .map(|s| s.counter("store.sets").unwrap())
                .sum();
            assert_eq!(sets, 32);
            let requests: u64 = before
                .iter()
                .map(|s| s.counter("node.requests").unwrap())
                .sum();
            assert!(requests >= 64, "every op lands somewhere: {requests}");
            // A garbage frame is refused, not fatal...
            client.shards[0].0.send([0xEE; ssync_mp::MSG_WORDS]);
            assert_eq!(client.read_response(0).unwrap(), Response::Malformed);
            // ...the next scrape counts it, and serving continues.
            let after = client.stats(0).unwrap();
            assert_eq!(after.counter("node.malformed"), Some(1));
            assert!(client.get(1).unwrap().is_some());
            client.close();
        });
    }

    #[test]
    fn frozen_slot_defers_writes_until_unfrozen_and_reads_flow() {
        let map = ShardMap::new(1);
        let stores = stores(1);
        let logs = logs(1);
        let (endpoints, mut conns, _mig) = cluster_mesh(1, 2, 16, 16);
        let key = 3u64;
        std::thread::scope(|s| {
            for (shard, endpoint) in endpoints.into_iter().enumerate() {
                let (store, log, map) = (&stores[shard], &logs[shard], &map);
                s.spawn(move || serve_cluster_node(shard, store, log, map, endpoint));
            }
            let writer_conn = conns.pop().unwrap();
            let client = ClusterClient::new(&map, conns.pop().unwrap());
            let v1 = client.set(key, b"before".to_vec()).unwrap();
            // Freeze the key's slot, as a coordinator's final drain
            // would, and wait for the node's round-tagged quiesce ack.
            map.freeze(1 << slot_of(key));
            let round = map.begin_round();
            while map.quiesced_of(0).is_none_or(|(r, _)| r != round) {
                std::thread::yield_now();
            }
            assert_eq!(map.quiesced_of(0), Some((round, v1)));
            // A write to the frozen slot parks inside the node...
            let map_ref = &map;
            let writer = s.spawn(move || {
                let second = ClusterClient::new(map_ref, writer_conn);
                let version = second.set(key, b"after".to_vec()).unwrap();
                second.close();
                version
            });
            while store_deferred(&stores[0]) == 0 {
                std::thread::yield_now();
            }
            // ...while reads on the same slot keep being served.
            assert_eq!(client.get(key).unwrap().unwrap().1, b"before".to_vec());
            map.unfreeze(1 << slot_of(key));
            let v2 = writer.join().unwrap();
            assert!(v2 > v1);
            assert_eq!(client.get(key).unwrap().unwrap().1, b"after".to_vec());
            client.close();
        });
        assert_eq!(store_deferred(&stores[0]), 1);
    }

    fn store_deferred(store: &KvStore<TicketLock>) -> u64 {
        store.stats_snapshot().migration_ops_deferred
    }

    #[test]
    fn migration_stream_applies_and_publishes_progress() {
        let map = ShardMap::new(1);
        let stores = stores(2);
        let logs = logs(2);
        let (endpoints, mut conns, mig) = cluster_mesh(2, 1, 16, 64);
        std::thread::scope(|s| {
            for (shard, endpoint) in endpoints.into_iter().enumerate() {
                let (store, log, map) = (&stores[shard], &logs[shard], &map);
                s.spawn(move || serve_cluster_node(shard, store, log, map, endpoint));
            }
            // Stream three entries (one a long value, one a tombstone)
            // into node 1, which owns nothing under the map.
            let mut frames = Vec::new();
            let long: Vec<u8> = (0..300).map(|i| (i % 256) as u8).collect();
            for request in [
                Request::Replicate {
                    key: 8,
                    version: 5,
                    value: b"v".to_vec(),
                },
                Request::Replicate {
                    key: 9,
                    version: 6,
                    value: long.clone(),
                },
                Request::ReplicateDelete { key: 8, version: 7 },
            ] {
                request.encode_into(&mut frames);
                mig[1].send_all_connected(&frames).unwrap();
            }
            while map.migrated_of(1) < 3 {
                std::thread::yield_now();
            }
            let client = ClusterClient::new(&map, conns.pop().unwrap());
            client.close();
        });
        assert!(stores[1].get(&key_bytes(8)).is_none(), "tombstone applied");
        let (v, value) = stores[1].get_with_version(&key_bytes(9)).unwrap();
        assert_eq!(v, 6);
        assert_eq!(value.as_ref().len(), 300);
    }
}

//! # ssync-cluster
//!
//! Elastic resharding for the `ssync` stack: grow (or shrink) a
//! running shard fleet and move the data live, without dropping a
//! single acknowledged write.
//!
//! The static service routes `key → shard` by hashing over a fixed
//! shard count, so changing the fleet size silently reroutes every
//! key. This crate replaces that with two levels: keys hash onto
//! [`ssync_srv::ROUTE_SLOTS`] fixed *slots*, and an epoch-versioned
//! [`map::ShardMap`] — one fenced atomic word over double-buffered
//! ownership tables, the elastic sibling of `ssync-repl`'s term map —
//! assigns slots to shards. Resharding is then a *slot ownership
//! change*, published to every node and client in one compare-and-swap
//! that bumps the map epoch.
//!
//! Moving the data under live traffic is the
//! [`migrate::run_reshard_coordinator`] protocol, per moved slot
//! group:
//!
//! 1. **Bulk copy** — cursor-paged [`ssync_kv::KvStore::dump_range`]
//!    chunks stream to the target over the same one-cache-line
//!    `ssync-mp` rings as client traffic, applied through the store's
//!    replication version gate (idempotent, so faulted attempts
//!    replay safely).
//! 2. **Delta replay** — writes that landed during the copy stream
//!    from the source's `ssync-repl` op-log, repeatedly, until the
//!    remaining delta is small.
//! 3. **Fenced cutover** — the moving slots freeze (writes defer,
//!    reads keep flowing), sources acknowledge quiescence through a
//!    round-tagged handshake, the final delta drains, and one CAS
//!    flips the map. Deferred writes then bounce to the new owner via
//!    [`Response::WrongShard`](ssync_srv::wire::Response::WrongShard)
//!    redirects that carry the new epoch; stale clients refetch and
//!    retry. Write unavailability is the final drain, not the copy.
//!
//! Crashes are deterministic, seeded
//! [`ssync_repl::FaultSpec`] plans: the source's migration stream can
//! die mid-copy and the coordinator can die before the cutover; both
//! recover by replaying the idempotent copy, and the proptest harness
//! (`tests/migration_model.rs`) checks convergence against a
//! `BTreeMap` model on every run. The cutover's "no write lands on
//! the old owner after its final delta" argument is model-checked in
//! `tests/chk_models.rs`.
//!
//! * [`map`] — the epoch-versioned slot→shard map and the freeze /
//!   quiesce / migration-progress words;
//! * [`service`] — cluster node servers and the map-following,
//!   redirect-chasing [`service::ClusterClient`];
//! * [`migrate`] — the fault-injected live-migration coordinator;
//! * [`workload`] — the closed-loop reshard-under-traffic driver
//!   behind `ccbench`'s `reshard` experiment.

pub mod map;
pub mod migrate;
pub mod service;
pub mod workload;

pub(crate) mod sync;

pub use map::{MapSnapshot, MapView, ShardMap};
pub use migrate::{run_reshard_coordinator, MigrationReport, ReshardSpec};
pub use service::{
    cluster_mesh, serve_cluster_node, ClientConn, ClusterClient, ClusterMesh, ClusterNodeEndpoint,
    NodeReport,
};
pub use workload::{run_reshard, ReshardReport, ReshardWorkloadSpec};

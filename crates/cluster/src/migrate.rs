//! The live-migration coordinator: copy, delta, fenced cutover.
//!
//! [`run_reshard_coordinator`] reshapes a running fleet from the
//! current map to `slot % shards_after` ownership while the nodes keep
//! serving. The protocol, per attempt:
//!
//! 1. **Drain & clear** — wait until every target has processed all
//!    migration-stream entries already sent to it (progress is the
//!    map's cumulative per-shard counter), then delete any moving-slot
//!    keys a previous faulted attempt left at the targets. Clearing
//!    makes a restart equivalent to a first run even when a crashed
//!    stream lost a delete tombstone the recopied dump cannot carry.
//! 2. **Bulk copy** — page each source with
//!    [`KvStore::dump_range`], stream moving-slot triples as
//!    `Replicate` frames. The target applies them through the store's
//!    replication version gate, so recopied duplicates drop as stale.
//!    A seeded [`FaultSpec::migration_plan_for`] schedule crashes the
//!    stream at fixed cumulative entry counts; each crash restarts
//!    that source's copy from the first key.
//! 3. **Delta replay** — writes that landed during the copy are in the
//!    source's op-log; replay moving entries after a cumulative
//!    per-source version cursor. The cursor survives faulted attempts
//!    (the version gate absorbs re-sends, the recopy covers gaps), so
//!    each round only ships the new tail.
//! 4. **Fenced cutover** — freeze the moving slots, start a handshake
//!    round, and wait for each source node's *round-tagged* quiesce
//!    acknowledgement; acks from an earlier aborted freeze carry a
//!    stale round and are ignored, so a node that parked a write under
//!    the old mask can never satisfy the new round's barrier. Drain
//!    the final delta (now complete: sources defer frozen-slot
//!    writes), wait for the targets to apply it, then stage the new
//!    table and publish it with one epoch-bumping CAS. Unfreeze, and
//!    the parked writes bounce to their new owners.
//! 5. **Cleanup** — delete the moved keys from the sources; their
//!    retired nodes are reclaimed by the stores' online epoch passes
//!    (or the caller's [`KvStore::purge_retired`] shutdown drain).
//!
//! The coordinator itself can die: a seeded
//! [`FaultSpec::coordinator_plan_for`] schedule aborts the first
//! `coordinator_crashes` attempts at a plan-chosen stage (after copy,
//! after delta, or after the quiesce barrier — unfreezing on the way
//! out, as a supervisor restarting a dead coordinator must). Every
//! abort path leaves the map un-cut and the data recoverable by the
//! next attempt; `tests/migration_model.rs` proves convergence against
//! a model under both fault families.
//!
//! [`KvStore::dump_range`]: ssync_kv::KvStore::dump_range
//! [`KvStore::purge_retired`]: ssync_kv::KvStore::purge_retired
//! [`FaultSpec::migration_plan_for`]: ssync_repl::FaultSpec::migration_plan_for
//! [`FaultSpec::coordinator_plan_for`]: ssync_repl::FaultSpec::coordinator_plan_for

use ssync_kv::KvStore;
use ssync_locks::RawLock;
use ssync_mp::{Message, MsgSender, RingSender};
use ssync_repl::{FaultSpec, LogOp, OpLog};
use ssync_srv::wire::Request;
use ssync_srv::{slot_of, ROUTE_SLOTS};

use crate::map::ShardMap;

/// What a resharding should do and which faults to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReshardSpec {
    /// The shard count after the cutover; every slot moves to
    /// `slot % shards_after`. Growing and shrinking both work.
    pub shards_after: usize,
    /// Keys per [`ssync_kv::KvStore::dump_range`] page during the
    /// bulk copy.
    pub chunk: usize,
    /// Pre-freeze delta-replay rounds — each shrinks the tail the
    /// frozen final drain has to ship.
    pub delta_rounds: usize,
    /// The seed the fault schedules derive from.
    pub faults: FaultSpec,
    /// Per-source migration-stream crashes
    /// ([`ssync_repl::FaultSpec::migration_plan_for`]).
    pub source_crashes: usize,
    /// Coordinator crashes before the cutover
    /// ([`ssync_repl::FaultSpec::coordinator_plan_for`]).
    pub coordinator_crashes: usize,
}

impl ReshardSpec {
    /// A fault-free resharding to `shards_after` shards.
    pub fn clean(shards_after: usize) -> ReshardSpec {
        ReshardSpec {
            shards_after,
            chunk: 64,
            delta_rounds: 2,
            faults: FaultSpec::none(),
            source_crashes: 0,
            coordinator_crashes: 0,
        }
    }
}

/// What a completed resharding did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReport {
    /// `Replicate`/`ReplicateDelete` entries streamed to targets,
    /// including re-sends after faults.
    pub entries_migrated: u64,
    /// Source-stream crashes survived (each restarted one copy).
    pub copy_restarts: u64,
    /// Coordinator crashes survived (each restarted the attempt).
    pub coordinator_restarts: u64,
    /// Migration attempts, including the successful last one.
    pub attempts: u64,
    /// Moved keys deleted from their sources after the cutover.
    pub source_keys_retired: u64,
    /// The map epoch the cutover published.
    pub final_epoch: u64,
}

/// Runs one resharding to completion against live nodes, injecting
/// the spec's seeded faults. Blocks until the cutover has published
/// and the sources are cleaned; returns what happened.
///
/// `stores`, `logs`, and `mig_tx` are indexed by shard id and must
/// cover both the current fleet and `shards_after`.
///
/// # Panics
///
/// Panics if `shards_after` is zero, exceeds the provided fleet, or
/// another coordinator races the cutover (the protocol is
/// single-coordinator; the map CAS enforces it).
pub fn run_reshard_coordinator<R: RawLock + Default>(
    map: &ShardMap,
    stores: &[&KvStore<R>],
    logs: &[&OpLog],
    mig_tx: &[RingSender],
    spec: &ReshardSpec,
) -> MigrationReport {
    let shards_after = spec.shards_after;
    assert!(shards_after > 0 && shards_after <= stores.len());
    assert!(stores.len() == logs.len() && stores.len() == mig_tx.len());
    assert!(map.num_shards() <= stores.len());
    let chunk = spec.chunk.max(1);
    let snap = map.snapshot();
    let new_owner = |slot: usize| slot % shards_after;

    // Which slots move, and from where.
    let mut moving_all = 0u64;
    let mut moving_from = vec![0u64; stores.len()];
    for (slot, &owner) in snap.owners.iter().enumerate() {
        if owner != new_owner(slot) {
            moving_all |= 1 << slot;
            moving_from[owner] |= 1 << slot;
        }
    }
    let sources: Vec<usize> = (0..stores.len()).filter(|&s| moving_from[s] != 0).collect();

    let mut report = MigrationReport::default();
    if moving_all == 0 {
        report.final_epoch = map.epoch();
        return report;
    }

    // Cumulative stream accounting — none of these reset on a fault.
    // `sent[t]` pairs with the map's migrated-of counter to prove a
    // target's stream drained; `cursor[s]` is the op-log version
    // already shipped from source `s` (the version gate absorbs any
    // overlap a restart re-sends).
    let mut sent = vec![0u64; stores.len()];
    let mut cursor = vec![0u64; stores.len()];
    let mut streamed = vec![0u64; stores.len()];
    let mut fault_idx = vec![0usize; stores.len()];
    let plans: Vec<_> = (0..stores.len())
        .map(|s| spec.faults.migration_plan_for(s, spec.source_crashes))
        .collect();
    let coord_plan = spec.faults.coordinator_plan_for(spec.coordinator_crashes);
    let mut frames: Vec<Message> = Vec::new();

    let drain_targets = |sent: &[u64]| {
        for (target, &n) in sent.iter().enumerate() {
            while map.migrated_of(target) < n {
                std::thread::yield_now();
            }
        }
    };
    // Replays `source`'s op-log tail after the cursor, shipping moving
    // entries to their slots' new owners. Returns entries shipped.
    let delta = |source: usize,
                 cursor: &mut [u64],
                 sent: &mut [u64],
                 frames: &mut Vec<Message>,
                 report: &mut MigrationReport| {
        let mut shipped = 0u64;
        for entry in logs[source].entries_after(cursor[source]) {
            cursor[source] = entry.version;
            let slot = slot_of(entry.key);
            if moving_from[source] & (1 << slot) == 0 {
                continue;
            }
            let request = match entry.op {
                LogOp::Put(value) => Request::Replicate {
                    key: entry.key,
                    version: entry.version,
                    value: value.to_vec(),
                },
                LogOp::Delete => Request::ReplicateDelete {
                    key: entry.key,
                    version: entry.version,
                },
            };
            let target = new_owner(slot);
            request.encode_into(frames);
            mig_tx[target]
                .send_all_connected(frames)
                .expect("target node outlives the migration");
            sent[target] += 1;
            shipped += 1;
        }
        report.entries_migrated += shipped;
        shipped
    };

    loop {
        report.attempts += 1;
        let crash_stage = coord_plan
            .events()
            .get(report.coordinator_restarts as usize)
            .map(|event| event.at_entry % 3);

        // 1. Drain the streams, then clear what earlier attempts left.
        drain_targets(&sent);
        for (target, store) in stores.iter().enumerate() {
            let owed: u64 = (0..ROUTE_SLOTS)
                .filter(|&slot| new_owner(slot) == target)
                .fold(0, |mask, slot| mask | 1 << slot);
            let clear = owed & moving_all;
            if clear == 0 {
                continue;
            }
            let mut after: Option<Vec<u8>> = None;
            loop {
                let page = store.dump_range(after.as_deref(), chunk);
                let Some(last) = page.last() else { break };
                after = Some(last.0.as_ref().to_vec());
                for (key, _, _) in &page {
                    let k = u64::from_be_bytes(key.as_ref().try_into().expect("8-byte keys"));
                    if clear & (1 << slot_of(k)) != 0 {
                        store.delete_versioned(key.as_ref());
                    }
                }
            }
        }

        // 2. Bulk copy, restarting a source's copy on each seeded
        // stream crash.
        for &source in &sources {
            'copy: loop {
                let mut after: Option<Vec<u8>> = None;
                loop {
                    let page = stores[source].dump_range(after.as_deref(), chunk);
                    let Some(last) = page.last() else { break };
                    after = Some(last.0.as_ref().to_vec());
                    for (key, version, value) in &page {
                        let k = u64::from_be_bytes(key.as_ref().try_into().expect("8-byte keys"));
                        let slot = slot_of(k);
                        if moving_from[source] & (1 << slot) == 0 {
                            continue;
                        }
                        let request = Request::Replicate {
                            key: k,
                            version: *version,
                            value: value.to_vec(),
                        };
                        request.encode_into(&mut frames);
                        mig_tx[new_owner(slot)]
                            .send_all_connected(&frames)
                            .expect("target node outlives the migration");
                        sent[new_owner(slot)] += 1;
                        report.entries_migrated += 1;
                        streamed[source] += 1;
                        if plans[source]
                            .events()
                            .get(fault_idx[source])
                            .is_some_and(|event| streamed[source] == event.at_entry)
                        {
                            fault_idx[source] += 1;
                            report.copy_restarts += 1;
                            continue 'copy;
                        }
                    }
                }
                break;
            }
        }
        if crash_stage == Some(0) {
            report.coordinator_restarts += 1;
            continue;
        }

        // 3. Unfrozen delta rounds shrink the final drain.
        for _ in 0..spec.delta_rounds {
            for &source in &sources {
                delta(source, &mut cursor, &mut sent, &mut frames, &mut report);
            }
        }
        if crash_stage == Some(1) {
            report.coordinator_restarts += 1;
            continue;
        }

        // 4. Freeze, then open the handshake round — in that order:
        // the round is the Release flag whose Acquire read at a node
        // proves the freeze bits are visible there.
        map.freeze(moving_all);
        let round = map.begin_round();
        for &source in &sources {
            while map.quiesced_of(source).map_or(true, |(r, _)| r != round) {
                std::thread::yield_now();
            }
        }
        if crash_stage == Some(2) {
            // A supervisor restarting a dead coordinator lifts the
            // freeze first; parked writes resume at the old owners.
            map.unfreeze(moving_all);
            report.coordinator_restarts += 1;
            continue;
        }

        // 5. Final delta: sources are quiesced, so this tail is
        // complete. Prove the targets applied everything, then cut.
        for &source in &sources {
            delta(source, &mut cursor, &mut sent, &mut frames, &mut report);
            let (_, hwm) = map.quiesced_of(source).expect("source acked this round");
            debug_assert!(cursor[source] >= hwm, "final delta must reach the hwm");
        }
        drain_targets(&sent);
        let mut owners = [0usize; ROUTE_SLOTS];
        for (slot, owner) in owners.iter_mut().enumerate() {
            *owner = new_owner(slot);
        }
        map.stage(&owners);
        report.final_epoch = map
            .try_cutover(map.view(), shards_after)
            .expect("the resharding coordinator is the only epoch writer");
        map.unfreeze(moving_all);
        for &source in &sources {
            map.clear_quiesced(source);
        }
        break;
    }

    // 6. Cleanup: moved keys leave their sources; their retired nodes
    // are reclaimed by the stores' online epoch passes (or the
    // caller's purge_retired() shutdown drain).
    for &source in &sources {
        let mut after: Option<Vec<u8>> = None;
        loop {
            let page = stores[source].dump_range(after.as_deref(), chunk);
            let Some(last) = page.last() else { break };
            after = Some(last.0.as_ref().to_vec());
            for (key, _, _) in &page {
                let k = u64::from_be_bytes(key.as_ref().try_into().expect("8-byte keys"));
                if moving_from[source] & (1 << slot_of(k)) != 0
                    && stores[source].delete_versioned(key.as_ref()).is_some()
                {
                    report.source_keys_retired += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::ShardMap;
    use crate::service::{cluster_mesh, serve_cluster_node, ClusterClient};
    use ssync_locks::TicketLock;

    fn fleet(n: usize) -> (Vec<KvStore<TicketLock>>, Vec<OpLog>) {
        (
            (0..n).map(|_| KvStore::new(64, 8)).collect(),
            (0..n).map(|_| OpLog::new(1 << 14)).collect(),
        )
    }

    /// Quiet 2→4 split: load through clients, reshard with no traffic
    /// racing, check every key moved to its mod-4 owner with its
    /// version intact.
    #[test]
    fn quiet_split_moves_every_key_with_versions() {
        let map = ShardMap::new(2);
        let (stores, logs) = fleet(4);
        let (endpoints, mut conns, mig) = cluster_mesh(4, 1, 16, 64);
        let store_refs: Vec<&KvStore<TicketLock>> = stores.iter().collect();
        let log_refs: Vec<&OpLog> = logs.iter().collect();
        let mut written: Vec<(u64, u64)> = Vec::new();
        std::thread::scope(|s| {
            for (shard, endpoint) in endpoints.into_iter().enumerate() {
                let (store, log, map) = (&stores[shard], &logs[shard], &map);
                s.spawn(move || serve_cluster_node(shard, store, log, map, endpoint));
            }
            let client = ClusterClient::new(&map, conns.pop().unwrap());
            for key in 0..256u64 {
                let version = client.set(key, key.to_le_bytes().to_vec()).unwrap();
                written.push((key, version));
            }
            // Delete a few so tombstone moves are exercised too.
            for key in (0..256u64).step_by(17) {
                client.delete(key).unwrap();
            }
            let report =
                run_reshard_coordinator(&map, &store_refs, &log_refs, &mig, &ReshardSpec::clean(4));
            assert_eq!(report.attempts, 1);
            assert_eq!(report.coordinator_restarts, 0);
            assert_eq!(report.final_epoch, 2);
            assert!(report.entries_migrated > 0);
            // The fleet serves the same data under the new map.
            for &(key, version) in &written {
                match client.get(key).unwrap() {
                    Some((v, value)) => {
                        assert_eq!(v, version);
                        assert_eq!(value, key.to_le_bytes().to_vec());
                    }
                    None => assert_eq!(key % 17, 0, "only deleted keys may miss"),
                }
            }
            client.close();
        });
        assert_eq!(map.epoch(), 2);
        assert_eq!(map.num_shards(), 4);
        // Every surviving key sits exactly at its mod-4 owner.
        for (shard, store) in stores.iter().enumerate() {
            for (key, _, _) in store.dump() {
                let k = u64::from_be_bytes(key.as_ref().try_into().unwrap());
                assert_eq!(map.owner_of(slot_of(k)), shard, "key {k} misplaced");
            }
        }
    }

    /// The same split with seeded source-stream and coordinator
    /// crashes: restarts happen, the outcome is identical.
    #[test]
    fn faulted_split_replays_and_converges() {
        let map = ShardMap::new(2);
        let (stores, logs) = fleet(4);
        let (endpoints, mut conns, mig) = cluster_mesh(4, 1, 16, 64);
        let store_refs: Vec<&KvStore<TicketLock>> = stores.iter().collect();
        let log_refs: Vec<&OpLog> = logs.iter().collect();
        let spec = ReshardSpec {
            faults: FaultSpec {
                seed: 0xC1_05,
                faults_per_replica: 0,
                max_window: 0,
                spacing: 24,
                primary_crashes: 0,
            },
            source_crashes: 2,
            coordinator_crashes: 2,
            ..ReshardSpec::clean(4)
        };
        std::thread::scope(|s| {
            for (shard, endpoint) in endpoints.into_iter().enumerate() {
                let (store, log, map) = (&stores[shard], &logs[shard], &map);
                s.spawn(move || serve_cluster_node(shard, store, log, map, endpoint));
            }
            let client = ClusterClient::new(&map, conns.pop().unwrap());
            for key in 0..192u64 {
                client.set(key, vec![key as u8; 9]).unwrap();
            }
            let report = run_reshard_coordinator(&map, &store_refs, &log_refs, &mig, &spec);
            assert_eq!(report.coordinator_restarts, 2);
            assert_eq!(report.attempts, 3);
            assert!(report.copy_restarts >= 1, "stream crashes must fire");
            assert_eq!(report.final_epoch, 2);
            for key in 0..192u64 {
                assert_eq!(client.get(key).unwrap().unwrap().1, vec![key as u8; 9]);
            }
            client.close();
        });
        for (shard, store) in stores.iter().enumerate() {
            for (key, _, _) in store.dump() {
                let k = u64::from_be_bytes(key.as_ref().try_into().unwrap());
                assert_eq!(map.owner_of(slot_of(k)), shard, "key {k} misplaced");
            }
        }
    }

    /// A no-op spec (map already mod-N) returns without touching
    /// anything.
    #[test]
    fn noop_reshard_short_circuits() {
        let map = ShardMap::new(4);
        let (stores, logs) = fleet(4);
        let (_endpoints, _conns, mig) = cluster_mesh(4, 1, 16, 16);
        let store_refs: Vec<&KvStore<TicketLock>> = stores.iter().collect();
        let log_refs: Vec<&OpLog> = logs.iter().collect();
        let report =
            run_reshard_coordinator(&map, &store_refs, &log_refs, &mig, &ReshardSpec::clean(4));
        assert_eq!(
            report,
            MigrationReport {
                final_epoch: 1,
                ..MigrationReport::default()
            }
        );
        assert_eq!(map.epoch(), 1);
    }
}

//! Crate-local alias for the workspace atomic facade.
//!
//! All atomics in this crate come from `crate::sync::atomic`, which is
//! [`ssync_core::sync::atomic`]: real `core::sync::atomic` types in
//! production builds, `ssync-chk` shadow atomics under
//! `RUSTFLAGS='--cfg ssync_chk'`.

pub(crate) use ssync_core::sync::atomic;

//! The epoch-versioned cluster map: slot→shard routing as one fenced
//! atomic word plus double-buffered assignment tables.
//!
//! This extends the term/leader word of `ssync_repl::ClusterMap` from
//! "who leads shard S" to "which shard owns slot L". A key hashes to
//! one of [`ROUTE_SLOTS`] fixed slots ([`ssync_srv::slot_of`]); the map
//! assigns each slot an owner shard. Resharding reassigns slots — it
//! never re-hashes keys — by staging a complete replacement table and
//! publishing it with **one** compare-and-swap on the map word:
//!
//! ```text
//! word = epoch << 16 | shards << 1 | table-select bit
//! ```
//!
//! The two assignment tables are double-buffered. Only the migration
//! coordinator ever writes, and only to the *cold* table
//! ([`ShardMap::stage`]); the cutover CAS bumps the epoch, installs the
//! new shard count, and flips the select bit in one step, so a reader
//! either routes entirely under the old map or entirely under the new —
//! there is no instant at which a torn table is observable. Epochs are
//! fenced the way terms are: they only grow, raw `u64` comparison is
//! the whole staleness check, and the `ssync-lint` `epoch-fence` rule
//! keeps arithmetic away from them.
//!
//! The map also carries the migration freeze handshake (one bitmask
//! word of frozen slots, plus a per-shard quiesced high-water mark),
//! documented at [`ShardMap::freeze`] — see `DESIGN.md` "Cluster map &
//! live migration" for the protocol it anchors.

use ssync_core::CachePadded;
use ssync_srv::{slot_of, ROUTE_SLOTS};

use crate::sync::atomic::{AtomicU64, Ordering};

/// Bits the shard count occupies in the map word (bits 1..16).
const SHARD_BITS: u32 = 15;

/// One decoded read of the map word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapView {
    /// The map epoch (starts at 1, bumped by each cutover).
    pub epoch: u64,
    /// Shards in the fleet under this epoch.
    pub shards: usize,
    /// Which of the two assignment tables is active.
    pub table: usize,
}

/// A client's cached copy of the map: the epoch it was read under and
/// the full slot→owner assignment. Cheap to refetch on a `WrongShard`
/// redirect ([`ShardMap::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapSnapshot {
    /// The epoch the owners were read under.
    pub epoch: u64,
    /// Owner shard per routing slot ([`ROUTE_SLOTS`] entries).
    pub owners: Vec<usize>,
}

impl MapSnapshot {
    /// The owner shard of a routing slot.
    pub fn owner_of(&self, slot: usize) -> usize {
        self.owners[slot]
    }

    /// The owner shard of a key (via [`slot_of`]).
    pub fn owner_of_key(&self, key: u64) -> usize {
        self.owners[slot_of(key)]
    }
}

fn pack(epoch: u64, shards: usize, table: usize) -> u64 {
    debug_assert!(epoch < 1 << 48 && shards < 1 << SHARD_BITS && table < 2);
    epoch << 16 | (shards as u64) << 1 | table as u64
}

fn unpack(word: u64) -> MapView {
    MapView {
        epoch: word >> 16,
        shards: ((word >> 1) & ((1 << SHARD_BITS) - 1)) as usize,
        table: (word & 1) as usize,
    }
}

/// The shared cluster map, handed by reference to every node server,
/// client, and the migration coordinator.
pub struct ShardMap {
    /// `epoch << 16 | shards << 1 | select` — the one word a routing
    /// read loads and the one word a cutover CASes.
    word: CachePadded<AtomicU64>,
    /// Double-buffered slot→owner tables, [`ROUTE_SLOTS`] entries
    /// each. The active one (select bit of `word`) is read-only; the
    /// cold one is written only by the single migration coordinator.
    // chk: read-mostly owner entries, written by one thread per
    // migration and published by the `word` CAS; padding 128 words
    // would cost 8 KiB to avoid sharing that writers never contend on.
    tables: [Box<[AtomicU64]>; 2],
    /// Bitmask of slots frozen for a migration's final delta drain
    /// (bit = slot; `ROUTE_SLOTS` = 64 is what makes this one word).
    freeze_req: CachePadded<AtomicU64>,
    /// The freeze round (migration attempt) counter. Bumped *after*
    /// the freeze bits are set (both Release): a node that Acquire-
    /// reads the new round is guaranteed to see the freeze, which is
    /// what makes a round-tagged quiesce acknowledgement trustworthy —
    /// see [`ShardMap::begin_round`].
    round: CachePadded<AtomicU64>,
    /// Per-shard quiesce acknowledgements: `round << 40 | hwm + 1`
    /// once the shard's node has observed round `round`'s freeze and
    /// published the op-log version it stopped at, 0 while it hasn't
    /// (the `+ 1` keeps 0 free as the "not yet" sentinel).
    quiesced: Box<[CachePadded<AtomicU64>]>,
    /// Per-shard migration-stream progress: cumulative count of
    /// stream entries the shard's node has processed, published by
    /// the node, awaited by the coordinator. Monotone across attempts
    /// (never reset), so `processed == sent` always means "no frames
    /// in flight" no matter how many restarts happened.
    mig_seen: Box<[CachePadded<AtomicU64>]>,
}

/// Bits the quiesce hwm occupies below the round tag.
const QUIESCE_HWM_BITS: u32 = 40;

impl ShardMap {
    /// A fresh map at epoch 1: slot `L` owned by shard `L % shards`,
    /// active table 0.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds [`ROUTE_SLOTS`] (a shard
    /// beyond the slot count could never own anything).
    pub fn new(shards: usize) -> ShardMap {
        assert!(shards > 0 && shards <= ROUTE_SLOTS);
        let table = |live: bool| -> Box<[AtomicU64]> {
            (0..ROUTE_SLOTS)
                .map(|slot| AtomicU64::new(if live { (slot % shards) as u64 } else { 0 }))
                .collect()
        };
        let zeros = || -> Box<[CachePadded<AtomicU64>]> {
            (0..ROUTE_SLOTS)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect()
        };
        ShardMap {
            word: CachePadded::new(AtomicU64::new(pack(1, shards, 0))),
            tables: [table(true), table(false)],
            freeze_req: CachePadded::new(AtomicU64::new(0)),
            round: CachePadded::new(AtomicU64::new(0)),
            quiesced: zeros(),
            mig_seen: zeros(),
        }
    }

    /// The current epoch, shard count, and active table, in one atomic
    /// read.
    pub fn view(&self) -> MapView {
        unpack(self.word.load(Ordering::Acquire))
    }

    /// The current map epoch.
    pub fn epoch(&self) -> u64 {
        self.view().epoch
    }

    /// Shards in the fleet under the current epoch.
    pub fn num_shards(&self) -> usize {
        self.view().shards
    }

    /// The owner shard of a routing slot under the current map.
    ///
    /// The Acquire load of the word synchronizes with the cutover CAS,
    /// so the active table's entries — staged before that CAS — are
    /// fully visible; the entry load itself needs no further ordering.
    pub fn owner_of(&self, slot: usize) -> usize {
        let view = self.view();
        self.tables[view.table][slot].load(Ordering::Relaxed) as usize
    }

    /// The owner shard of a key under the current map, with the epoch
    /// it was routed under — what a server compares against a client's
    /// claim before executing.
    pub fn route(&self, key: u64) -> (usize, u64) {
        let view = self.view();
        let owner = self.tables[view.table][slot_of(key)].load(Ordering::Relaxed) as usize;
        (owner, view.epoch)
    }

    /// A consistent copy of the whole assignment: epoch plus all
    /// [`ROUTE_SLOTS`] owners. Retries if a cutover lands mid-read
    /// (epochs strictly grow, so an unchanged word brackets a torn-free
    /// read).
    pub fn snapshot(&self) -> MapSnapshot {
        loop {
            let before = self.word.load(Ordering::Acquire);
            let view = unpack(before);
            let owners = (0..ROUTE_SLOTS)
                .map(|slot| self.tables[view.table][slot].load(Ordering::Relaxed) as usize)
                .collect();
            if self.word.load(Ordering::Acquire) == before {
                return MapSnapshot {
                    epoch: view.epoch,
                    owners,
                };
            }
        }
    }

    /// Stages a complete replacement assignment into the cold table.
    /// Coordinator-only: nothing routes by the cold table until the
    /// [`ShardMap::try_cutover`] CAS publishes it.
    ///
    /// # Panics
    ///
    /// Panics if `owners` is not exactly [`ROUTE_SLOTS`] entries.
    pub fn stage(&self, owners: &[usize]) {
        assert_eq!(owners.len(), ROUTE_SLOTS);
        let cold = &self.tables[self.view().table ^ 1];
        for (slot, &owner) in owners.iter().enumerate() {
            debug_assert!(owner < 1 << SHARD_BITS);
            // Published by the cutover CAS's Release; see `owner_of`.
            cold[slot].store(owner as u64, Ordering::Relaxed);
        }
    }

    /// Publishes the staged table: one CAS bumps the epoch, installs
    /// `new_shards`, and flips the table-select bit together — the
    /// linearization point of the resharding. Fails (returning the
    /// winning view) if the map moved since `expected`, so racing
    /// coordinators resolve to exactly one winner.
    ///
    /// # Errors
    ///
    /// The current view, if it no longer equals `expected`.
    pub fn try_cutover(&self, expected: MapView, new_shards: usize) -> Result<u64, MapView> {
        assert!(new_shards > 0 && new_shards <= ROUTE_SLOTS);
        // chk: epoch + 1 is the one legal epoch mutation (48-bit epochs
        // cannot wrap); everywhere else epochs only meet comparisons.
        let next_epoch = expected.epoch + 1;
        let next = pack(next_epoch, new_shards, expected.table ^ 1);
        let prior = pack(expected.epoch, expected.shards, expected.table);
        match self
            .word
            .compare_exchange(prior, next, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => Ok(next_epoch),
            Err(word) => Err(unpack(word)),
        }
    }

    /// Requests a freeze of the slots in `mask` (bit = slot index):
    /// their owners stop applying writes, publish the op-log version
    /// they stopped at ([`ShardMap::publish_quiesced`]), and defer
    /// client writes until the cutover. Freezing is cumulative across
    /// calls.
    pub fn freeze(&self, mask: u64) {
        self.freeze_req.fetch_or(mask, Ordering::Release);
    }

    /// Lifts the freeze on the slots in `mask`.
    pub fn unfreeze(&self, mask: u64) {
        self.freeze_req.fetch_and(!mask, Ordering::Release);
    }

    /// The currently frozen slots, as a bitmask.
    pub fn frozen(&self) -> u64 {
        self.freeze_req.load(Ordering::Acquire)
    }

    /// True if the slot is frozen for a migration drain.
    pub fn is_frozen(&self, slot: usize) -> bool {
        self.frozen() & (1 << slot) != 0
    }

    /// Opens a new freeze round, returning its number. MUST be called
    /// after [`ShardMap::freeze`] sets this round's bits: a node's
    /// Acquire read of the new round synchronizes with this Release
    /// bump, which is sequenced after the freeze store — so any node
    /// that tags its quiesce ack with the new round provably saw the
    /// freeze first, and a stale ack from an aborted earlier attempt
    /// (carrying an old round) can never satisfy this one.
    pub fn begin_round(&self) -> u64 {
        self.round.fetch_add(1, Ordering::Release) + 1
    }

    /// The current freeze round.
    pub fn round(&self) -> u64 {
        self.round.load(Ordering::Acquire)
    }

    /// A source node's half of the quiesce handshake: having observed
    /// round `round`'s freeze and stopped applying writes to frozen
    /// slots, it publishes the highest op-log version it assigned. The
    /// coordinator's matching read ([`ShardMap::quiesced_of`])
    /// Acquire-loads this, so every write the hwm covers is visible to
    /// the final delta scan.
    ///
    /// # Panics
    ///
    /// Panics if `hwm` overflows its 40-bit field (no realizable run
    /// assigns that many versions).
    pub fn publish_quiesced(&self, shard: usize, round: u64, hwm: u64) {
        assert!(hwm < (1 << QUIESCE_HWM_BITS) - 1 && round < 1 << (64 - QUIESCE_HWM_BITS));
        self.quiesced[shard].store(round << QUIESCE_HWM_BITS | (hwm + 1), Ordering::Release);
    }

    /// The `(round, hwm)` a shard quiesced at, `None` until it has
    /// acknowledged any freeze. The coordinator must ignore an ack
    /// whose round predates its own [`ShardMap::begin_round`].
    pub fn quiesced_of(&self, shard: usize) -> Option<(u64, u64)> {
        match self.quiesced[shard].load(Ordering::Acquire) {
            0 => None,
            word => Some((
                word >> QUIESCE_HWM_BITS,
                (word & ((1 << QUIESCE_HWM_BITS) - 1)) - 1,
            )),
        }
    }

    /// Resets a shard's quiesce acknowledgement (after the cutover
    /// unfreezes its slots; the round tag already makes stale acks
    /// inert, this just keeps the map tidy between migrations).
    pub fn clear_quiesced(&self, shard: usize) {
        self.quiesced[shard].store(0, Ordering::Release);
    }

    /// A target node's migration-stream progress: the cumulative
    /// number of stream entries it has processed. Monotone — the
    /// counter survives aborted attempts, so the coordinator's
    /// "processed equals sent" check always means the stream is
    /// drained with nothing in flight.
    pub fn publish_migrated(&self, shard: usize, processed: u64) {
        self.mig_seen[shard].fetch_max(processed, Ordering::Release);
    }

    /// The last published stream progress of a shard's node.
    pub fn migrated_of(&self, shard: usize) -> u64 {
        self.mig_seen[shard].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_map_routes_mod_shards_at_epoch_one() {
        let map = ShardMap::new(2);
        assert_eq!(
            map.view(),
            MapView {
                epoch: 1,
                shards: 2,
                table: 0
            }
        );
        for slot in 0..ROUTE_SLOTS {
            assert_eq!(map.owner_of(slot), slot % 2);
        }
        let snap = map.snapshot();
        assert_eq!(snap.epoch, 1);
        for key in 0..64u64 {
            let (owner, at) = map.route(key);
            assert_eq!(owner, snap.owner_of_key(key));
            assert_eq!(at, 1);
        }
    }

    #[test]
    fn cutover_flips_table_and_bumps_epoch_atomically() {
        let map = ShardMap::new(2);
        let next: Vec<usize> = (0..ROUTE_SLOTS).map(|slot| slot % 4).collect();
        map.stage(&next);
        // Staging alone changes nothing observable.
        for slot in 0..ROUTE_SLOTS {
            assert_eq!(map.owner_of(slot), slot % 2);
        }
        let view = map.view();
        assert_eq!(map.try_cutover(view, 4), Ok(2));
        assert_eq!(
            map.view(),
            MapView {
                epoch: 2,
                shards: 4,
                table: 1
            }
        );
        for slot in 0..ROUTE_SLOTS {
            assert_eq!(map.owner_of(slot), slot % 4);
        }
        // A second cutover from the stale view loses to the first.
        assert_eq!(map.try_cutover(view, 8), Err(map.view()));
        assert_eq!(map.num_shards(), 4);
        // And the table double-buffers: a third staged map reuses
        // table 0.
        let third: Vec<usize> = (0..ROUTE_SLOTS).map(|slot| slot % 8).collect();
        map.stage(&third);
        let view = map.view();
        assert_eq!(map.try_cutover(view, 8), Ok(3));
        assert_eq!(map.view().table, 0);
        assert_eq!(map.owner_of(9), 1);
    }

    #[test]
    fn racing_cutovers_have_one_winner() {
        let map = ShardMap::new(2);
        let next: Vec<usize> = (0..ROUTE_SLOTS).map(|slot| slot % 4).collect();
        map.stage(&next);
        let view = map.view();
        let wins: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| map.try_cutover(view, 4).is_ok() as usize))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(wins, 1);
        assert_eq!(map.epoch(), 2);
    }

    #[test]
    fn freeze_mask_and_quiesce_handshake() {
        let map = ShardMap::new(2);
        assert_eq!(map.frozen(), 0);
        map.freeze(0b1010);
        map.freeze(0b0100);
        assert_eq!(map.frozen(), 0b1110);
        assert!(map.is_frozen(1) && map.is_frozen(2) && map.is_frozen(3));
        assert!(!map.is_frozen(0));
        map.unfreeze(0b0110);
        assert_eq!(map.frozen(), 0b1000);
        assert_eq!(map.round(), 0);
        assert_eq!(map.begin_round(), 1);
        assert_eq!(map.round(), 1);
        assert_eq!(map.quiesced_of(0), None);
        map.publish_quiesced(0, 1, 0);
        assert_eq!(
            map.quiesced_of(0),
            Some((1, 0)),
            "hwm 0 is distinct from none"
        );
        map.publish_quiesced(0, 2, 41);
        assert_eq!(map.quiesced_of(0), Some((2, 41)));
        map.clear_quiesced(0);
        assert_eq!(map.quiesced_of(0), None);
        // Stream progress is monotone: stale publishes cannot regress.
        assert_eq!(map.migrated_of(2), 0);
        map.publish_migrated(2, 7);
        map.publish_migrated(2, 3);
        assert_eq!(map.migrated_of(2), 7);
    }

    #[test]
    #[should_panic]
    fn zero_shards_rejected() {
        let _ = ShardMap::new(0);
    }

    #[test]
    #[should_panic]
    fn oversized_stage_rejected() {
        let map = ShardMap::new(2);
        map.stage(&[0; ROUTE_SLOTS + 1]);
    }
}

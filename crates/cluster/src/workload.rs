//! The reshard-under-traffic driver behind `ccbench`'s `reshard`
//! experiment.
//!
//! [`run_reshard`] builds a fleet sized for the *post*-split shard
//! count, routes it through a [`ShardMap`] that initially only uses
//! the first `shards_before` shards, and drives closed-loop client
//! workers against it while a coordinator thread reshards the fleet
//! live — [`run_reshard_coordinator`] with the spec's seeded faults —
//! once enough traffic has flowed.
//!
//! Workers own disjoint key residues (worker `w` touches only keys
//! `≡ w (mod workers)`), so each can keep a private `BTreeMap` model
//! of every write the service acknowledged to it. That model is the
//! oracle for the experiment's headline claim: after the dust settles,
//! every modelled `(key, version, value)` is present, byte- and
//! version-exact, at the shard the final map assigns it — **zero lost
//! acknowledged writes** — and no deleted key has resurfaced. The
//! driver also measures the cost: throughput before / during / after
//! the migration window and the dip percentage, plus the redirect and
//! deferral counters the protocol's unavailability story predicts.
//!
//! Mid-flight reads are tallied but *not* asserted against the model:
//! during the cutover's propagation window a read may be served by the
//! outgoing owner (the same bounded staleness `ssync-repl` accepts
//! from async replicas). Writes never get that latitude — the
//! freeze-fence argument in [`crate::service`] — which is exactly the
//! asymmetry the final convergence check makes observable.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ssync_kv::KvStore;
use ssync_locks::RawLock;
use ssync_repl::OpLog;

use crate::map::ShardMap;
use crate::migrate::{run_reshard_coordinator, MigrationReport, ReshardSpec};
use crate::service::{cluster_mesh, serve_cluster_node, ClusterClient};
use crate::sync::atomic::{AtomicU64, Ordering};

/// What to run: fleet shape, traffic, and the migration to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReshardWorkloadSpec {
    /// Shards serving when traffic starts. The fleet is provisioned
    /// at `max(shards_before, reshard.shards_after)` nodes; the spare
    /// ones idle until the cutover hands them slots.
    pub shards_before: usize,
    /// Closed-loop client workers.
    pub workers: usize,
    /// Keys per worker (disjoint residues across workers).
    pub keys_per_worker: u64,
    /// Operations per worker.
    pub ops_per_worker: u64,
    /// Value payload length in bytes.
    pub value_len: usize,
    /// Total acknowledged ops to wait for before the migration starts
    /// (must leave headroom below `workers * ops_per_worker`).
    pub start_after_ops: u64,
    /// The migration itself, faults included.
    pub reshard: ReshardSpec,
    /// Workload seed; workers derive per-worker streams from it.
    pub seed: u64,
}

/// What a reshard-under-traffic run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ReshardReport {
    /// Acknowledged client operations (= `workers * ops_per_worker`).
    pub issued: u64,
    /// Gets / sets / cas / deletes acknowledged, in that order.
    pub ops: [u64; 4],
    /// Get hits and misses.
    pub hits: u64,
    /// See `hits`.
    pub misses: u64,
    /// CAS attempts that failed the version check. Disjoint keys make
    /// every failure a would-be lost update, so this doubles as an
    /// early-warning anomaly counter (the model check is the verdict).
    pub cas_fail: u64,
    /// `WrongShard` redirects chased by clients.
    pub client_redirects: u64,
    /// Server-side redirect count (merged store stats).
    pub wrong_shard_redirects: u64,
    /// Writes parked by the freeze window (merged store stats).
    pub migration_ops_deferred: u64,
    /// The coordinator's own accounting.
    pub migration: MigrationReport,
    /// Wall-clock the migration took, faults and retries included.
    pub migration_wall: Duration,
    /// Acknowledged-op throughput before / during / after the
    /// migration window, in ops per second.
    pub rate_before: f64,
    /// See `rate_before`.
    pub rate_during: f64,
    /// See `rate_before`.
    pub rate_after: f64,
    /// `100 * (1 - during/before)`, floored at zero — the headline
    /// "cost of staying up" number.
    pub dip_pct: f64,
    /// Retired store nodes reclaimed at the post-run quiesce point.
    pub purged: u64,
    /// Every key in every store is owned by that store under the
    /// final map, and nothing resurfaced or went missing.
    pub converged: bool,
    /// Modelled acknowledged writes missing or wrong at the final
    /// owner. The invariant the whole protocol exists for: **zero**.
    pub lost_acked_writes: u64,
}

/// One worker's private oracle: what the service acknowledged.
type Model = BTreeMap<u64, (u64, Vec<u8>)>;

/// Drives `spec.workers` closed-loop clients while a live resharding
/// runs underneath them, then audits the fleet against the workers'
/// ack models. See the module docs for the full shape.
///
/// # Panics
///
/// Panics on an inconsistent spec, on any wire-protocol error, or if
/// a worker observes an impossible acknowledgement.
pub fn run_reshard<R: RawLock + Default>(spec: &ReshardWorkloadSpec) -> ReshardReport {
    let fleet = spec.shards_before.max(spec.reshard.shards_after);
    assert!(spec.shards_before > 0 && spec.workers > 0 && spec.keys_per_worker > 0);
    assert!(
        spec.start_after_ops < spec.workers as u64 * spec.ops_per_worker,
        "the migration must start while traffic still flows"
    );
    let map = ShardMap::new(spec.shards_before);
    let stores: Vec<KvStore<R>> = (0..fleet).map(|_| KvStore::new(1 << 10, 16)).collect();
    // Worst case every op is a write landing in one shard's log.
    let log_cap = (spec.workers as u64 * spec.ops_per_worker + 1) as usize;
    let logs: Vec<OpLog> = (0..fleet).map(|_| OpLog::new(log_cap)).collect();
    // Workers plus one control connection: the control client keeps
    // the nodes alive until the coordinator is done, however early
    // the workers drain their op budgets.
    let (endpoints, mut conns, mig) = cluster_mesh(fleet, spec.workers + 1, 64, 256);
    let control_conn = conns.pop().expect("control connection");
    let issued = AtomicU64::new(0);

    let mut models: Vec<(Model, WorkerTally)> = Vec::with_capacity(spec.workers);
    let mut migration = MigrationReport::default();
    let mut migration_wall = Duration::ZERO;
    let mut rates = (0f64, 0f64, 0f64);
    let start = Instant::now();
    std::thread::scope(|s| {
        for (shard, endpoint) in endpoints.into_iter().enumerate() {
            let (store, log, map) = (&stores[shard], &logs[shard], &map);
            s.spawn(move || serve_cluster_node(shard, store, log, map, endpoint));
        }
        let workers: Vec<_> = conns
            .drain(..)
            .enumerate()
            .map(|(worker, conn)| {
                let (map, issued) = (&map, &issued);
                s.spawn(move || {
                    let client = ClusterClient::new(map, conn);
                    let out = drive_worker(&client, spec, worker as u64, issued);
                    let redirects = client.redirects();
                    client.close();
                    (out.0, out.1, redirects)
                })
            })
            .collect();
        // The coordinator: wait for the warm-up, migrate, time it.
        let coordinator = s.spawn(|| {
            while issued.load(Ordering::Relaxed) < spec.start_after_ops {
                std::thread::yield_now();
            }
            let store_refs: Vec<&KvStore<R>> = stores.iter().collect();
            let log_refs: Vec<&OpLog> = logs.iter().collect();
            let t0 = Instant::now();
            let ops0 = issued.load(Ordering::Relaxed);
            let report = run_reshard_coordinator(&map, &store_refs, &log_refs, &mig, &spec.reshard);
            let wall = t0.elapsed();
            let ops1 = issued.load(Ordering::Relaxed);
            (report, wall, t0, ops0, ops1)
        });
        for handle in workers {
            let (model, tally, redirects) = handle.join().expect("worker panicked");
            let mut tally = tally;
            tally.redirects = redirects;
            models.push((model, tally));
        }
        let drained = Instant::now();
        let total = issued.load(Ordering::Relaxed);
        let (report, wall, t0, ops0, ops1) = coordinator.join().expect("coordinator panicked");
        migration = report;
        migration_wall = wall;
        let before = t0.duration_since(start).as_secs_f64();
        let after = drained
            .checked_duration_since(t0 + wall)
            .unwrap_or(Duration::ZERO)
            .as_secs_f64();
        rates = (
            if before > 0.0 {
                ops0 as f64 / before
            } else {
                0.0
            },
            (ops1 - ops0) as f64 / wall.as_secs_f64().max(1e-9),
            if after > 0.0 {
                (total - ops1) as f64 / after
            } else {
                0.0
            },
        );
        // Let the nodes exit now that the migration has published.
        ClusterClient::new(&map, control_conn).close();
    });

    // The post-migration quiesce point: retired nodes (moved keys
    // deleted at their sources, plus normal churn) reclaim here.
    let mut stores = stores;
    let purged: u64 = stores.iter_mut().map(|s| s.purge_retired() as u64).sum();

    // Audit. Direction one: nothing sits at a shard that does not own
    // it. Direction two: every acknowledged write is at its owner,
    // byte- and version-exact, and deletes stayed deleted.
    let mut converged = true;
    let mut lost = 0u64;
    let final_map = map.snapshot();
    for (shard, store) in stores.iter().enumerate() {
        for (key, version, value) in store.dump() {
            let k = u64::from_be_bytes(key.as_ref().try_into().expect("8-byte keys"));
            if final_map.owner_of_key(k) != shard {
                converged = false;
                continue;
            }
            let (model, _) = &models[(k % spec.workers as u64) as usize];
            match model.get(&k) {
                Some(&(mv, ref mval)) if mv == version && *mval == value.as_ref() => {}
                Some(_) => lost += 1,
                // Present at the owner but deleted (or never written)
                // in the model: a resurrected delete.
                None => lost += 1,
            }
        }
    }
    for (model, _) in &models {
        for (&key, &(version, ref value)) in model.iter() {
            let owner = final_map.owner_of_key(key);
            match stores[owner].get_with_version(&ssync_srv::router::key_bytes(key)) {
                Some((v, ref got)) if v == version && got.as_ref() == value.as_slice() => {}
                _ => lost += 1,
            }
        }
    }
    converged &= lost == 0;

    let mut report = ReshardReport {
        issued: issued.load(Ordering::Relaxed),
        ops: [0; 4],
        hits: 0,
        misses: 0,
        cas_fail: 0,
        client_redirects: 0,
        wrong_shard_redirects: 0,
        migration_ops_deferred: 0,
        migration,
        migration_wall,
        rate_before: rates.0,
        rate_during: rates.1,
        rate_after: rates.2,
        dip_pct: if rates.0 > 0.0 {
            (100.0 * (1.0 - rates.1 / rates.0)).max(0.0)
        } else {
            0.0
        },
        purged,
        converged,
        lost_acked_writes: lost,
    };
    for (_, tally) in &models {
        report.ops[0] += tally.gets;
        report.ops[1] += tally.sets;
        report.ops[2] += tally.cas;
        report.ops[3] += tally.deletes;
        report.hits += tally.hits;
        report.misses += tally.misses;
        report.cas_fail += tally.cas_fail;
        report.client_redirects += tally.redirects;
    }
    for store in &stores {
        let snap = store.stats_snapshot();
        report.wrong_shard_redirects += snap.wrong_shard_redirects;
        report.migration_ops_deferred += snap.migration_ops_deferred;
    }
    report
}

#[derive(Debug, Default, Clone, Copy)]
struct WorkerTally {
    gets: u64,
    sets: u64,
    cas: u64,
    deletes: u64,
    hits: u64,
    misses: u64,
    cas_fail: u64,
    redirects: u64,
}

/// One worker's closed loop: seeded mixed ops over its own key
/// residue, model updated on every acknowledgement.
fn drive_worker(
    client: &ClusterClient<'_>,
    spec: &ReshardWorkloadSpec,
    worker: u64,
    issued: &AtomicU64,
) -> (Model, WorkerTally) {
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ ssync_core::mix64(worker + 1));
    let mut model = Model::new();
    let mut tally = WorkerTally::default();
    let stride = spec.workers as u64;
    for _ in 0..spec.ops_per_worker {
        let key = rng.gen_range(0..spec.keys_per_worker) * stride + worker;
        // 25% get, 45% set, 20% cas, 10% delete — write-heavy on
        // purpose: writes are what a migration can lose.
        let roll = rng.gen_range(0..100u32);
        if roll < 25 {
            tally.gets += 1;
            match client.get(key).expect("get") {
                Some(_) => tally.hits += 1,
                None => tally.misses += 1,
            }
        } else if roll < 70 {
            tally.sets += 1;
            let value = vec![rng.gen::<u8>(); spec.value_len.max(1)];
            let version = client.set(key, value.clone()).expect("set");
            model.insert(key, (version, value));
        } else if roll < 90 {
            // CAS from the model's acked version: on disjoint keys it
            // can only fail if an acked write went missing.
            tally.cas += 1;
            let value = vec![rng.gen::<u8>(); spec.value_len.max(1)];
            match model.get(&key).map(|&(v, _)| v) {
                Some(expected) => match client.cas(key, value.clone(), expected).expect("cas") {
                    Ok(version) => {
                        model.insert(key, (version, value));
                    }
                    Err(_) => tally.cas_fail += 1,
                },
                None => {
                    let version = client.set(key, value.clone()).expect("set");
                    model.insert(key, (version, value));
                }
            }
        } else {
            tally.deletes += 1;
            client.delete(key).expect("delete");
            model.remove(&key);
        }
        issued.fetch_add(1, Ordering::Relaxed);
    }
    (model, tally)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_locks::TicketLock;
    use ssync_repl::FaultSpec;

    fn smoke_spec() -> ReshardWorkloadSpec {
        ReshardWorkloadSpec {
            shards_before: 2,
            workers: 2,
            keys_per_worker: 96,
            ops_per_worker: 1200,
            value_len: 12,
            start_after_ops: 300,
            reshard: ReshardSpec::clean(4),
            seed: 0x0DD_B10B,
        }
    }

    #[test]
    fn live_split_loses_nothing() {
        let report = run_reshard::<TicketLock>(&smoke_spec());
        assert_eq!(report.issued, 2400);
        assert_eq!(report.ops.iter().sum::<u64>(), 2400);
        assert!(report.converged, "fleet must converge: {report:?}");
        assert_eq!(report.lost_acked_writes, 0);
        assert_eq!(report.cas_fail, 0, "disjoint-key CAS can only lose");
        assert_eq!(report.migration.final_epoch, 2);
        assert!(report.migration.entries_migrated > 0);
    }

    #[test]
    fn live_split_survives_seeded_faults() {
        let mut spec = smoke_spec();
        spec.reshard = ReshardSpec {
            faults: FaultSpec {
                seed: 0xFEED,
                faults_per_replica: 0,
                max_window: 0,
                spacing: 32,
                primary_crashes: 0,
            },
            source_crashes: 1,
            coordinator_crashes: 1,
            ..ReshardSpec::clean(4)
        };
        let report = run_reshard::<TicketLock>(&spec);
        assert!(report.converged, "faulted run must converge: {report:?}");
        assert_eq!(report.lost_acked_writes, 0);
        assert_eq!(report.migration.coordinator_restarts, 1);
        assert_eq!(report.migration.attempts, 2);
    }
}

//! Prints Figure 8 (best lock + scalability vs lock count).
fn main() {
    print!("{}", ssync_figures::fig08());
}

//! Prints Figure 5 (single-lock throughput: extreme contention).
fn main() {
    print!("{}", ssync_figures::fig_locks(1, "Figure 5"));
}

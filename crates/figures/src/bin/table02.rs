//! Prints Table 2 (remote-access latencies); `--small` for the 2-socket
//! Section 8 platforms.
fn main() {
    let small = std::env::args().any(|a| a == "--small");
    print!("{}", ssync_figures::table02(small));
}

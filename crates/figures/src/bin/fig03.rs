//! Prints Figure 3 (ticket-lock variants on the Opteron).
fn main() {
    print!("{}", ssync_figures::fig03());
}

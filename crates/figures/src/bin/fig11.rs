//! Prints Figure 11 (hash-table throughput and scalability).
fn main() {
    print!("{}", ssync_figures::fig11());
}

//! Prints Figure 10 (client-server message-passing throughput).
fn main() {
    print!("{}", ssync_figures::fig10());
}

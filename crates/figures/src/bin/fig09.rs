//! Prints Figure 9 (one-to-one message-passing latency).
fn main() {
    print!("{}", ssync_figures::fig09());
}

//! Regenerates every table and figure into `results/`.
use std::fs;
use std::time::Instant;

use ssync_simsync::workloads::kv::KvMix;

fn main() {
    fs::create_dir_all("results").expect("create results dir");
    let artifacts: Vec<(&str, Box<dyn Fn() -> String>)> = vec![
        ("table01", Box::new(ssync_figures::table01)),
        ("table02", Box::new(|| ssync_figures::table02(false))),
        ("table02_small", Box::new(|| ssync_figures::table02(true))),
        ("table03", Box::new(ssync_figures::table03)),
        ("fig03", Box::new(ssync_figures::fig03)),
        ("fig04", Box::new(ssync_figures::fig04)),
        ("fig05", Box::new(|| ssync_figures::fig_locks(1, "Figure 5"))),
        ("fig06", Box::new(ssync_figures::fig06)),
        ("fig07", Box::new(|| ssync_figures::fig_locks(512, "Figure 7"))),
        ("fig08", Box::new(ssync_figures::fig08)),
        ("fig09", Box::new(ssync_figures::fig09)),
        ("fig10", Box::new(ssync_figures::fig10)),
        ("fig11", Box::new(ssync_figures::fig11)),
        ("fig12", Box::new(|| ssync_figures::fig12(KvMix::SetOnly))),
        ("fig12_get", Box::new(|| ssync_figures::fig12(KvMix::GetOnly))),
    ];
    for (name, render) in artifacts {
        let t = Instant::now();
        let body = render();
        let path = format!("results/{name}.txt");
        fs::write(&path, &body).expect("write result");
        eprintln!("wrote {path} ({:.1}s)", t.elapsed().as_secs_f64());
    }
}

//! Prints Table 1 (platform inventory).
fn main() {
    print!("{}", ssync_figures::table01());
}

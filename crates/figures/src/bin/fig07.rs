//! Prints Figure 7 (512-lock throughput: very low contention).
fn main() {
    print!("{}", ssync_figures::fig_locks(512, "Figure 7"));
}

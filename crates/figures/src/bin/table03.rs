//! Prints Table 3 (local latencies).
fn main() {
    print!("{}", ssync_figures::table03());
}

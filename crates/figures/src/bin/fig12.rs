//! Prints Figure 12 (KV-store throughput); `--get` for the get-only
//! control experiment.
use ssync_simsync::workloads::kv::KvMix;

fn main() {
    let mix = if std::env::args().any(|a| a == "--get") {
        KvMix::GetOnly
    } else {
        KvMix::SetOnly
    };
    print!("{}", ssync_figures::fig12(mix));
}

//! Prints Figure 4 (atomic-operation throughput).
fn main() {
    print!("{}", ssync_figures::fig04());
}

//! Prints Figure 6 (uncontested acquisition latency by distance).
fn main() {
    print!("{}", ssync_figures::fig06());
}

//! Figure/table reproduction: one function per paper artifact.
//!
//! Each function renders the artifact as a plain-text report (the same
//! rows/series the paper plots). The `src/bin/*` binaries print a single
//! artifact; `repro-all` renders everything into `results/`.

use std::fmt::Write as _;

use ssync_ccbench::drivers::{
    atomic_mops, best_lock, kv_kops, lock_latency, lock_mops, mp_client_server, mp_one_to_one,
    single_thread_latency, ssht_mops, uncontested_latency, SshtBackend,
};
use ssync_ccbench::series::{render_table, Series};
use ssync_ccbench::tables;
use ssync_core::topology::Platform;
use ssync_simsync::locks::SimLockKind;
use ssync_simsync::workloads::atomics::AtomicKind;
use ssync_simsync::workloads::kv::KvMix;
use ssync_simsync::workloads::ssht::SshtConfig;

/// Thread counts used for the cross-platform comparisons (Figures 8, 11
/// and 12 cap at 36/18 cores to compare platforms fairly).
const CROSS_PLATFORM_THREADS: [usize; 4] = [1, 8, 18, 36];

fn locks_for(platform: Platform) -> &'static [SimLockKind] {
    if platform.is_multi_socket() {
        &SimLockKind::ALL
    } else {
        &SimLockKind::FLAT
    }
}

/// Table 1: the platform inventory (static, from `ssync-core`).
pub fn table01() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Table 1: target platforms");
    let _ = writeln!(
        out,
        "{:>10} {:>8} {:>8} {:>12} {:>10} {:>10}",
        "platform", "cores", "dies", "thr/core", "mem nodes", "GHz"
    );
    for p in Platform::ALL {
        let t = p.topology();
        let _ = writeln!(
            out,
            "{:>10} {:>8} {:>8} {:>12} {:>10} {:>10.2}",
            p.name(),
            t.num_cores(),
            t.num_dies(),
            t.threads_per_core(),
            t.num_mem_nodes(),
            t.clock_ghz()
        );
    }
    out
}

/// Table 2: remote-access latencies per state and distance.
pub fn table02(small_scale: bool) -> String {
    let mut out = String::new();
    let platforms: &[Platform] = if small_scale {
        &[Platform::Opteron2, Platform::Xeon2]
    } else {
        &Platform::ALL
    };
    for &p in platforms {
        let _ = writeln!(
            out,
            "# Table 2 [{}]: latency (cycles) by state and distance",
            p.name()
        );
        let cols = tables::distance_columns(p);
        let _ = write!(out, "{:>8} {:>6}", "state", "op");
        for (label, _, _) in &cols {
            let _ = write!(out, " {label:>10}");
        }
        let _ = writeln!(out);
        let cells = tables::table2(p);
        for op in ["load", "store", "CAS", "FAI", "TAS", "SWAP"] {
            for state in ["M", "O", "E", "S", "I"] {
                let rows: Vec<_> = cells
                    .iter()
                    .filter(|c| c.op == op && state_tag(c.state) == state)
                    .collect();
                if rows.is_empty() {
                    continue;
                }
                let _ = write!(out, "{state:>8} {op:>6}");
                for (_, _, req) in &cols {
                    let d = p.topology().distance(0, *req);
                    match rows.iter().find(|c| c.distance == d) {
                        Some(c) => {
                            let _ = write!(out, " {:>10}", c.cycles);
                        }
                        None => {
                            let _ = write!(out, " {:>10}", "-");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
        let _ = writeln!(out);
    }
    out
}

fn state_tag(s: ssync_sim::CohState) -> &'static str {
    match s {
        ssync_sim::CohState::Modified => "M",
        ssync_sim::CohState::Owned => "O",
        ssync_sim::CohState::Exclusive => "E",
        ssync_sim::CohState::Shared => "S",
        ssync_sim::CohState::Invalid => "I",
    }
}

/// Table 3: local latencies.
pub fn table03() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Table 3: local caches and memory latencies (cycles)");
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "level",
        Platform::Opteron.name(),
        Platform::Xeon.name(),
        Platform::Niagara.name(),
        Platform::Tilera.name()
    );
    let per: Vec<[(&str, u64); 4]> = Platform::ALL.iter().map(|&p| tables::table3(p)).collect();
    for (i, &(level, opteron)) in per[0].iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>10} {:>10} {:>10}",
            level, opteron, per[1][i].1, per[2][i].1, per[3][i].1
        );
    }
    out
}

/// Figure 3: ticket-lock implementations on the Opteron.
pub fn fig03() -> String {
    let threads = [1usize, 2, 6, 12, 18, 24, 30, 36, 42, 48];
    let variants = [
        (SimLockKind::TicketNoBackoff, "non-optimized"),
        (SimLockKind::Ticket, "back-off"),
        (SimLockKind::TicketPrefetchw, "back-off+prefetchw"),
    ];
    let series: Vec<Series> = variants
        .iter()
        .map(|&(kind, label)| {
            Series::new(
                label,
                threads
                    .iter()
                    .map(|&t| (t as f64, lock_latency(Platform::Opteron, kind, t))),
            )
        })
        .collect();
    render_table(
        "Figure 3: ticket lock acquire+release latency (cycles), Opteron",
        "threads",
        &series,
    )
}

/// Figure 4: atomic-operation throughput on all four platforms.
pub fn fig04() -> String {
    let mut out = String::new();
    for p in Platform::ALL {
        let series: Vec<Series> = AtomicKind::ALL
            .iter()
            .map(|&k| {
                Series::new(
                    k.name(),
                    p.topology()
                        .sweep_points()
                        .into_iter()
                        .map(|t| (t as f64, atomic_mops(p, k, t))),
                )
            })
            .collect();
        out.push_str(&render_table(
            &format!(
                "Figure 4 [{}]: atomic op throughput (Mops/s), one line",
                p.name()
            ),
            "threads",
            &series,
        ));
        out.push('\n');
    }
    out
}

/// Figures 5 and 7: lock throughput at extreme (1 lock) and very low
/// (512 locks) contention.
pub fn fig_locks(n_locks: usize, figure: &str) -> String {
    let mut out = String::new();
    for p in Platform::ALL {
        let series: Vec<Series> = locks_for(p)
            .iter()
            .map(|&k| {
                Series::new(
                    k.name(),
                    p.topology()
                        .sweep_points()
                        .into_iter()
                        .map(|t| (t as f64, lock_mops(p, k, t, n_locks))),
                )
            })
            .collect();
        out.push_str(&render_table(
            &format!(
                "{figure} [{}]: lock throughput (Mops/s), {n_locks} lock(s)",
                p.name()
            ),
            "threads",
            &series,
        ));
        out.push('\n');
    }
    out
}

/// Figure 6: uncontested acquisition latency by previous-holder distance.
pub fn fig06() -> String {
    let mut out = String::new();
    for p in Platform::ALL {
        let _ = writeln!(
            out,
            "# Figure 6 [{}]: uncontested lock acquisition latency (cycles)",
            p.name()
        );
        let ladder = p.topology().distance_ladder();
        let _ = write!(out, "{:>10} {:>14}", "lock", "single thread");
        for (class, _) in &ladder {
            let _ = write!(out, " {:>12}", class.label());
        }
        let _ = writeln!(out);
        for &kind in locks_for(p) {
            let _ = write!(
                out,
                "{:>10} {:>14.0}",
                kind.name(),
                single_thread_latency(p, kind)
            );
            for &(_, partner) in &ladder {
                let _ = write!(out, " {:>12.0}", uncontested_latency(p, kind, partner));
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out);
    }
    out
}

/// Figure 8: best lock and scalability versus lock count, up to 36 cores.
pub fn fig08() -> String {
    let mut out = String::new();
    for n_locks in [4usize, 16, 32, 128] {
        let _ = writeln!(out, "# Figure 8: {n_locks} locks (best lock : scalability)");
        let _ = write!(out, "{:>10}", "threads");
        for p in Platform::ALL {
            let _ = write!(out, " {:>22}", p.name());
        }
        let _ = writeln!(out);
        // Single-thread baselines per platform.
        let base: Vec<f64> = Platform::ALL
            .iter()
            .map(|&p| best_lock(p, 1, n_locks, locks_for(p)).1)
            .collect();
        for &t in &CROSS_PLATFORM_THREADS {
            let _ = write!(out, "{t:>10}");
            for (i, &p) in Platform::ALL.iter().enumerate() {
                let t_eff = t.min(p.topology().num_cores());
                let (kind, mops) = best_lock(p, t_eff, n_locks, locks_for(p));
                let scal = mops / base[i];
                let _ = write!(out, " {:>13.1}x:{:>8}", scal, kind.name());
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out);
    }
    out
}

/// Figure 9: one-to-one message-passing latency by distance.
pub fn fig09() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Figure 9: one-to-one communication latency (cycles)");
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>10} {:>12}",
        "platform", "distance", "one-way", "round-trip"
    );
    for p in Platform::ALL {
        for (class, partner) in p.topology().distance_ladder() {
            let (ow, rt) = mp_one_to_one(p, partner, false);
            let _ = writeln!(
                out,
                "{:>10} {:>12} {:>10.0} {:>12.0}",
                p.name(),
                class.label(),
                ow,
                rt
            );
        }
    }
    // The Tilera's hardware channels (its native message passing).
    for (class, partner) in Platform::Tilera.topology().distance_ladder() {
        let (ow, rt) = mp_one_to_one(Platform::Tilera, partner, true);
        let _ = writeln!(
            out,
            "{:>10} {:>12} {:>10.0} {:>12.0}",
            "Tilera-hw",
            class.label(),
            ow,
            rt
        );
    }
    out
}

/// Figure 10: client-server message-passing throughput.
pub fn fig10() -> String {
    let clients = [1usize, 2, 4, 8, 12, 18, 24, 30, 35];
    let mut series = Vec::new();
    for p in Platform::ALL {
        let max = p.topology().num_cores() - 1;
        for round_trip in [false, true] {
            let label = format!(
                "{}, {}",
                p.name(),
                if round_trip { "round-trip" } else { "one-way" }
            );
            series.push(Series::new(
                label,
                clients
                    .iter()
                    .filter(|&&c| c <= max)
                    .map(|&c| (c as f64, mp_client_server(p, c, round_trip, false))),
            ));
        }
    }
    // Tilera hardware messaging.
    for round_trip in [false, true] {
        let label = format!(
            "Tilera-hw, {}",
            if round_trip { "round-trip" } else { "one-way" }
        );
        series.push(Series::new(
            label,
            clients.iter().filter(|&&c| c <= 35).map(|&c| {
                (
                    c as f64,
                    mp_client_server(Platform::Tilera, c, round_trip, true),
                )
            }),
        ));
    }
    render_table(
        "Figure 10: client-server throughput (Mops/s), one server",
        "clients",
        &series,
    )
}

/// Figure 11: hash-table throughput over the four configurations.
pub fn fig11() -> String {
    let mut out = String::new();
    for cfg in SshtConfig::FIGURE11 {
        let _ = writeln!(
            out,
            "# Figure 11: ssht, {} buckets, {} entries/bucket (Mops/s; best lock : scalability)",
            cfg.buckets, cfg.entries
        );
        let _ = write!(out, "{:>10}", "threads");
        for p in Platform::ALL {
            let _ = write!(out, " {:>24}", p.name());
        }
        let _ = writeln!(out, " {:>10}", "(mp col)");
        let base: Vec<f64> = Platform::ALL
            .iter()
            .map(|&p| {
                locks_for(p)
                    .iter()
                    .map(|&k| ssht_mops(p, SshtBackend::Lock(k), 1, cfg))
                    .fold(f64::MIN, f64::max)
            })
            .collect();
        for &t in &CROSS_PLATFORM_THREADS {
            let _ = write!(out, "{t:>10}");
            for (i, &p) in Platform::ALL.iter().enumerate() {
                let t_eff = t.min(p.topology().num_cores());
                let (mut best_k, mut best_m) = (SimLockKind::Ticket, f64::MIN);
                for &k in locks_for(p) {
                    let m = ssht_mops(p, SshtBackend::Lock(k), t_eff, cfg);
                    if m > best_m {
                        best_m = m;
                        best_k = k;
                    }
                }
                let mp = ssht_mops(p, SshtBackend::MessagePassing, t_eff, cfg);
                let _ = write!(
                    out,
                    " {:>6.1}x:{:>7}/mp{:>5.1}",
                    best_m / base[i],
                    best_k.name(),
                    mp
                );
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out);
    }
    out
}

/// Figure 12: KV-store set-only throughput under four lock algorithms
/// (plus the get-only control with `--get`).
pub fn fig12(mix: KvMix) -> String {
    let mut out = String::new();
    let name = match mix {
        KvMix::SetOnly => "set-only",
        KvMix::GetOnly => "get-only",
    };
    let locks = [
        SimLockKind::Mutex,
        SimLockKind::Tas,
        SimLockKind::Ticket,
        SimLockKind::Mcs,
    ];
    for p in Platform::ALL {
        let series: Vec<Series> = locks
            .iter()
            .map(|&k| {
                Series::new(
                    k.name(),
                    [1usize, 6, 10, 18]
                        .into_iter()
                        .map(|t| (t as f64, kv_kops(p, k, t, mix))),
                )
            })
            .collect();
        out.push_str(&render_table(
            &format!(
                "Figure 12 [{}]: memcached-model {name} throughput (Kops/s)",
                p.name()
            ),
            "threads",
            &series,
        ));
        // The paper annotates max speedup vs single thread.
        let best1 = series
            .iter()
            .map(|s| s.at(1.0).unwrap_or(f64::NAN))
            .fold(f64::MIN, f64::max);
        let best18 = series
            .iter()
            .flat_map(|s| s.ys.iter().copied())
            .fold(f64::MIN, f64::max);
        let _ = writeln!(
            out,
            "max speedup vs single thread: {:.1}x\n",
            best18 / best1
        );
    }
    out
}

/// One paper artifact: its name and a renderer producing the report.
pub type Artifact = (&'static str, Box<dyn Fn() -> String>);

/// The full artifact inventory: `(name, render)` for every table and
/// figure `repro-all` regenerates.
pub fn artifacts() -> Vec<Artifact> {
    vec![
        ("table01", Box::new(table01) as Box<dyn Fn() -> String>),
        ("table02", Box::new(|| table02(false))),
        ("table02_small", Box::new(|| table02(true))),
        ("table03", Box::new(table03)),
        ("fig03", Box::new(fig03)),
        ("fig04", Box::new(fig04)),
        ("fig05", Box::new(|| fig_locks(1, "Figure 5"))),
        ("fig06", Box::new(fig06)),
        ("fig07", Box::new(|| fig_locks(512, "Figure 7"))),
        ("fig08", Box::new(fig08)),
        ("fig09", Box::new(fig09)),
        ("fig10", Box::new(fig10)),
        ("fig11", Box::new(fig11)),
        ("fig12", Box::new(|| fig12(KvMix::SetOnly))),
        ("fig12_get", Box::new(|| fig12(KvMix::GetOnly))),
    ]
}

/// Regenerates every table and figure into `results/`, logging progress
/// to stderr. This is the body of the `repro-all` binary (also exposed
/// from the umbrella crate so `cargo run --bin repro-all` works from
/// the workspace root).
pub fn repro_all() {
    repro_filtered(None).expect("unfiltered run renders every artifact");
}

/// [`repro_all`] restricted to artifacts whose name contains `filter`
/// (`repro-all fig05` regenerates just Figure 5); `None` regenerates
/// everything. Prints a total-time summary line, so perf work on one
/// figure doesn't need the full 15-artifact run to get a number.
/// Returns the number of artifacts written, or an error message when
/// the filter matches nothing (the caller decides how to exit).
pub fn repro_filtered(filter: Option<&str>) -> Result<usize, String> {
    std::fs::create_dir_all("results").expect("create results dir");
    let total = std::time::Instant::now();
    let mut written = 0usize;
    for (name, render) in artifacts() {
        if let Some(f) = filter {
            if !name.contains(f) {
                continue;
            }
        }
        let t = std::time::Instant::now();
        let body = render();
        let path = format!("results/{name}.txt");
        std::fs::write(&path, &body).expect("write result");
        eprintln!("wrote {path} ({:.1}s)", t.elapsed().as_secs_f64());
        written += 1;
    }
    if written == 0 {
        let names: Vec<_> = artifacts().iter().map(|(n, _)| *n).collect();
        return Err(format!(
            "no artifact matches {:?}; known: {}",
            filter.unwrap_or(""),
            names.join(", ")
        ));
    }
    eprintln!(
        "total: {written} artifact(s) in {:.1}s",
        total.elapsed().as_secs_f64()
    );
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table01_lists_all_platforms() {
        let t = table01();
        for p in Platform::ALL {
            assert!(t.contains(p.name()));
        }
    }

    #[test]
    fn table03_renders() {
        let t = table03();
        assert!(t.contains("RAM"));
        assert!(t.contains("355")); // Xeon RAM latency
    }

    #[test]
    fn table02_small_scale_ratios_match_section8() {
        // Section 8: cross-socket coherence latencies are ~1.6x (2-socket
        // Opteron) and ~2.7x (2-socket Xeon) the intra-socket ones.
        let t = table02(true);
        assert!(t.contains("Opteron-2s") && t.contains("Xeon-2s"));
        // Pull the load-Modified row values for the Xeon-2s table.
        let xeon = t.split("Xeon-2s").nth(1).expect("xeon section");
        let row: Vec<u64> = xeon
            .lines()
            .find(|l| l.contains(" M ") && l.contains("load"))
            .expect("load-M row")
            .split_whitespace()
            .filter_map(|w| w.parse().ok())
            .collect();
        let (intra, cross) = (row[0] as f64, row[1] as f64);
        let ratio = cross / intra;
        assert!((1.5..4.0).contains(&ratio), "ratio={ratio:.2}");
    }
}

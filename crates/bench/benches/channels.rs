//! Message-passing costs: send/recv on the cache-line channel, and a
//! two-thread ping-pong (the native analogue of Figure 9).

use criterion::{criterion_group, criterion_main, Criterion};
use ssync_mp::channel::channel;

fn bench_send_recv_same_thread(c: &mut Criterion) {
    let (tx, rx) = channel();
    c.bench_function("channel_send_recv_local", |b| {
        b.iter(|| {
            tx.send([1, 2, 3, 4, 5, 6, 7]);
            rx.recv()
        })
    });
}

fn bench_ping_pong_threads(c: &mut Criterion) {
    c.bench_function("channel_round_trip_threads", |b| {
        let (tx_req, rx_req) = channel();
        let (tx_rep, rx_rep) = channel();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let echo = std::thread::spawn(move || {
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                if let Some(m) = rx_req.try_recv() {
                    tx_rep.send(m);
                } else {
                    std::thread::yield_now();
                }
            }
        });
        b.iter(|| {
            tx_req.send([7; 7]);
            rx_rep.recv()
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        echo.join().unwrap();
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700));
    targets = bench_send_recv_same_thread, bench_ping_pong_threads
}
criterion_main!(benches);

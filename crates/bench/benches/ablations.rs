//! Ablation benches for the design choices DESIGN.md calls out:
//! ticket-lock back-off policy, MCS vs CLH handoff, and cache-line
//! padding vs false sharing.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ssync_core::CachePadded;
use ssync_locks::{ClhLock, McsLock, RawLock, TicketLock, TicketLockNoBackoff};

fn bench_ticket_backoff_ablation(c: &mut Criterion) {
    // Uncontested: back-off must cost nothing when the lock is free.
    let mut group = c.benchmark_group("ticket_backoff_ablation");
    let with = TicketLock::new();
    group.bench_function("proportional_backoff", |b| {
        b.iter(|| {
            let t = with.lock();
            with.unlock(t);
        })
    });
    let without = TicketLockNoBackoff::new();
    group.bench_function("no_backoff", |b| {
        b.iter(|| {
            let t = without.lock();
            without.unlock(t);
        })
    });
    group.finish();
}

fn bench_queue_lock_handoff(c: &mut Criterion) {
    // Self-handoff (acquire/release chains) isolates node management
    // overhead: MCS allocates/recycles own-node, CLH adopts predecessor.
    let mut group = c.benchmark_group("queue_lock_node_management");
    let mcs = McsLock::new();
    group.bench_function("mcs_chain", |b| {
        b.iter(|| {
            for _ in 0..8 {
                let t = mcs.lock();
                mcs.unlock(t);
            }
        })
    });
    let clh = ClhLock::new();
    group.bench_function("clh_chain", |b| {
        b.iter(|| {
            for _ in 0..8 {
                let t = clh.lock();
                clh.unlock(t);
            }
        })
    });
    group.finish();
}

fn bench_padding_ablation(c: &mut Criterion) {
    // Two counters on one line vs padded lines, hammered by two threads:
    // the reason every lock in this workspace pads its fields.
    let mut group = c.benchmark_group("false_sharing_ablation");
    group.bench_function("unpadded_pair", |b| {
        let pair = [AtomicU64::new(0), AtomicU64::new(0)];
        b.iter(|| {
            std::thread::scope(|s| {
                for i in 0..2 {
                    let pair = &pair;
                    s.spawn(move || {
                        for _ in 0..2_000 {
                            pair[i].fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            })
        });
        black_box(&pair);
    });
    group.bench_function("padded_pair", |b| {
        let pair = [
            CachePadded::new(AtomicU64::new(0)),
            CachePadded::new(AtomicU64::new(0)),
        ];
        b.iter(|| {
            std::thread::scope(|s| {
                for i in 0..2 {
                    let pair = &pair;
                    s.spawn(move || {
                        for _ in 0..2_000 {
                            pair[i].fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            })
        });
        black_box(&pair);
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700));
    targets = bench_ticket_backoff_ablation, bench_queue_lock_handoff, bench_padding_ablation
}
criterion_main!(benches);

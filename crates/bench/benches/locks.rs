//! Uncontested lock paths: acquire+release cost per algorithm (the
//! native analogue of Figure 6's "single thread" bars).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ssync_locks::{AnyLock, LockKind, RawLock};

fn bench_uncontested(c: &mut Criterion) {
    let mut group = c.benchmark_group("uncontested_acquire_release");
    for kind in LockKind::ALL {
        let lock = AnyLock::new(kind, 2);
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let token = lock.lock();
                black_box(&lock);
                lock.unlock(token);
            })
        });
    }
    group.finish();
}

fn bench_try_lock_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("try_lock_free");
    for kind in LockKind::ALL {
        let lock = AnyLock::new(kind, 2);
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let token = lock.try_lock().expect("free");
                lock.unlock(token);
            })
        });
    }
    group.finish();
}

fn bench_try_lock_held(c: &mut Criterion) {
    let mut group = c.benchmark_group("try_lock_held");
    for kind in LockKind::ALL {
        let lock = AnyLock::new(kind, 2);
        let held = lock.lock();
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                assert!(black_box(lock.try_lock()).is_none());
            })
        });
        lock.unlock(held);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700));
    targets = bench_uncontested, bench_try_lock_free, bench_try_lock_held
}
criterion_main!(benches);

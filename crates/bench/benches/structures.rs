//! Concurrent-structure operation costs: the hash table (Figure 11's
//! subject), the KV store (Figure 12's), and STM transactions.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ssync_ht::HashTable;
use ssync_kv::KvStore;
use ssync_locks::{TasLock, TicketLock};
use ssync_tm::shared::TmHeap;

fn bench_hash_table(c: &mut Criterion) {
    let ht: HashTable<TicketLock> = HashTable::new(512);
    for k in 0..10_000 {
        ht.put(k, k);
    }
    let mut group = c.benchmark_group("ssht");
    group.bench_function("get_hit", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7) % 10_000;
            black_box(ht.get(k))
        })
    });
    group.bench_function("get_miss", |b| b.iter(|| black_box(ht.get(99_999_999))));
    group.bench_function("put_update", |b| b.iter(|| ht.put(42, 43)));
    group.bench_function("remove_insert", |b| {
        b.iter(|| {
            ht.remove(7);
            ht.put(7, 7)
        })
    });
    group.finish();
}

fn bench_kv(c: &mut Criterion) {
    let kv: KvStore<TicketLock> = KvStore::new(1024, 64);
    kv.set(b"hot", b"value".as_slice());
    let mut group = c.benchmark_group("kv");
    group.bench_function("get_hit", |b| b.iter(|| black_box(kv.get(b"hot"))));
    group.bench_function("set", |b| b.iter(|| kv.set(b"hot", b"value2".as_slice())));
    group.finish();
}

fn bench_stm(c: &mut Criterion) {
    let heap: TmHeap<TasLock> = TmHeap::new(64);
    let mut group = c.benchmark_group("stm");
    group.bench_function("read_only_tx", |b| b.iter(|| heap.run(|tx| tx.read(5))));
    group.bench_function("read_write_tx", |b| {
        b.iter(|| {
            heap.run(|tx| {
                let v = tx.read(5)?;
                tx.write(5, v + 1)?;
                Ok(())
            })
        })
    });
    group.bench_function("transfer_tx", |b| {
        b.iter(|| {
            heap.run(|tx| {
                let a = tx.read(8)?;
                let bv = tx.read(16)?;
                tx.write(8, a.wrapping_sub(1))?;
                tx.write(16, bv.wrapping_add(1))?;
                Ok(())
            })
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700));
    targets = bench_hash_table, bench_kv, bench_stm
}
criterion_main!(benches);

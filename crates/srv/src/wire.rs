//! The request/response wire format over `ssync-mp` messages.
//!
//! A channel message is one cache line: seven 64-bit words
//! ([`MSG_WORDS`]). Every operation is packed into a *head frame* whose
//! word 0 carries the opcode/status, an inline value length, and a
//! multi-get count; words 1 and 2 carry the key and (for CAS) the
//! expected version; words 3..7 carry the first [`HEAD_VALUE_BYTES`]
//! value bytes. Values longer than that stream in *continuation frames*
//! that use the full line ([`CONT_VALUE_BYTES`] bytes each) — the
//! channels are SPSC and FIFO, so continuations need no header; the
//! receiver knows exactly how many bytes remain.
//!
//! Batching: [`Request::MultiGet`] coalesces up to [`MGET_MAX`] keys
//! into a single head frame (Memcached's `get k1 k2 …` multi-get), and
//! the server answers with one [`Response`] per key, in key order.
//!
//! The format is symmetric by design: both sides encode with
//! [`Request::encode`] / [`Response::encode`] (a `Vec` of frames sent
//! back-to-back) and decode with `decode(head, more)`, where `more`
//! pulls the next frame *from the same peer* — the server uses
//! `ServerHub::recv_from_subset` for this, a client its reply channel.
//!
//! Replication rides the same format: a primary streams
//! [`Request::Replicate`] / [`Request::ReplicateDelete`] entries (the
//! value reusing the continuation-frame protocol) to its backups, which
//! answer with cumulative [`Response::ReplAck`]s; clients read from
//! backups with [`Request::ReplGet`] / [`Request::ReplMultiGet`], whose
//! `floor` word lets the backup answer [`Response::Stale`] instead of
//! serving data older than what the client has already observed.
//!
//! Decoding is total: an unknown opcode or status, an over-long value
//! length, or a bad multi-get count comes back as a [`WireError`]
//! instead of a panic, so one corrupt head frame cannot take down a
//! server thread (it answers [`Response::Malformed`] and keeps
//! serving). What decoding *cannot* recover is framing: a corrupt head
//! that mis-states its continuation count desynchronizes the SPSC
//! stream, which has no resynchronization point by design — the typed
//! error caps the damage to the connection, not the server.

use core::fmt;

use ssync_mp::{Message, MSG_WORDS};

/// Value bytes carried inline by a head frame (words 3..7).
pub const HEAD_VALUE_BYTES: usize = 4 * 8;

/// Value bytes carried by one continuation frame (the full line).
pub const CONT_VALUE_BYTES: usize = MSG_WORDS * 8;

/// Maximum value length the format carries (fits the 16-bit length
/// field with room to spare; caps continuation streaming).
pub const MAX_VALUE_LEN: usize = 1024;

/// Maximum keys per [`Request::MultiGet`] head frame (words 1..7).
pub const MGET_MAX: usize = MSG_WORDS - 1;

/// Keys carried inline by a [`Request::ReplMultiGet`] head frame
/// (words 2..7 — word 1 carries the read floor).
pub const REPL_MGET_HEAD_KEYS: usize = MSG_WORDS - 2;

/// Keys per [`Request::ReplMultiGet`] continuation frame.
pub const REPL_MGET_CONT_KEYS: usize = MSG_WORDS;

/// Maximum keys per [`Request::ReplMultiGet`] — unlike the primary's
/// one-line [`Request::MultiGet`], the replica read path spills keys
/// into continuation frames (the same streaming the value protocol
/// uses), so one floor-guarded round-trip can bulk-read a whole
/// batch's worth of keys from a backup.
pub const REPL_MGET_MAX: usize = 64;

const OP_GET: u64 = 1;
const OP_MGET: u64 = 2;
const OP_SET: u64 = 3;
const OP_CAS: u64 = 4;
const OP_DELETE: u64 = 5;
const OP_STOP: u64 = 6;
const OP_REPLICATE: u64 = 7;
const OP_REPL_DELETE: u64 = 8;
const OP_REPL_GET: u64 = 9;
const OP_REPL_MGET: u64 = 10;
const OP_TIMED_GET: u64 = 11;
const OP_STATS: u64 = 12;

const ST_VALUE: u64 = 1;
const ST_MISS: u64 = 2;
const ST_STORED: u64 = 3;
const ST_CAS_FAIL: u64 = 4;
const ST_DELETED: u64 = 5;
const ST_NOT_FOUND: u64 = 6;
const ST_REPL_ACK: u64 = 7;
const ST_STALE: u64 = 8;
const ST_MALFORMED: u64 = 9;
const ST_WRONG_LEADER: u64 = 10;
const ST_WRONG_TERM: u64 = 11;
const ST_WRONG_SHARD: u64 = 12;
const ST_STATS: u64 = 13;

/// Maximum serialized registry-snapshot bytes a
/// [`Response::StatsReply`] carries. The length travels in a full head
/// word (a scraped snapshot can outgrow the 16-bit value-length field),
/// so this cap is what keeps decode total against a corrupt length.
pub const STATS_MAX_PAYLOAD: usize = 1 << 20;

/// Stats payload bytes carried inline by the reply head frame
/// (words 2..7 — word 1 carries the byte length).
pub const STATS_INLINE_BYTES: usize = (MSG_WORDS - 2) * 8;

/// Sentinel for "no leader known" in [`Response::WrongLeader`]'s
/// `leader` word.
pub const NO_LEADER: u64 = u64::MAX;

/// A protocol violation caught while decoding or interpreting frames.
///
/// Decode errors (`UnknownOpcode`, `UnknownStatus`, `ValueTooLong`,
/// `BadMultiGetCount`) mean the head frame itself is corrupt; a server
/// answers them with [`Response::Malformed`]. `UnexpectedResponse`
/// means a well-formed reply arrived that makes no sense for the
/// request a client sent; `Rejected` is the client-side view of a
/// [`Response::Malformed`] reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// A request head frame carried an opcode outside the protocol.
    UnknownOpcode(u64),
    /// A response head frame carried a status outside the protocol.
    UnknownStatus(u64),
    /// A head frame claimed a value longer than [`MAX_VALUE_LEN`].
    ValueTooLong(usize),
    /// A multi-get head frame claimed zero keys or more than the
    /// variant's maximum.
    BadMultiGetCount(usize),
    /// A well-formed response that does not answer the request sent
    /// (e.g. `Stored` in reply to a `Get`); the payload names the
    /// request context.
    UnexpectedResponse(&'static str),
    /// The server rejected the request as malformed.
    Rejected,
    /// The peer's thread is gone (its channel half was dropped) — the
    /// request cannot be, or was only partially, exchanged. Clients
    /// with a retry budget treat this as retryable (the cluster may be
    /// mid-failover); without one it surfaces here instead of the
    /// pre-PR-7 behavior of spinning forever on the dead channel.
    Disconnected,
    /// The client's retry/deadline budget ran out before any server
    /// produced a definitive answer.
    Deadline,
    /// A stats-reply head frame claimed a payload longer than
    /// [`STATS_MAX_PAYLOAD`].
    StatsTooLong(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnknownOpcode(op) => write!(f, "unknown request opcode {op}"),
            WireError::UnknownStatus(st) => write!(f, "unknown response status {st}"),
            WireError::ValueTooLong(len) => {
                write!(f, "value length {len} exceeds {MAX_VALUE_LEN}")
            }
            WireError::BadMultiGetCount(n) => write!(f, "bad multi-get key count {n}"),
            WireError::UnexpectedResponse(ctx) => {
                write!(f, "unexpected response in reply to {ctx}")
            }
            WireError::Rejected => write!(f, "server rejected the request as malformed"),
            WireError::Disconnected => write!(f, "peer disconnected (channel half dropped)"),
            WireError::Deadline => write!(f, "request deadline exceeded"),
            WireError::StatsTooLong(len) => {
                write!(f, "stats payload length {len} exceeds {STATS_MAX_PAYLOAD}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A client-to-server operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Look one key up.
    Get {
        /// The key.
        key: u64,
    },
    /// Look up to [`MGET_MAX`] keys up in one round-trip; the server
    /// replies with one [`Response`] per key, in order.
    MultiGet {
        /// The keys (1..=[`MGET_MAX`]).
        keys: Vec<u64>,
    },
    /// Store a value.
    Set {
        /// The key.
        key: u64,
        /// The value (≤ [`MAX_VALUE_LEN`] bytes).
        value: Vec<u8>,
    },
    /// Store only if the key's version still matches `expected`.
    Cas {
        /// The key.
        key: u64,
        /// The version the client last observed.
        expected: u64,
        /// The replacement value (≤ [`MAX_VALUE_LEN`] bytes).
        value: Vec<u8>,
    },
    /// Remove a key.
    Delete {
        /// The key.
        key: u64,
    },
    /// Primary-to-backup: apply this store at the primary-assigned
    /// version (idempotent at the replica; see
    /// `ssync_kv::KvStore::apply_replicated`).
    Replicate {
        /// The key.
        key: u64,
        /// The version the primary assigned the write.
        version: u64,
        /// The value (≤ [`MAX_VALUE_LEN`] bytes).
        value: Vec<u8>,
    },
    /// Primary-to-backup: apply this delete tombstone.
    ReplicateDelete {
        /// The key.
        key: u64,
        /// The tombstone version the primary assigned.
        version: u64,
    },
    /// Client-to-backup read with a freshness floor: the backup serves
    /// the key only if it has applied at least version `floor`,
    /// otherwise it answers [`Response::Stale`] and the client falls
    /// back to the primary.
    ReplGet {
        /// The key.
        key: u64,
        /// The lowest applied version the client will accept.
        floor: u64,
    },
    /// Batched [`Request::ReplGet`]: up to [`REPL_MGET_MAX`] keys under
    /// one freshness floor, spilling past [`REPL_MGET_HEAD_KEYS`] into
    /// continuation frames. A stale backup answers with a single
    /// [`Response::Stale`] for the whole batch.
    ReplMultiGet {
        /// The keys (1..=[`REPL_MGET_MAX`]).
        keys: Vec<u64>,
        /// The lowest applied version the client will accept.
        floor: u64,
    },
    /// [`Request::Get`] carrying the client's intended-send timestamp
    /// (on the [`ssync_core::stats::mono_ns`] timebase). The server
    /// answers exactly like a `Get`, but first records
    /// `now - stamp` into its queue-wait histogram and times the
    /// lookup into its apply histogram — the per-op server-side split
    /// the open-loop harness uses to attribute tail cost.
    TimedGet {
        /// The key.
        key: u64,
        /// The client's intended send time, in [`ssync_core::stats::mono_ns`]
        /// nanoseconds.
        stamp: u64,
    },
    /// Scrape the node's metric registry. Served by any node in any
    /// role (like [`Request::ReplGet`], it needs no leadership); the
    /// answer is a [`Response::StatsReply`] carrying a serialized
    /// [`ssync_core::stats::RegistrySnapshot`].
    Stats,
    /// Client is done; the server exits once every client said so.
    Stop,
}

/// A server-to-client reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Hit: the stored version and value.
    Value {
        /// CAS version of the returned value.
        version: u64,
        /// The value bytes.
        value: Vec<u8>,
    },
    /// Miss on a `Get`/`MultiGet`.
    Miss,
    /// A `Set` or successful `Cas` stored the value at this version.
    Stored {
        /// The newly assigned version.
        version: u64,
    },
    /// A `Cas` lost: the key's current version (0 if the key vanished).
    CasFail {
        /// The version currently stored.
        current: u64,
    },
    /// A `Delete` removed the key at this tombstone version.
    Deleted {
        /// The tombstone version assigned to the removal (0 when the
        /// server does not version deletes).
        version: u64,
    },
    /// A `Delete` found nothing.
    NotFound,
    /// Backup-to-primary: every replicated entry with a version ≤ this
    /// has been applied (acks are cumulative, so coalescing or dropping
    /// intermediate acks is harmless).
    ReplAck {
        /// Highest contiguously applied version.
        version: u64,
    },
    /// The backup cannot serve the read: it has applied only up to
    /// `hwm`, below the client's floor (or it is down and refusing
    /// reads). The client retries at the primary.
    Stale {
        /// The backup's applied high-water version.
        hwm: u64,
    },
    /// The request head frame did not decode; nothing was executed.
    Malformed,
    /// The node is not the shard's leader for writes: nothing was
    /// executed. Carries the responder's view of the current term and
    /// leader so the client can redirect instead of rediscovering.
    WrongLeader {
        /// The term the responder currently observes.
        term: u64,
        /// The node id it believes leads that term, or [`NO_LEADER`]
        /// while the shard is leaderless (mid-failover).
        leader: u64,
    },
    /// A replication frame arrived from a sender whose term is stale
    /// (a fenced old primary): nothing was applied. Carries the
    /// responder's current term so the sender can stand down.
    WrongTerm {
        /// The term the responder currently observes.
        term: u64,
    },
    /// The responder does not own the key's routing slot under the
    /// cluster map epoch it currently observes (the client's map is
    /// stale, or a resharding cutover landed between routing and
    /// service): nothing was executed. Carries the responder's map
    /// epoch so the client refetches a map at least that fresh before
    /// retrying — the elastic-routing mirror of
    /// [`Response::WrongLeader`].
    WrongShard {
        /// The cluster-map epoch the responder currently observes.
        map_epoch: u64,
    },
    /// Answer to [`Request::Stats`]: a serialized
    /// [`ssync_core::stats::RegistrySnapshot`] (≤ [`STATS_MAX_PAYLOAD`]
    /// bytes), streamed over continuation frames like a long value.
    /// The bytes are opaque to the wire layer; a garbled payload fails
    /// in `RegistrySnapshot::from_bytes`, not here.
    StatsReply {
        /// The serialized snapshot.
        payload: Vec<u8>,
    },
}

/// Packs opcode/status (bits 0..8), multi-get count (bits 8..16) and
/// value length (bits 16..32) into word 0.
fn head_word(op: u64, count: usize, vlen: usize) -> u64 {
    debug_assert!(count < 256 && vlen < 65_536);
    op | (count as u64) << 8 | (vlen as u64) << 16
}

fn split_head_word(w: u64) -> (u64, usize, usize) {
    (
        w & 0xFF,
        (w >> 8 & 0xFF) as usize,
        (w >> 16 & 0xFFFF) as usize,
    )
}

/// Serializes `value` into the tail of `head` plus however many
/// continuation frames it needs, appending all frames to `out`.
fn push_value_frames(mut head: Message, value: &[u8], out: &mut Vec<Message>) {
    assert!(value.len() <= MAX_VALUE_LEN, "value exceeds MAX_VALUE_LEN");
    let inline = value.len().min(HEAD_VALUE_BYTES);
    write_bytes(&mut head[3..], &value[..inline]);
    out.push(head);
    for chunk in value[inline..].chunks(CONT_VALUE_BYTES) {
        let mut frame: Message = [0; MSG_WORDS];
        write_bytes(&mut frame, chunk);
        out.push(frame);
    }
}

/// Reads a `vlen`-byte value from the head frame's tail plus
/// continuation frames pulled via `more`.
fn read_value_frames(head: &Message, vlen: usize, mut more: impl FnMut() -> Message) -> Vec<u8> {
    let mut value = vec![0u8; vlen];
    let inline = vlen.min(HEAD_VALUE_BYTES);
    read_bytes(&head[3..], &mut value[..inline]);
    let mut done = inline;
    while done < vlen {
        let frame = more();
        let n = (vlen - done).min(CONT_VALUE_BYTES);
        read_bytes(&frame, &mut value[done..done + n]);
        done += n;
    }
    value
}

fn write_bytes(words: &mut [u64], bytes: &[u8]) {
    for (i, chunk) in bytes.chunks(8).enumerate() {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        words[i] = u64::from_le_bytes(w);
    }
}

fn read_bytes(words: &[u64], bytes: &mut [u8]) {
    for (i, chunk) in bytes.chunks_mut(8).enumerate() {
        let w = words[i].to_le_bytes();
        chunk.copy_from_slice(&w[..chunk.len()]);
    }
}

impl Request {
    /// Encodes the request as one head frame plus continuation frames,
    /// to be sent back-to-back on one channel.
    ///
    /// # Panics
    ///
    /// Panics on an over-long value, an empty multi-get, or one with
    /// more than [`MGET_MAX`] keys.
    pub fn encode(&self) -> Vec<Message> {
        let mut out = Vec::with_capacity(1);
        self.encode_into(&mut out);
        out
    }

    /// [`Request::encode`] into a reused buffer: clears `out` and fills
    /// it with the frames. Hot request paths (the service clients, the
    /// replication stream) call this with a per-connection scratch
    /// buffer so a long value's continuation-frame assembly costs no
    /// allocation per operation.
    ///
    /// # Panics
    ///
    /// As for [`Request::encode`].
    pub fn encode_into(&self, out: &mut Vec<Message>) {
        out.clear();
        match self {
            Request::Get { key } => {
                let mut m: Message = [0; MSG_WORDS];
                m[0] = head_word(OP_GET, 0, 0);
                m[1] = *key;
                out.push(m);
            }
            Request::MultiGet { keys } => {
                assert!(
                    !keys.is_empty() && keys.len() <= MGET_MAX,
                    "multi-get takes 1..={MGET_MAX} keys"
                );
                let mut m: Message = [0; MSG_WORDS];
                m[0] = head_word(OP_MGET, keys.len(), 0);
                m[1..=keys.len()].copy_from_slice(keys);
                out.push(m);
            }
            Request::Set { key, value } => {
                let mut m: Message = [0; MSG_WORDS];
                m[0] = head_word(OP_SET, 0, value.len());
                m[1] = *key;
                push_value_frames(m, value, out);
            }
            Request::Cas {
                key,
                expected,
                value,
            } => {
                let mut m: Message = [0; MSG_WORDS];
                m[0] = head_word(OP_CAS, 0, value.len());
                m[1] = *key;
                m[2] = *expected;
                push_value_frames(m, value, out);
            }
            Request::Delete { key } => {
                let mut m: Message = [0; MSG_WORDS];
                m[0] = head_word(OP_DELETE, 0, 0);
                m[1] = *key;
                out.push(m);
            }
            Request::Replicate {
                key,
                version,
                value,
            } => {
                let mut m: Message = [0; MSG_WORDS];
                m[0] = head_word(OP_REPLICATE, 0, value.len());
                m[1] = *key;
                m[2] = *version;
                push_value_frames(m, value, out);
            }
            Request::ReplicateDelete { key, version } => {
                let mut m: Message = [0; MSG_WORDS];
                m[0] = head_word(OP_REPL_DELETE, 0, 0);
                m[1] = *key;
                m[2] = *version;
                out.push(m);
            }
            Request::ReplGet { key, floor } => {
                let mut m: Message = [0; MSG_WORDS];
                m[0] = head_word(OP_REPL_GET, 0, 0);
                m[1] = *key;
                m[2] = *floor;
                out.push(m);
            }
            Request::ReplMultiGet { keys, floor } => {
                assert!(
                    !keys.is_empty() && keys.len() <= REPL_MGET_MAX,
                    "replica multi-get takes 1..={REPL_MGET_MAX} keys"
                );
                let mut m: Message = [0; MSG_WORDS];
                m[0] = head_word(OP_REPL_MGET, keys.len(), 0);
                m[1] = *floor;
                let inline = keys.len().min(REPL_MGET_HEAD_KEYS);
                m[2..2 + inline].copy_from_slice(&keys[..inline]);
                out.push(m);
                for chunk in keys[inline..].chunks(REPL_MGET_CONT_KEYS) {
                    let mut frame: Message = [0; MSG_WORDS];
                    frame[..chunk.len()].copy_from_slice(chunk);
                    out.push(frame);
                }
            }
            Request::TimedGet { key, stamp } => {
                let mut m: Message = [0; MSG_WORDS];
                m[0] = head_word(OP_TIMED_GET, 0, 0);
                m[1] = *key;
                m[2] = *stamp;
                out.push(m);
            }
            Request::Stats => {
                let mut m: Message = [0; MSG_WORDS];
                m[0] = head_word(OP_STATS, 0, 0);
                out.push(m);
            }
            Request::Stop => {
                let mut m: Message = [0; MSG_WORDS];
                m[0] = head_word(OP_STOP, 0, 0);
                out.push(m);
            }
        }
    }

    /// Decodes a request from its head frame, pulling continuation
    /// frames from `more` (which must read from the same sender).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on an unknown opcode, an over-long value
    /// length, or a bad multi-get count — all checked *before* any
    /// continuation frame is pulled, so an erroring decode never blocks
    /// on frames that will not come.
    pub fn decode(head: Message, more: impl FnMut() -> Message) -> Result<Request, WireError> {
        let (op, count, vlen) = split_head_word(head[0]);
        if matches!(op, OP_SET | OP_CAS | OP_REPLICATE) && vlen > MAX_VALUE_LEN {
            return Err(WireError::ValueTooLong(vlen));
        }
        Ok(match op {
            OP_GET => Request::Get { key: head[1] },
            OP_MGET => {
                if count == 0 || count > MGET_MAX {
                    return Err(WireError::BadMultiGetCount(count));
                }
                Request::MultiGet {
                    keys: head[1..=count].to_vec(),
                }
            }
            OP_SET => Request::Set {
                key: head[1],
                value: read_value_frames(&head, vlen, more),
            },
            OP_CAS => Request::Cas {
                key: head[1],
                expected: head[2],
                value: read_value_frames(&head, vlen, more),
            },
            OP_DELETE => Request::Delete { key: head[1] },
            OP_REPLICATE => Request::Replicate {
                key: head[1],
                version: head[2],
                value: read_value_frames(&head, vlen, more),
            },
            OP_REPL_DELETE => Request::ReplicateDelete {
                key: head[1],
                version: head[2],
            },
            OP_REPL_GET => Request::ReplGet {
                key: head[1],
                floor: head[2],
            },
            OP_REPL_MGET => {
                if count == 0 || count > REPL_MGET_MAX {
                    return Err(WireError::BadMultiGetCount(count));
                }
                let mut more = more;
                let inline = count.min(REPL_MGET_HEAD_KEYS);
                let mut keys = head[2..2 + inline].to_vec();
                while keys.len() < count {
                    let frame = more();
                    let take = (count - keys.len()).min(REPL_MGET_CONT_KEYS);
                    keys.extend_from_slice(&frame[..take]);
                }
                Request::ReplMultiGet {
                    keys,
                    floor: head[1],
                }
            }
            OP_TIMED_GET => Request::TimedGet {
                key: head[1],
                stamp: head[2],
            },
            OP_STATS => Request::Stats,
            OP_STOP => Request::Stop,
            _ => return Err(WireError::UnknownOpcode(op)),
        })
    }
}

impl Response {
    /// Encodes the response as one head frame plus continuation frames.
    ///
    /// # Panics
    ///
    /// Panics on an over-long value.
    pub fn encode(&self) -> Vec<Message> {
        let mut out = Vec::with_capacity(1);
        self.encode_into(&mut out);
        out
    }

    /// [`Response::encode`] into a reused buffer: clears `out` and
    /// fills it with the frames — the server loops' per-connection
    /// scratch, so replying costs no allocation per operation.
    ///
    /// # Panics
    ///
    /// As for [`Response::encode`].
    pub fn encode_into(&self, out: &mut Vec<Message>) {
        out.clear();
        let mut m: Message = [0; MSG_WORDS];
        match self {
            Response::Value { version, value } => {
                m[0] = head_word(ST_VALUE, 0, value.len());
                m[1] = *version;
                push_value_frames(m, value, out);
            }
            Response::Miss => {
                m[0] = head_word(ST_MISS, 0, 0);
                out.push(m);
            }
            Response::Stored { version } => {
                m[0] = head_word(ST_STORED, 0, 0);
                m[1] = *version;
                out.push(m);
            }
            Response::CasFail { current } => {
                m[0] = head_word(ST_CAS_FAIL, 0, 0);
                m[1] = *current;
                out.push(m);
            }
            Response::Deleted { version } => {
                m[0] = head_word(ST_DELETED, 0, 0);
                m[1] = *version;
                out.push(m);
            }
            Response::NotFound => {
                m[0] = head_word(ST_NOT_FOUND, 0, 0);
                out.push(m);
            }
            Response::ReplAck { version } => {
                m[0] = head_word(ST_REPL_ACK, 0, 0);
                m[1] = *version;
                out.push(m);
            }
            Response::Stale { hwm } => {
                m[0] = head_word(ST_STALE, 0, 0);
                m[1] = *hwm;
                out.push(m);
            }
            Response::Malformed => {
                m[0] = head_word(ST_MALFORMED, 0, 0);
                out.push(m);
            }
            Response::WrongLeader { term, leader } => {
                m[0] = head_word(ST_WRONG_LEADER, 0, 0);
                m[1] = *term;
                m[2] = *leader;
                out.push(m);
            }
            Response::WrongTerm { term } => {
                m[0] = head_word(ST_WRONG_TERM, 0, 0);
                m[1] = *term;
                out.push(m);
            }
            Response::WrongShard { map_epoch } => {
                m[0] = head_word(ST_WRONG_SHARD, 0, 0);
                m[1] = *map_epoch;
                out.push(m);
            }
            Response::StatsReply { payload } => {
                assert!(
                    payload.len() <= STATS_MAX_PAYLOAD,
                    "stats payload exceeds STATS_MAX_PAYLOAD"
                );
                m[0] = head_word(ST_STATS, 0, 0);
                m[1] = payload.len() as u64;
                let inline = payload.len().min(STATS_INLINE_BYTES);
                write_bytes(&mut m[2..], &payload[..inline]);
                out.push(m);
                for chunk in payload[inline..].chunks(CONT_VALUE_BYTES) {
                    let mut frame: Message = [0; MSG_WORDS];
                    write_bytes(&mut frame, chunk);
                    out.push(frame);
                }
            }
        }
    }

    /// Decodes a response from its head frame, pulling continuation
    /// frames from `more`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on an unknown status word or an
    /// over-long value length, checked before any continuation frame is
    /// pulled.
    pub fn decode(head: Message, more: impl FnMut() -> Message) -> Result<Response, WireError> {
        let (st, _, vlen) = split_head_word(head[0]);
        Ok(match st {
            ST_VALUE => {
                if vlen > MAX_VALUE_LEN {
                    return Err(WireError::ValueTooLong(vlen));
                }
                Response::Value {
                    version: head[1],
                    value: read_value_frames(&head, vlen, more),
                }
            }
            ST_MISS => Response::Miss,
            ST_STORED => Response::Stored { version: head[1] },
            ST_CAS_FAIL => Response::CasFail { current: head[1] },
            ST_DELETED => Response::Deleted { version: head[1] },
            ST_NOT_FOUND => Response::NotFound,
            ST_REPL_ACK => Response::ReplAck { version: head[1] },
            ST_STALE => Response::Stale { hwm: head[1] },
            ST_MALFORMED => Response::Malformed,
            ST_WRONG_LEADER => Response::WrongLeader {
                term: head[1],
                leader: head[2],
            },
            ST_WRONG_TERM => Response::WrongTerm { term: head[1] },
            ST_WRONG_SHARD => Response::WrongShard { map_epoch: head[1] },
            ST_STATS => {
                let len =
                    usize::try_from(head[1]).map_err(|_| WireError::StatsTooLong(usize::MAX))?;
                if len > STATS_MAX_PAYLOAD {
                    return Err(WireError::StatsTooLong(len));
                }
                let mut more = more;
                let mut payload = vec![0u8; len];
                let inline = len.min(STATS_INLINE_BYTES);
                read_bytes(&head[2..], &mut payload[..inline]);
                let mut done = inline;
                while done < len {
                    let frame = more();
                    let n = (len - done).min(CONT_VALUE_BYTES);
                    read_bytes(&frame, &mut payload[done..done + n]);
                    done += n;
                }
                Response::StatsReply { payload }
            }
            _ => return Err(WireError::UnknownStatus(st)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-trips a request through encode/decode over a frame queue.
    fn roundtrip_request(req: Request) -> Request {
        let frames = req.encode();
        let mut rest = frames[1..].iter().copied();
        Request::decode(frames[0], move || rest.next().expect("frame underrun"))
            .expect("well-formed request must decode")
    }

    fn roundtrip_response(resp: Response) -> Response {
        let frames = resp.encode();
        let mut rest = frames[1..].iter().copied();
        Response::decode(frames[0], move || rest.next().expect("frame underrun"))
            .expect("well-formed response must decode")
    }

    #[test]
    fn requests_roundtrip() {
        let samples = vec![
            Request::Get { key: 42 },
            Request::MultiGet {
                keys: vec![1, u64::MAX, 3],
            },
            Request::Set {
                key: 7,
                value: b"short".to_vec(),
            },
            Request::Cas {
                key: 9,
                expected: 1234,
                value: vec![0xAB; HEAD_VALUE_BYTES], // Exactly inline-full.
            },
            Request::Delete { key: 0 },
            Request::Replicate {
                key: 11,
                version: 88,
                value: vec![0xCD; HEAD_VALUE_BYTES + 9], // Spills a continuation.
            },
            Request::ReplicateDelete {
                key: 12,
                version: 89,
            },
            Request::ReplGet { key: 13, floor: 90 },
            Request::ReplMultiGet {
                keys: vec![5, 6, 7, 8, 9],
                floor: u64::MAX,
            },
            Request::ReplMultiGet {
                // Wide batch: spills into continuation frames (5 inline
                // + 7 per frame; 24 keys = head + 3 frames).
                keys: (100..124).collect(),
                floor: 77,
            },
            Request::ReplMultiGet {
                keys: (0..REPL_MGET_MAX as u64).collect(),
                floor: 1,
            },
            Request::TimedGet {
                key: 21,
                stamp: u64::MAX,
            },
            Request::Stats,
            Request::Stop,
        ];
        for req in samples {
            assert_eq!(roundtrip_request(req.clone()), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let samples = vec![
            Response::Value {
                version: 99,
                value: b"v".to_vec(),
            },
            Response::Value {
                version: 1,
                value: vec![],
            },
            Response::Miss,
            Response::Stored { version: 5 },
            Response::CasFail { current: 17 },
            Response::Deleted { version: 41 },
            Response::NotFound,
            Response::ReplAck { version: 1000 },
            Response::Stale { hwm: 7 },
            Response::Malformed,
            Response::WrongLeader { term: 3, leader: 1 },
            Response::WrongLeader {
                term: 4,
                leader: NO_LEADER,
            },
            Response::WrongTerm { term: 9 },
            Response::WrongShard { map_epoch: 6 },
            Response::WrongShard {
                map_epoch: u64::MAX,
            },
            Response::StatsReply { payload: vec![] },
            Response::StatsReply {
                payload: (0..STATS_INLINE_BYTES).map(|i| i as u8).collect(),
            },
            Response::StatsReply {
                // Spills into continuation frames.
                payload: (0..STATS_INLINE_BYTES + 3 * CONT_VALUE_BYTES + 5)
                    .map(|i| (i * 17 % 249) as u8)
                    .collect(),
            },
        ];
        for resp in samples {
            assert_eq!(roundtrip_response(resp.clone()), resp);
        }
    }

    #[test]
    fn stats_reply_frame_counts_and_length_cap() {
        let n = STATS_INLINE_BYTES + 2 * CONT_VALUE_BYTES + 1;
        let frames = Response::StatsReply {
            payload: vec![7; n],
        }
        .encode();
        assert_eq!(frames.len(), 4); // head + 2 full + 1 partial continuation
                                     // A corrupt length is refused before any continuation is pulled.
        let mut m: Message = [0; MSG_WORDS];
        m[0] = head_word(ST_STATS, 0, 0);
        m[1] = (STATS_MAX_PAYLOAD + 1) as u64;
        assert_eq!(
            Response::decode(m, || panic!("must not pull continuations")),
            Err(WireError::StatsTooLong(STATS_MAX_PAYLOAD + 1))
        );
    }

    #[test]
    fn corrupt_frames_decode_to_typed_errors() {
        let no_more = || panic!("decode must not pull continuations for a corrupt head");
        // Unknown opcode / status.
        let mut m: Message = [0; MSG_WORDS];
        m[0] = head_word(0xEE, 0, 0);
        assert_eq!(
            Request::decode(m, no_more),
            Err(WireError::UnknownOpcode(0xEE))
        );
        assert_eq!(
            Response::decode(m, no_more),
            Err(WireError::UnknownStatus(0xEE))
        );
        // Over-long value length on every valued frame kind.
        for op in [OP_SET, OP_CAS, OP_REPLICATE] {
            let mut m: Message = [0; MSG_WORDS];
            m[0] = head_word(op, 0, MAX_VALUE_LEN + 1);
            assert_eq!(
                Request::decode(m, no_more),
                Err(WireError::ValueTooLong(MAX_VALUE_LEN + 1))
            );
        }
        let mut m: Message = [0; MSG_WORDS];
        m[0] = head_word(ST_VALUE, 0, MAX_VALUE_LEN + 1);
        assert_eq!(
            Response::decode(m, no_more),
            Err(WireError::ValueTooLong(MAX_VALUE_LEN + 1))
        );
        // Zero- and over-count multi-gets.
        for (op, bad) in [
            (OP_MGET, 0),
            (OP_MGET, MGET_MAX + 1),
            (OP_REPL_MGET, 0),
            (OP_REPL_MGET, REPL_MGET_MAX + 1),
        ] {
            let mut m: Message = [0; MSG_WORDS];
            m[0] = head_word(op, bad, 0);
            assert_eq!(
                Request::decode(m, no_more),
                Err(WireError::BadMultiGetCount(bad))
            );
        }
    }

    #[test]
    fn long_values_use_continuation_frames() {
        // Every interesting boundary: empty, inline-exact, one byte
        // over, continuation-exact, max.
        for len in [
            0,
            1,
            HEAD_VALUE_BYTES,
            HEAD_VALUE_BYTES + 1,
            HEAD_VALUE_BYTES + CONT_VALUE_BYTES,
            HEAD_VALUE_BYTES + CONT_VALUE_BYTES + 1,
            MAX_VALUE_LEN,
        ] {
            let value: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let req = Request::Set { key: 1, value };
            let frames = req.encode();
            let expected_frames = 1 + len
                .saturating_sub(HEAD_VALUE_BYTES)
                .div_ceil(CONT_VALUE_BYTES);
            assert_eq!(frames.len(), expected_frames, "len {len}");
            assert_eq!(roundtrip_request(req.clone()), req);
        }
    }

    #[test]
    #[should_panic]
    fn oversized_value_rejected() {
        let _ = Request::Set {
            key: 1,
            value: vec![0; MAX_VALUE_LEN + 1],
        }
        .encode();
    }

    #[test]
    #[should_panic]
    fn oversized_multiget_rejected() {
        let _ = Request::MultiGet {
            keys: vec![0; MGET_MAX + 1],
        }
        .encode();
    }

    #[test]
    #[should_panic]
    fn oversized_repl_multiget_rejected() {
        let _ = Request::ReplMultiGet {
            keys: vec![0; REPL_MGET_MAX + 1],
            floor: 0,
        }
        .encode();
    }

    #[test]
    fn wide_repl_multiget_frame_counts() {
        for (n, frames) in [(1, 1), (5, 1), (6, 2), (12, 2), (13, 3), (64, 10)] {
            let req = Request::ReplMultiGet {
                keys: (0..n as u64).collect(),
                floor: 0,
            };
            assert_eq!(req.encode().len(), frames, "{n} keys");
        }
    }
}

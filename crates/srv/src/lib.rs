//! # ssync-srv
//!
//! The serving layer over the SSYNC stack: a sharded key-value
//! *service* in the spirit of the paper's Section 6.4 capstone ("real
//! software under real traffic" — Memcached with pluggable locks), but
//! scaled out the way production caches are deployed:
//!
//! * [`router`] — keyspace partitioning over N [`ssync_kv::KvStore`]
//!   shards, generic over the lock algorithm `R` like everything else
//!   in the tree;
//! * [`wire`] — the request/response format packed into `ssync-mp`
//!   cache-line messages, with multi-get batching and continuation
//!   frames for long values;
//! * [`service`] — per-shard server threads multiplexing clients over
//!   [`ssync_mp::ServerHub`], plus the [`service::ServiceClient`]
//!   round-trip API — both generic over the transport (one-line
//!   channels or bounded rings, with pipelined reads on the latter);
//! * [`workload`] — a deterministic workload engine: seeded zipfian and
//!   uniform key distributions, YCSB-style read/write mixes, value-size
//!   distributions, a closed-loop driver, and an open-loop driver with
//!   Poisson arrivals whose latencies are stamped from intended send
//!   times (coordinated-omission-free by construction).
//!
//! The `kv-perf` binary in `ssync-ccbench` sweeps this subsystem over
//! {lock algorithm × shard count × skew × mix} and writes
//! `BENCH_kv.json`.
//!
//! # Examples
//!
//! ```
//! use ssync_srv::router::ShardRouter;
//! use ssync_srv::service::{serve, wire_mesh};
//! use ssync_locks::TicketLock;
//!
//! let router: ShardRouter<TicketLock> = ShardRouter::new(2, 64, 8);
//! let (endpoints, mut clients) = wire_mesh(router.num_shards(), 1);
//! std::thread::scope(|s| {
//!     for (shard, endpoint) in endpoints.into_iter().enumerate() {
//!         let store = router.shard(shard);
//!         s.spawn(move || serve(store, endpoint));
//!     }
//!     let client = clients.pop().unwrap();
//!     let version = client.set(7, b"value".to_vec()).expect("wire error");
//!     let (v, value) = client.get(7).expect("wire error").unwrap();
//!     assert_eq!((v, value.as_slice()), (version, b"value".as_slice()));
//!     client.close();
//! });
//! ```

pub mod router;
pub mod service;
pub mod wire;
pub mod workload;

pub use router::{shard_of, slot_of, ShardRouter, ROUTE_SLOTS};
pub use service::{ring_mesh, serve, wire_mesh, wire_mesh_with, KvClient, ServiceClient};
pub use wire::{Request, Response, WireError, NO_LEADER};
pub use workload::{
    run_open_loop, KeyDist, Mix, Op, OpStream, OpenLoopReport, OpenLoopSpec, PoissonArrivals,
    Transport, ValueSize, WorkloadReport, WorkloadSpec,
};

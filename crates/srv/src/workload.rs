//! Deterministic workload engine: seeded key distributions (uniform and
//! YCSB-style zipfian), read/write mix presets, value-size
//! distributions, a closed-loop driver over the service, and an
//! open-loop driver with Poisson arrivals for tail-latency work.
//!
//! Everything is a pure function of `(spec.seed, worker index)`: the
//! same spec issues exactly the same operation sequence per worker on
//! every run, so benchmark op counts are replayable even though wall
//! times are not. The zipfian sampler is the standard Gray et al.
//! generator YCSB uses, with ranks scrambled through a SplitMix64
//! finalizer so the hot set spreads over the keyspace (and therefore
//! over the shards) instead of clustering at key 0.
//!
//! ## Open loop vs closed loop
//!
//! The closed-loop drivers measure *capacity*: each worker issues its
//! next operation the moment the previous one finishes, so offered
//! load adapts to service time and a slow request silently delays all
//! the requests behind it. That adaptation is exactly what makes
//! closed-loop latency numbers lie about tails (coordinated omission).
//! The open-loop driver ([`run_open_loop`]) instead draws arrival
//! times from a deterministic Poisson process and stamps every
//! operation's latency from its *intended* arrival time: if the
//! system falls behind, the backlog shows up as latency rather than
//! as silently reduced load.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ssync_core::stats::{mono_ns, Histogram, HistogramSnapshot};
use ssync_kv::StatsSnapshot;
use ssync_locks::RawLock;
use ssync_mp::{MsgReceiver, MsgSender};

use crate::router::{shard_of, ShardRouter};
use crate::service::{ring_mesh, serve, wire_mesh, KvClient, Mesh, ServiceClient};
use crate::wire::MAX_VALUE_LEN;

/// Which channel flavour carries a closed-loop run's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// The paper-calibrated one-line channels: one message in flight
    /// per direction, the strictly request/reply client.
    OneLine,
    /// Bounded SPSC rings of `depth` slots, with clients pipelining up
    /// to `window` reads in flight across their shards
    /// ([`drive_worker_pipelined`]). `window` must not exceed `depth`
    /// (the no-blocking-sends discipline of the pipelined client).
    Ring {
        /// Ring depth in message slots (positive power of two).
        depth: usize,
        /// Maximum reads in flight per client across all shards.
        window: usize,
    },
}

impl Transport {
    /// Short display name for benchmark labels.
    pub fn label(&self) -> &'static str {
        match self {
            Transport::OneLine => "oneline",
            Transport::Ring { .. } => "ring",
        }
    }
}

/// Largest read batch the engine will emit. Batches wider than one
/// multi-get frame are split into frame-sized chunks by the clients —
/// and, when replicas exist, fanned out across a shard's endpoints
/// concurrently, which is where replica reads buy round-trip
/// parallelism.
pub const MAX_BATCH: usize = 32;

/// How keys are drawn from the keyspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with parameter `theta` in (0, 1); YCSB's default skew is
    /// `theta = 0.99`.
    Zipfian {
        /// Skew parameter; larger is more skewed.
        theta: f64,
    },
}

impl KeyDist {
    /// Short display name for benchmark labels.
    pub fn label(&self) -> String {
        match self {
            KeyDist::Uniform => "uniform".to_string(),
            KeyDist::Zipfian { theta } => format!("zipf{theta:.2}"),
        }
    }
}

/// An operation mix, in percent (must sum to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Plain lookups.
    pub read_pct: u8,
    /// Blind writes (`set`).
    pub update_pct: u8,
    /// Read-modify-write via CAS.
    pub cas_pct: u8,
    /// Deletes.
    pub delete_pct: u8,
    /// Display name for benchmark labels.
    pub name: &'static str,
}

impl Mix {
    /// YCSB workload A: 50% reads, 50% updates.
    pub const YCSB_A: Mix = Mix::new("ycsb-a", 50, 50, 0, 0);
    /// YCSB workload B: 95% reads, 5% updates.
    pub const YCSB_B: Mix = Mix::new("ycsb-b", 95, 5, 0, 0);
    /// YCSB workload C: read-only.
    pub const YCSB_C: Mix = Mix::new("ycsb-c", 100, 0, 0, 0);
    /// A contended mixed workload: reads plus CAS read-modify-writes
    /// and delete churn (every delete is eventually refilled by an
    /// update landing on the same key).
    pub const CHURN: Mix = Mix::new("churn", 60, 25, 10, 5);

    /// Builds a mix, checking the percentages sum to 100.
    pub const fn new(
        name: &'static str,
        read_pct: u8,
        update_pct: u8,
        cas_pct: u8,
        delete_pct: u8,
    ) -> Mix {
        assert!(
            read_pct as u16 + update_pct as u16 + cas_pct as u16 + delete_pct as u16 == 100,
            "mix percentages must sum to 100"
        );
        Mix {
            read_pct,
            update_pct,
            cas_pct,
            delete_pct,
            name,
        }
    }
}

/// How value sizes are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueSize {
    /// Every value exactly this long.
    Fixed(usize),
    /// Uniform in `min..=max`.
    Uniform {
        /// Smallest value length.
        min: usize,
        /// Largest value length (≤ [`MAX_VALUE_LEN`]).
        max: usize,
    },
}

impl ValueSize {
    /// Draws one value length.
    ///
    /// # Panics
    ///
    /// Panics if the drawn length exceeds [`MAX_VALUE_LEN`].
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let len = match *self {
            ValueSize::Fixed(n) => n,
            ValueSize::Uniform { min, max } => rng.gen_range(min..=max),
        };
        assert!(len <= MAX_VALUE_LEN, "value size exceeds MAX_VALUE_LEN");
        len
    }
}

/// A full workload description. `Copy` on purpose: benchmark sweeps
/// stamp out variations from a base spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Keyspace size (keys are `0..keys`).
    pub keys: u64,
    /// Key distribution.
    pub dist: KeyDist,
    /// Operation mix.
    pub mix: Mix,
    /// Value-size distribution.
    pub vsize: ValueSize,
    /// Reads per multi-get batch (1 disables batching; ≤ [`MAX_BATCH`]).
    pub batch: usize,
    /// Master seed; workers derive their streams from it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A small default spec tests and examples start from.
    pub fn example() -> WorkloadSpec {
        WorkloadSpec {
            keys: 1024,
            dist: KeyDist::Zipfian { theta: 0.99 },
            mix: Mix::YCSB_B,
            vsize: ValueSize::Fixed(32),
            batch: 1,
            seed: 0x5EED,
        }
    }
}

/// One operation the engine asks a client to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Look one key up.
    Get(u64),
    /// Batched lookup.
    MultiGet(Vec<u64>),
    /// Blind write.
    Set(u64, Vec<u8>),
    /// Read-modify-write: fetch the version, then CAS.
    Cas(u64, Vec<u8>),
    /// Remove the key.
    Delete(u64),
}

impl Op {
    /// Key-operations this op counts for (a batch counts per key).
    pub fn weight(&self) -> u64 {
        match self {
            Op::MultiGet(keys) => keys.len() as u64,
            _ => 1,
        }
    }
}

/// Counts of issued operations, in key-ops.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpCounts {
    /// Lookups (batched ones counted per key).
    pub gets: u64,
    /// Blind writes.
    pub sets: u64,
    /// CAS read-modify-writes.
    pub cas: u64,
    /// Deletes.
    pub deletes: u64,
}

impl OpCounts {
    /// Total key-operations.
    pub fn total(&self) -> u64 {
        self.gets + self.sets + self.cas + self.deletes
    }

    /// Field-wise sum, for aggregating workers.
    pub fn merge(&self, other: &OpCounts) -> OpCounts {
        OpCounts {
            gets: self.gets + other.gets,
            sets: self.sets + other.sets,
            cas: self.cas + other.cas,
            deletes: self.deletes + other.deletes,
        }
    }
}

/// The Gray et al. zipfian rank sampler (what YCSB uses), returning
/// ranks in `0..n` with rank 0 hottest.
#[derive(Debug, Clone)]
struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0, "empty keyspace");
        assert!(
            theta > 0.0 && theta < 1.0,
            "zipfian theta must be in (0, 1)"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// The generalized harmonic number `H_{n,theta}`.
    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    fn next_rank(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Scrambles a zipfian rank over the keyspace (YCSB's "scrambled
/// zipfian"), so the hot set is spread across shards. Collisions are
/// fine — they only perturb the tail. Uses the same [`ssync_core::mix64`]
/// finalizer as `shard_of` but with a different additive offset, so the
/// two hash families stay decorrelated.
fn scramble(rank: u64, n: u64) -> u64 {
    ssync_core::mix64(rank.wrapping_add(0x2545_F491_4F6C_DD1D)) % n
}

/// A worker's deterministic operation stream.
#[derive(Debug, Clone)]
pub struct OpStream {
    spec: WorkloadSpec,
    rng: SmallRng,
    zipf: Option<Zipfian>,
}

impl OpStream {
    /// The stream for worker `worker` of `spec`. Distinct workers get
    /// decorrelated but reproducible streams.
    pub fn new(spec: &WorkloadSpec, worker: u64) -> OpStream {
        assert!(spec.keys > 0, "empty keyspace");
        assert!(
            spec.batch >= 1 && spec.batch <= MAX_BATCH,
            "batch must be in 1..={MAX_BATCH}"
        );
        let zipf = match spec.dist {
            KeyDist::Uniform => None,
            KeyDist::Zipfian { theta } => Some(Zipfian::new(spec.keys, theta)),
        };
        OpStream {
            spec: *spec,
            rng: SmallRng::seed_from_u64(spec.seed ^ scramble(worker, u64::MAX)),
            zipf,
        }
    }

    fn next_key(&mut self) -> u64 {
        match &self.zipf {
            None => self.rng.gen_range(0..self.spec.keys),
            Some(z) => scramble(z.next_rank(&mut self.rng), self.spec.keys),
        }
    }

    fn next_value(&mut self) -> Vec<u8> {
        let len = self.spec.vsize.sample(&mut self.rng);
        (0..len).map(|_| self.rng.gen::<u8>()).collect()
    }

    /// The next operation. Reads coalesce into batches of
    /// `spec.batch` keys when batching is on.
    pub fn next_op(&mut self) -> Op {
        let m = self.spec.mix;
        let roll = self.rng.gen_range(0u8..100);
        if roll < m.read_pct {
            if self.spec.batch > 1 {
                let keys = (0..self.spec.batch).map(|_| self.next_key()).collect();
                Op::MultiGet(keys)
            } else {
                Op::Get(self.next_key())
            }
        } else if roll < m.read_pct + m.update_pct {
            let key = self.next_key();
            let value = self.next_value();
            Op::Set(key, value)
        } else if roll < m.read_pct + m.update_pct + m.cas_pct {
            let key = self.next_key();
            let value = self.next_value();
            Op::Cas(key, value)
        } else {
            Op::Delete(self.next_key())
        }
    }
}

/// What a workload run measured.
#[derive(Debug, Clone, Default)]
pub struct WorkloadReport {
    /// Operations issued, by type — deterministic per `(spec, workers,
    /// ops_per_worker)`.
    pub issued: OpCounts,
    /// Client-observed read hits (including the read half of a CAS).
    pub hits: u64,
    /// Client-observed read misses.
    pub misses: u64,
    /// CAS attempts that stored.
    pub cas_ok: u64,
    /// CAS attempts that lost (stale version or missing key).
    pub cas_fail: u64,
    /// Deletes that removed a key.
    pub deleted: u64,
    /// Wall time of the measure phase.
    pub wall: Duration,
    /// Store-side counter deltas over the measure phase (maintenance
    /// stalls live here).
    pub store: StatsSnapshot,
}

impl WorkloadReport {
    /// Key-operations per wall-second.
    pub fn ops_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            return 0.0;
        }
        self.issued.total() as f64 / s
    }

    /// Fraction of reads that hit.
    pub fn hit_rate(&self) -> f64 {
        let reads = self.hits + self.misses;
        if reads == 0 {
            return 0.0;
        }
        self.hits as f64 / reads as f64
    }
}

/// One worker's closed-loop tally, merged into the report after a run.
#[derive(Debug, Default, Clone, Copy)]
pub struct Tally {
    /// Operations issued, by type.
    pub issued: OpCounts,
    /// Read hits observed.
    pub hits: u64,
    /// Read misses observed.
    pub misses: u64,
    /// CAS attempts that stored.
    pub cas_ok: u64,
    /// CAS attempts that lost.
    pub cas_fail: u64,
    /// Deletes that removed a key.
    pub deleted: u64,
}

/// Issues one op through the blocking round-trip API, recording it in
/// the tally — the shared leg of the sequential and pipelined drivers.
///
/// The driver owns the connection; a wire error here is a harness bug,
/// not load, so it unwraps — the *server* is the side that must never
/// die on a bad frame.
fn apply_op<C: KvClient>(client: &C, op: Op, tally: &mut Tally) {
    match op {
        Op::Get(key) => {
            tally.issued.gets += 1;
            match client.get(key).expect("wire error") {
                Some(_) => tally.hits += 1,
                None => tally.misses += 1,
            }
        }
        Op::MultiGet(keys) => {
            tally.issued.gets += keys.len() as u64;
            for res in client.get_many(&keys).expect("wire error") {
                match res {
                    Some(_) => tally.hits += 1,
                    None => tally.misses += 1,
                }
            }
        }
        Op::Set(key, value) => {
            tally.issued.sets += 1;
            client.set(key, value).expect("wire error");
        }
        Op::Cas(key, value) => {
            tally.issued.cas += 1;
            match client.get(key).expect("wire error") {
                Some((version, _)) => {
                    tally.hits += 1;
                    match client.cas(key, value, version).expect("wire error") {
                        Ok(_) => tally.cas_ok += 1,
                        Err(_) => tally.cas_fail += 1,
                    }
                }
                None => {
                    tally.misses += 1;
                    tally.cas_fail += 1;
                }
            }
        }
        Op::Delete(key) => {
            tally.issued.deletes += 1;
            if client.delete(key).expect("wire error").is_some() {
                tally.deleted += 1;
            }
        }
    }
}

/// Runs one client worker's closed loop for `ops` key-operations over
/// any [`KvClient`] — the plain service client or the replication
/// layer's replica-reading one. The caller closes the client
/// afterwards (it may want to read client-side counters first).
pub fn drive_worker<C: KvClient>(client: &C, mut stream: OpStream, ops: u64) -> Tally {
    let mut tally = Tally::default();
    while tally.issued.total() < ops {
        let op = stream.next_op();
        apply_op(client, op, &mut tally);
    }
    tally
}

/// The pipelined closed loop for ring transports: plain reads are
/// fired without waiting ([`ServiceClient::send_get`]) and their
/// replies drained in arrival order once `window` are in flight, so a
/// read-heavy worker hands the core over once per *window* instead of
/// once per operation. Writes (and batched reads) are ordering
/// barriers: all outstanding reads drain first, then the op runs the
/// blocking path — per-worker semantics therefore match
/// [`drive_worker`] exactly, and the issued op stream is identical.
///
/// `window` must not exceed the ring depth: with at most `window`
/// one-frame read requests outstanding per shard, the client's sends
/// can never block on a full request ring, which is what keeps the
/// waits-for graph acyclic (servers only ever wait on reply rings
/// their one client is guaranteed to drain).
pub fn drive_worker_pipelined<S: MsgSender, C: MsgReceiver>(
    client: &ServiceClient<S, C>,
    mut stream: OpStream,
    ops: u64,
    window: usize,
) -> Tally {
    assert!(window >= 1, "window must be positive");
    let shards = client.num_shards();
    let mut tally = Tally::default();
    // Outstanding read replies per shard; drained oldest-shard-first
    // from a rotating cursor (any shard with pending replies works —
    // its server owes us exactly that many).
    let mut pending: Vec<u64> = vec![0; shards];
    let mut in_flight: u64 = 0;
    let mut cursor = 0usize;

    let drain_one = |pending: &mut [u64], cursor: &mut usize, tally: &mut Tally| {
        while pending[*cursor] == 0 {
            *cursor = (*cursor + 1) % shards;
        }
        match client.read_get_reply(*cursor).expect("wire error") {
            Some(_) => tally.hits += 1,
            None => tally.misses += 1,
        }
        pending[*cursor] -= 1;
    };

    while tally.issued.total() < ops {
        match stream.next_op() {
            Op::Get(key) => {
                tally.issued.gets += 1;
                let shard = client.send_get(key);
                pending[shard] += 1;
                in_flight += 1;
                if in_flight as usize >= window {
                    drain_one(&mut pending, &mut cursor, &mut tally);
                    in_flight -= 1;
                }
            }
            op => {
                // Writes and batched reads act as barriers: flush every
                // outstanding read so per-worker ordering matches the
                // sequential driver.
                while in_flight > 0 {
                    drain_one(&mut pending, &mut cursor, &mut tally);
                    in_flight -= 1;
                }
                apply_op(client, op, &mut tally);
            }
        }
    }
    while in_flight > 0 {
        drain_one(&mut pending, &mut cursor, &mut tally);
        in_flight -= 1;
    }
    tally
}

/// The spawn/serve/join choreography shared by both transports: one
/// server thread per shard, one client thread per worker (each driven
/// by `driver`, which closes over transport specifics like the
/// pipeline window), tallies joined in worker order.
fn drive_mesh<R, S, C, F>(
    router: &ShardRouter<R>,
    spec: &WorkloadSpec,
    ops_per_worker: u64,
    mesh: Mesh<S, C>,
    driver: F,
) -> Vec<Tally>
where
    R: RawLock + Default,
    S: MsgSender + Send,
    C: MsgReceiver + Send,
    F: Fn(&ServiceClient<S, C>, OpStream, u64) -> Tally + Sync,
{
    let (endpoints, service_clients) = mesh;
    let mut tallies = Vec::with_capacity(service_clients.len());
    std::thread::scope(|s| {
        for (shard, endpoint) in endpoints.into_iter().enumerate() {
            let store = router.shard(shard);
            s.spawn(move || serve(store, endpoint));
        }
        let driver = &driver;
        let handles: Vec<_> = service_clients
            .into_iter()
            .enumerate()
            .map(|(worker, client)| {
                let stream = OpStream::new(spec, worker as u64);
                s.spawn(move || {
                    let tally = driver(&client, stream, ops_per_worker);
                    client.close();
                    tally
                })
            })
            .collect();
        tallies.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked")),
        );
    });
    tallies
}

/// Runs the full closed-loop experiment on the one-line transport:
/// preload the keyspace, spawn one server thread per shard and
/// `workers` client threads, drive `ops_per_worker` key-operations per
/// client, and report.
///
/// Issued op counts are deterministic in `(spec, workers,
/// ops_per_worker)`; wall time and the hit/miss split of mixes with
/// deletes are load-dependent.
pub fn run_closed_loop<R: RawLock + Default>(
    router: &ShardRouter<R>,
    spec: &WorkloadSpec,
    workers: usize,
    ops_per_worker: u64,
) -> WorkloadReport {
    run_closed_loop_on(router, spec, workers, ops_per_worker, Transport::OneLine)
}

/// [`run_closed_loop`] with an explicit [`Transport`]. The op streams
/// (and therefore the issued counts) are identical across transports;
/// rings additionally pipeline plain reads through
/// [`drive_worker_pipelined`].
///
/// # Panics
///
/// Panics if `workers` is zero, or on a [`Transport::Ring`] whose
/// `window` is zero or exceeds its `depth`.
pub fn run_closed_loop_on<R: RawLock + Default>(
    router: &ShardRouter<R>,
    spec: &WorkloadSpec,
    workers: usize,
    ops_per_worker: u64,
    transport: Transport,
) -> WorkloadReport {
    assert!(workers > 0);
    if let Transport::Ring { depth, window } = transport {
        assert!(
            window >= 1 && window <= depth,
            "ring window {window} must be in 1..=depth ({depth})"
        );
    }
    // Preload directly through the router: every key present.
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    for key in 0..spec.keys {
        let len = spec.vsize.sample(&mut rng);
        let value: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        router.set(key, value);
    }
    let before = router.stats_snapshot();

    let start = Instant::now();
    let tallies = match transport {
        Transport::OneLine => drive_mesh(
            router,
            spec,
            ops_per_worker,
            wire_mesh(router.num_shards(), workers),
            drive_worker,
        ),
        Transport::Ring { depth, window } => drive_mesh(
            router,
            spec,
            ops_per_worker,
            ring_mesh(router.num_shards(), workers, depth),
            move |client, stream, ops| drive_worker_pipelined(client, stream, ops, window),
        ),
    };
    let wall = start.elapsed();
    let after = router.stats_snapshot();

    let mut report = WorkloadReport {
        wall,
        store: after.delta(&before),
        ..WorkloadReport::default()
    };
    for t in tallies {
        report.issued = report.issued.merge(&t.issued);
        report.hits += t.hits;
        report.misses += t.misses;
        report.cas_ok += t.cas_ok;
        report.cas_fail += t.cas_fail;
        report.deleted += t.deleted;
    }
    report
}

/// A deterministic Poisson arrival process: exponential inter-arrival
/// gaps drawn by inversion from a seeded stream. Same seed and mean,
/// same gap sequence — arrival schedules are replayable even though
/// the latencies measured against them are not.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: SmallRng,
    mean_ns: f64,
}

/// Decorrelates a worker's arrival stream from its op stream: both
/// derive from `(spec.seed, worker)`, this salt keeps them apart.
const ARRIVAL_SALT: u64 = 0xA441_7A15_0B5E_55ED;

impl PoissonArrivals {
    /// An arrival stream with the given mean inter-arrival gap.
    ///
    /// # Panics
    ///
    /// Panics unless `mean_ns` is positive and finite.
    pub fn new(seed: u64, mean_ns: f64) -> PoissonArrivals {
        assert!(
            mean_ns.is_finite() && mean_ns > 0.0,
            "mean gap must be positive and finite"
        );
        PoissonArrivals {
            rng: SmallRng::seed_from_u64(seed),
            mean_ns,
        }
    }

    /// The arrival stream worker `worker` of `spec` paces itself by,
    /// at `1e9 / mean_ns` arrivals per second per worker.
    pub fn for_worker(spec: &WorkloadSpec, worker: u64, mean_ns: f64) -> PoissonArrivals {
        Self::new(
            spec.seed ^ scramble(worker, u64::MAX) ^ ARRIVAL_SALT,
            mean_ns,
        )
    }

    /// The next inter-arrival gap, in nanoseconds.
    ///
    /// Inversion sampling: `u` is uniform in `[0, 1)`, so `1 - u` is in
    /// `(0, 1]` and the log never sees zero.
    pub fn next_gap_ns(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        (-self.mean_ns * (1.0 - u).ln()) as u64
    }
}

/// An open-loop run description, layered on a [`WorkloadSpec`].
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopSpec {
    /// The op streams (keys, mix, sizes, seed). Issued counts stay a
    /// pure function of `(workload, workers, ops_per_worker)`.
    pub workload: WorkloadSpec,
    /// Pacing threads, each with its own op and arrival stream.
    pub workers: usize,
    /// Client endpoints over the ring mesh, split evenly across
    /// workers (must be a positive multiple of `workers`). More
    /// connections deepen server-side buffering the way more physical
    /// clients would, without needing more pacing threads.
    pub connections: usize,
    /// Key-operations each worker issues.
    pub ops_per_worker: u64,
    /// Aggregate target arrival rate, in key-ops per second.
    pub offered_ops_per_sec: f64,
    /// Ring depth per connection.
    pub depth: usize,
    /// Maximum timed reads in flight per connection and shard; must
    /// not exceed `depth` (the no-blocking-sends discipline).
    pub window: usize,
}

/// What an open-loop run measured.
#[derive(Debug, Clone, Default)]
pub struct OpenLoopReport {
    /// Operations issued, by type — deterministic per spec.
    pub issued: OpCounts,
    /// The offered aggregate rate the arrival schedule targeted.
    pub offered_ops_per_sec: f64,
    /// What the run actually sustained.
    pub achieved_ops_per_sec: f64,
    /// Read hits / misses observed (reads and the read half of CAS).
    pub hits: u64,
    /// Read misses observed.
    pub misses: u64,
    /// Operations that became due while their worker was still waiting
    /// on earlier work — the schedule-pressure gauge: a saturated run
    /// is late on nearly every op, an underloaded one on almost none.
    pub late: u64,
    /// Read latency from intended arrival to reply drain, ns.
    pub read_lat: HistogramSnapshot,
    /// Write/CAS/delete latency from intended arrival to ack, ns.
    pub write_lat: HistogramSnapshot,
    /// Wall time of the measure phase.
    pub wall: Duration,
    /// Store-side counter deltas over the measure phase.
    pub store: StatsSnapshot,
}

/// One open-loop worker's tally.
struct OpenTally {
    tally: Tally,
    late: u64,
    read_lat: Histogram,
    write_lat: Histogram,
}

/// Runs one worker's paced loop over its slice of connections.
///
/// Each operation gets an intended arrival time from the Poisson
/// schedule. Plain reads are fired as [`ServiceClient::send_get_timed`]
/// (fire-and-forget, latency stamped at reply drain); anything else
/// drains the issuing connection and runs the blocking path. Waiting
/// out an arrival gap drains ready replies instead of spinning, so a
/// worker is never idle while replies sit in its rings. Latency is
/// *always* `drain_time - intended_arrival`: an op that started late
/// because the loop was busy still charges its full schedule slip,
/// which is what makes coordinated omission structurally impossible
/// here rather than merely corrected for.
fn drive_worker_open_loop<S: MsgSender, C: MsgReceiver>(
    conns: &[ServiceClient<S, C>],
    mut stream: OpStream,
    mut arrivals: PoissonArrivals,
    ops: u64,
    window: usize,
) -> OpenTally {
    assert!(!conns.is_empty());
    let shards = conns[0].num_shards();
    let mut out = OpenTally {
        tally: Tally::default(),
        late: 0,
        read_lat: Histogram::new(),
        write_lat: Histogram::new(),
    };
    // Intended-arrival stamps of in-flight timed reads, FIFO per
    // (connection, shard) — replies on one ring arrive in send order.
    let mut pending: Vec<Vec<VecDeque<u64>>> = (0..conns.len())
        .map(|_| (0..shards).map(|_| VecDeque::new()).collect())
        .collect();

    // Drains every ready reply across this worker's connections;
    // returns whether any arrived.
    let drain_ready = |pending: &mut Vec<Vec<VecDeque<u64>>>, out: &mut OpenTally| -> bool {
        let mut any = false;
        for (c, conn) in conns.iter().enumerate() {
            for (shard, queue) in pending[c].iter_mut().enumerate() {
                while !queue.is_empty() {
                    match conn.try_read_get_reply(shard).expect("wire error") {
                        None => break,
                        Some(hit) => {
                            let intended = queue.pop_front().unwrap();
                            out.read_lat.record(mono_ns().saturating_sub(intended));
                            match hit {
                                Some(_) => out.tally.hits += 1,
                                None => out.tally.misses += 1,
                            }
                            any = true;
                        }
                    }
                }
            }
        }
        any
    };
    // Blocks until one reply from `(c, shard)` drains.
    let drain_one =
        |c: usize, shard: usize, pending: &mut Vec<Vec<VecDeque<u64>>>, out: &mut OpenTally| loop {
            match conns[c].try_read_get_reply(shard).expect("wire error") {
                None => core::hint::spin_loop(),
                Some(hit) => {
                    let intended = pending[c][shard].pop_front().unwrap();
                    out.read_lat.record(mono_ns().saturating_sub(intended));
                    match hit {
                        Some(_) => out.tally.hits += 1,
                        None => out.tally.misses += 1,
                    }
                    return;
                }
            }
        };

    let mut next_at = mono_ns();
    let mut c = 0usize;
    while out.tally.issued.total() < ops {
        let op = stream.next_op();
        next_at += arrivals.next_gap_ns();
        if mono_ns() >= next_at {
            out.late += 1;
        } else {
            // Wait out the gap, putting the idle time to work.
            while mono_ns() < next_at {
                if !drain_ready(&mut pending, &mut out) {
                    core::hint::spin_loop();
                }
            }
        }
        match op {
            Op::Get(key) => {
                out.tally.issued.gets += 1;
                let shard = shard_of(key, shards);
                while pending[c][shard].len() >= window {
                    drain_one(c, shard, &mut pending, &mut out);
                }
                conns[c].send_get_timed(key, next_at);
                pending[c][shard].push_back(next_at);
            }
            op => {
                // Writes and batched reads barrier their connection
                // (same ordering discipline as the pipelined driver),
                // then run blocking; the latency still counts from the
                // intended arrival, drain included.
                for shard in 0..shards {
                    while !pending[c][shard].is_empty() {
                        drain_one(c, shard, &mut pending, &mut out);
                    }
                }
                apply_op(&conns[c], op, &mut out.tally);
                out.write_lat.record(mono_ns().saturating_sub(next_at));
            }
        }
        c = (c + 1) % conns.len();
    }
    for c in 0..conns.len() {
        for shard in 0..shards {
            while !pending[c][shard].is_empty() {
                drain_one(c, shard, &mut pending, &mut out);
            }
        }
    }
    out
}

/// Runs the full open-loop experiment: preload the keyspace, spawn one
/// server thread per shard and `workers` pacing threads over
/// `connections` ring clients, pace `ops_per_worker` key-operations
/// per worker against the Poisson schedule, and report latency from
/// intended arrival times.
///
/// # Panics
///
/// Panics if `workers` is zero, `connections` is not a positive
/// multiple of `workers`, `window` is zero or exceeds `depth`, or the
/// offered rate is not positive and finite.
pub fn run_open_loop<R: RawLock + Default>(
    router: &ShardRouter<R>,
    spec: &OpenLoopSpec,
) -> OpenLoopReport {
    assert!(spec.workers > 0);
    assert!(
        spec.connections >= spec.workers && spec.connections % spec.workers == 0,
        "connections ({}) must be a positive multiple of workers ({})",
        spec.connections,
        spec.workers
    );
    assert!(
        spec.window >= 1 && spec.window <= spec.depth,
        "ring window {} must be in 1..=depth ({})",
        spec.window,
        spec.depth
    );
    // Per-worker mean gap: `workers` independent streams at rate/workers
    // each superpose to a Poisson stream at the offered aggregate rate.
    let mean_ns = spec.workers as f64 * 1e9 / spec.offered_ops_per_sec;

    // Preload directly through the router: every key present.
    let mut rng = SmallRng::seed_from_u64(spec.workload.seed);
    for key in 0..spec.workload.keys {
        let len = spec.workload.vsize.sample(&mut rng);
        let value: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        router.set(key, value);
    }
    let before = router.stats_snapshot();

    let (endpoints, service_clients) = ring_mesh(router.num_shards(), spec.connections, spec.depth);
    let per_worker = spec.connections / spec.workers;
    let start = Instant::now();
    let mut tallies: Vec<OpenTally> = Vec::with_capacity(spec.workers);
    std::thread::scope(|s| {
        for (shard, endpoint) in endpoints.into_iter().enumerate() {
            let store = router.shard(shard);
            s.spawn(move || serve(store, endpoint));
        }
        let mut conn_chunks: Vec<Vec<_>> = Vec::with_capacity(spec.workers);
        let mut it = service_clients.into_iter();
        for _ in 0..spec.workers {
            conn_chunks.push(it.by_ref().take(per_worker).collect());
        }
        let handles: Vec<_> = conn_chunks
            .into_iter()
            .enumerate()
            .map(|(worker, conns)| {
                let stream = OpStream::new(&spec.workload, worker as u64);
                let arrivals = PoissonArrivals::for_worker(&spec.workload, worker as u64, mean_ns);
                s.spawn(move || {
                    let tally = drive_worker_open_loop(
                        &conns,
                        stream,
                        arrivals,
                        spec.ops_per_worker,
                        spec.window,
                    );
                    for conn in conns {
                        conn.close();
                    }
                    tally
                })
            })
            .collect();
        tallies.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked")),
        );
    });
    let wall = start.elapsed();
    let after = router.stats_snapshot();

    let mut report = OpenLoopReport {
        offered_ops_per_sec: spec.offered_ops_per_sec,
        wall,
        store: after.delta(&before),
        ..OpenLoopReport::default()
    };
    let mut read_lat = HistogramSnapshot::empty();
    let mut write_lat = HistogramSnapshot::empty();
    for t in tallies {
        report.issued = report.issued.merge(&t.tally.issued);
        report.hits += t.tally.hits;
        report.misses += t.tally.misses;
        report.late += t.late;
        read_lat.merge(&t.read_lat.snapshot());
        write_lat.merge(&t.write_lat.snapshot());
    }
    report.read_lat = read_lat;
    report.write_lat = write_lat;
    report.achieved_ops_per_sec = if wall.as_secs_f64() > 0.0 {
        report.issued.total() as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_locks::TicketLock;

    #[test]
    fn streams_are_deterministic_per_worker() {
        let spec = WorkloadSpec::example();
        let ops_a: Vec<Op> = {
            let mut s = OpStream::new(&spec, 3);
            (0..200).map(|_| s.next_op()).collect()
        };
        let ops_b: Vec<Op> = {
            let mut s = OpStream::new(&spec, 3);
            (0..200).map(|_| s.next_op()).collect()
        };
        assert_eq!(ops_a, ops_b);
        // A different worker gets a different stream.
        let ops_c: Vec<Op> = {
            let mut s = OpStream::new(&spec, 4);
            (0..200).map(|_| s.next_op()).collect()
        };
        assert_ne!(ops_a, ops_c);
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let spec = WorkloadSpec {
            dist: KeyDist::Zipfian { theta: 0.99 },
            mix: Mix::YCSB_C,
            ..WorkloadSpec::example()
        };
        let mut stream = OpStream::new(&spec, 0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..4000 {
            if let Op::Get(key) = stream.next_op() {
                assert!(key < spec.keys);
                *counts.entry(key).or_insert(0u64) += 1;
            }
        }
        // Zipf 0.99 concentrates mass: the hottest key should take a
        // few percent of draws; uniform would give ~0.1%.
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 100, "hottest key only drew {max}/4000");
        // And the tail still gets touched.
        assert!(counts.len() > 200, "only {} distinct keys", counts.len());
    }

    #[test]
    fn uniform_covers_the_keyspace_evenly() {
        let spec = WorkloadSpec {
            keys: 64,
            dist: KeyDist::Uniform,
            mix: Mix::YCSB_C,
            ..WorkloadSpec::example()
        };
        let mut stream = OpStream::new(&spec, 0);
        let mut counts = vec![0u64; 64];
        for _ in 0..6400 {
            if let Op::Get(key) = stream.next_op() {
                counts[key as usize] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c > 30), "uneven: {counts:?}");
    }

    #[test]
    fn mix_percentages_are_respected() {
        let spec = WorkloadSpec {
            mix: Mix::CHURN,
            ..WorkloadSpec::example()
        };
        let mut stream = OpStream::new(&spec, 1);
        let mut counts = OpCounts::default();
        for _ in 0..10_000 {
            match stream.next_op() {
                Op::Get(_) | Op::MultiGet(_) => counts.gets += 1,
                Op::Set(..) => counts.sets += 1,
                Op::Cas(..) => counts.cas += 1,
                Op::Delete(_) => counts.deletes += 1,
            }
        }
        // 60/25/10/5 within a few percent.
        assert!((5200..6800).contains(&counts.gets), "{counts:?}");
        assert!((1900..3100).contains(&counts.sets), "{counts:?}");
        assert!((600..1400).contains(&counts.cas), "{counts:?}");
        assert!((250..750).contains(&counts.deletes), "{counts:?}");
    }

    #[test]
    fn batched_reads_emit_multigets() {
        let spec = WorkloadSpec {
            batch: 4,
            mix: Mix::YCSB_C,
            ..WorkloadSpec::example()
        };
        let mut stream = OpStream::new(&spec, 0);
        for _ in 0..50 {
            match stream.next_op() {
                Op::MultiGet(keys) => assert_eq!(keys.len(), 4),
                other => panic!("read-only batched mix emitted {other:?}"),
            }
        }
    }

    #[test]
    fn closed_loop_reports_consistently() {
        let router: ShardRouter<TicketLock> = ShardRouter::new(2, 64, 8);
        let spec = WorkloadSpec {
            keys: 256,
            mix: Mix::YCSB_A,
            ..WorkloadSpec::example()
        };
        let report = run_closed_loop(&router, &spec, 2, 500);
        assert!(report.issued.total() >= 1000);
        // YCSB-A over a preloaded keyspace with no deletes: every read
        // hits.
        assert_eq!(report.misses, 0);
        assert!((report.hit_rate() - 1.0).abs() < f64::EPSILON);
        // Store-side counters saw the workload's writes.
        assert_eq!(report.store.sets, report.issued.sets);
        assert!(report.ops_per_sec() > 0.0);

        // Op counts replay exactly on a fresh router.
        let router2: ShardRouter<TicketLock> = ShardRouter::new(2, 64, 8);
        let report2 = run_closed_loop(&router2, &spec, 2, 500);
        assert_eq!(report.issued, report2.issued);
        assert_eq!(report.hits, report2.hits);
    }

    #[test]
    fn ring_transport_matches_oneline_results() {
        // Same spec, both transports: the issued streams are identical
        // by construction, and on a delete-free mix the observed
        // hit/miss and CAS tallies must match too — pipelining
        // reorders nothing a single worker can see.
        let spec = WorkloadSpec {
            keys: 256,
            mix: Mix::YCSB_B,
            ..WorkloadSpec::example()
        };
        let oneline: ShardRouter<TicketLock> = ShardRouter::new(2, 64, 8);
        let base = run_closed_loop(&oneline, &spec, 2, 400);
        let ring: ShardRouter<TicketLock> = ShardRouter::new(2, 64, 8);
        let piped = run_closed_loop_on(
            &ring,
            &spec,
            2,
            400,
            Transport::Ring {
                depth: 32,
                window: 8,
            },
        );
        assert_eq!(base.issued, piped.issued);
        assert_eq!(base.hits, piped.hits);
        assert_eq!(base.misses, piped.misses);
        assert_eq!(base.store.sets, piped.store.sets);
        // Both stores converge to identical contents (same versions:
        // single-writer-per-key is not guaranteed here, but set counts
        // per key are, and YCSB-B only sets).
        assert_eq!(oneline.len(), ring.len());
    }

    #[test]
    fn pipelined_driver_handles_mixed_and_churn_ops() {
        // Churn exercises the write barrier (flush before set/cas/
        // delete) and delete/refill cycles under pipelining.
        let spec = WorkloadSpec {
            keys: 128,
            mix: Mix::CHURN,
            ..WorkloadSpec::example()
        };
        let router: ShardRouter<TicketLock> = ShardRouter::new(2, 64, 8);
        let report = run_closed_loop_on(
            &router,
            &spec,
            2,
            300,
            Transport::Ring {
                depth: 16,
                window: 16,
            },
        );
        assert_eq!(report.issued.total(), 600);
        assert!(report.issued.deletes > 0 && report.issued.cas > 0);
        // Replays exactly.
        let router2: ShardRouter<TicketLock> = ShardRouter::new(2, 64, 8);
        let report2 = run_closed_loop_on(
            &router2,
            &spec,
            2,
            300,
            Transport::Ring {
                depth: 16,
                window: 16,
            },
        );
        assert_eq!(report.issued, report2.issued);
    }

    #[test]
    fn poisson_arrivals_replay_and_match_their_mean() {
        let spec = WorkloadSpec::example();
        let draw = |worker: u64| -> Vec<u64> {
            let mut p = PoissonArrivals::for_worker(&spec, worker, 10_000.0);
            (0..4000).map(|_| p.next_gap_ns()).collect()
        };
        // Same worker, same schedule; different worker, different one.
        let a = draw(2);
        assert_eq!(a, draw(2));
        assert_ne!(a, draw(3));
        // The empirical mean sits near the target (the seed is fixed,
        // so this either always passes or never does).
        let mean = a.iter().sum::<u64>() as f64 / a.len() as f64;
        assert!(
            (mean - 10_000.0).abs() < 500.0,
            "empirical mean {mean} too far from 10000"
        );
        // Exponential gaps spread: some well under the mean, some well
        // over — a constant-gap pacer would fail both.
        assert!(a.iter().any(|&g| g < 2_000));
        assert!(a.iter().any(|&g| g > 30_000));
    }

    #[test]
    fn open_loop_replays_issued_counts_and_measures_latency() {
        let spec = OpenLoopSpec {
            workload: WorkloadSpec {
                keys: 256,
                mix: Mix::YCSB_B,
                ..WorkloadSpec::example()
            },
            workers: 2,
            connections: 4,
            ops_per_worker: 300,
            offered_ops_per_sec: 50_000.0,
            depth: 32,
            window: 8,
        };
        let router: ShardRouter<TicketLock> = ShardRouter::new(2, 64, 8);
        let report = run_open_loop(&router, &spec);
        assert_eq!(report.issued.total(), 600);
        // Every read drained through the timed path, every write took
        // the blocking path; nothing measured twice, nothing dropped.
        assert_eq!(report.read_lat.count(), report.issued.gets);
        assert_eq!(report.write_lat.count(), report.issued.sets);
        assert_eq!(report.hits + report.misses, report.issued.gets);
        assert_eq!(report.misses, 0, "preloaded, delete-free keyspace");
        assert!(report.read_lat.quantile(0.99).unwrap() > 0);
        assert!(report.achieved_ops_per_sec > 0.0);
        // The op streams replay exactly on a fresh router.
        let router2: ShardRouter<TicketLock> = ShardRouter::new(2, 64, 8);
        let report2 = run_open_loop(&router2, &spec);
        assert_eq!(report.issued, report2.issued);
        assert_eq!(report.hits, report2.hits);
    }

    #[test]
    fn open_loop_goes_late_under_impossible_load_but_still_issues_all() {
        // An offered rate no machine sustains pushes the schedule
        // permanently behind: the loop must not skip or stall, and the
        // lateness gauge must show the pressure.
        let spec = OpenLoopSpec {
            workload: WorkloadSpec {
                keys: 128,
                mix: Mix::CHURN,
                ..WorkloadSpec::example()
            },
            workers: 1,
            connections: 2,
            ops_per_worker: 300,
            offered_ops_per_sec: 1e9,
            depth: 16,
            window: 4,
        };
        let router: ShardRouter<TicketLock> = ShardRouter::new(1, 64, 8);
        let report = run_open_loop(&router, &spec);
        assert_eq!(report.issued.total(), 300);
        assert!(report.issued.deletes > 0 && report.issued.cas > 0);
        assert!(
            report.late > 100,
            "a 1 Gop/s schedule must run late ({} late)",
            report.late
        );
        // Churn writes measure too (set + cas + delete all barrier).
        assert_eq!(
            report.write_lat.count(),
            report.issued.sets + report.issued.cas + report.issued.deletes
        );
    }

    #[test]
    #[should_panic(expected = "window")]
    fn ring_window_beyond_depth_rejected() {
        let router: ShardRouter<TicketLock> = ShardRouter::new(1, 64, 8);
        let spec = WorkloadSpec::example();
        let _ = run_closed_loop_on(
            &router,
            &spec,
            1,
            10,
            Transport::Ring {
                depth: 8,
                window: 9,
            },
        );
    }
}

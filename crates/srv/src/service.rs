//! The message-passing request/response service.
//!
//! One server thread per shard, one [`ServiceClient`] per client
//! thread. Every (client, shard) pair gets a dedicated SPSC channel
//! pair (request + reply); a server multiplexes its clients with
//! [`ServerHub`] (round-robin, no starvation) and pulls a request's
//! continuation frames with `recv_from_subset` so interleaved clients
//! cannot corrupt a value mid-transfer.
//!
//! The service is **generic over the transport** (mirroring
//! `ServerHub`'s [`MsgReceiver`] generality): [`wire_mesh`] builds it
//! on the paper-calibrated one-line channels, [`ring_mesh`] on bounded
//! SPSC rings ([`ssync_mp::ring_channel`]). The one-line flavour keeps
//! the documented single-cache-line cost model — but on an
//! oversubscribed host it costs a context-switch pair per *frame*,
//! which is why the ring flavour exists: a server writes a whole
//! multi-frame reply and moves on, and a client can **pipeline** reads
//! ([`ServiceClient::send_get`] / [`ServiceClient::read_get_reply`]),
//! keeping a window of requests in flight per shard and draining
//! replies in arrival order.
//!
//! Flow control per flavour:
//!
//! * One-line: a client has at most one request outstanding per shard
//!   ([`ServiceClient::get_many`] exploits exactly that — one multi-get
//!   per shard in flight, replies drained shard by shard), and a
//!   server finishes every reply frame of a request before polling for
//!   the next, so the system cannot deadlock on full buffers.
//! * Ring: a pipelining client keeps at most `window` one-frame read
//!   requests outstanding per shard, with `window` at most the ring
//!   depth — its request sends therefore never block, so the only
//!   blocking edges run server→client (reply rings), and the one
//!   client of a full reply ring is by construction draining it.

use core::cell::RefCell;

use ssync_core::stats::{mono_ns, Registry, RegistrySnapshot};
use ssync_core::ParkingWait;
use ssync_kv::KvStore;
use ssync_locks::RawLock;
use ssync_mp::{
    channel, ring_channel, Message, MsgReceiver, MsgSender, Receiver, RingReceiver, RingSender,
    Sender, ServerHub,
};

use crate::router::{key_bytes, shard_of};
use crate::wire::{Request, Response, WireError, MGET_MAX};

/// A shard server's side of the channel mesh: one request receiver and
/// one reply sender per client, index-aligned. Generic over the
/// transport; defaults name the one-line flavour.
pub struct ServerEndpoint<C: MsgReceiver = Receiver, S: MsgSender = Sender> {
    requests: Vec<C>,
    replies: Vec<S>,
}

/// A client's side of the channel mesh: one `(request sender, reply
/// receiver)` pair per shard, plus a scratch frame buffer so encoding
/// a request (head + continuation frames) allocates nothing per
/// operation.
pub struct ServiceClient<S: MsgSender = Sender, C: MsgReceiver = Receiver> {
    shards: Vec<(S, C)>,
    frames: RefCell<Vec<Message>>,
}

/// One read's outcome: `Some((version, value))` on a hit.
pub type ReadHit = Option<(u64, Vec<u8>)>;

/// The operations any service client exposes — implemented by
/// [`ServiceClient`] and by the replication layer's replica-reading
/// client, so the workload engine can drive either through one
/// interface.
pub trait KvClient {
    /// Looks a key up; `Some((version, value))` on a hit.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    fn get(&self, key: u64) -> Result<Option<(u64, Vec<u8>)>, WireError>;

    /// Batched lookup, results in input order.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    fn get_many(&self, keys: &[u64]) -> Result<Vec<ReadHit>, WireError>;

    /// Stores a value; returns its new CAS version.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    fn set(&self, key: u64, value: Vec<u8>) -> Result<u64, WireError>;

    /// Compare-and-set; the inner result is the CAS outcome.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    fn cas(&self, key: u64, value: Vec<u8>, expected: u64) -> Result<Result<u64, u64>, WireError>;

    /// Deletes a key; `Some(tombstone_version)` if it existed.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    fn delete(&self, key: u64) -> Result<Option<u64>, WireError>;
}

/// What a mesh constructor returns: element `s` of the first vector
/// serves shard `s`, element `c` of the second belongs to client `c`.
pub type Mesh<S, C> = (Vec<ServerEndpoint<C, S>>, Vec<ServiceClient<S, C>>);

/// Builds the full channel mesh for `shards` servers × `clients`
/// clients over any transport: `make` constructs one directed channel
/// per call (two per client-shard pair — request and reply).
///
/// # Panics
///
/// Panics if `shards` or `clients` is zero.
pub fn wire_mesh_with<S: MsgSender, C: MsgReceiver>(
    shards: usize,
    clients: usize,
    mut make: impl FnMut() -> (S, C),
) -> Mesh<S, C> {
    assert!(shards > 0 && clients > 0);
    let mut endpoints: Vec<ServerEndpoint<C, S>> = (0..shards)
        .map(|_| ServerEndpoint {
            requests: Vec::with_capacity(clients),
            replies: Vec::with_capacity(clients),
        })
        .collect();
    let mut service_clients = Vec::with_capacity(clients);
    for _ in 0..clients {
        let mut per_shard = Vec::with_capacity(shards);
        for endpoint in endpoints.iter_mut() {
            let (req_tx, req_rx) = make();
            let (rep_tx, rep_rx) = make();
            endpoint.requests.push(req_rx);
            endpoint.replies.push(rep_tx);
            per_shard.push((req_tx, rep_rx));
        }
        service_clients.push(ServiceClient {
            shards: per_shard,
            frames: RefCell::new(Vec::new()),
        });
    }
    (endpoints, service_clients)
}

/// [`wire_mesh_with`] on the paper-calibrated one-line channels — the
/// default transport, whose cost model (one cache-line transfer per
/// frame) is the one the figures calibrate.
pub fn wire_mesh(shards: usize, clients: usize) -> Mesh<Sender, Receiver> {
    wire_mesh_with(shards, clients, channel)
}

/// [`wire_mesh_with`] on bounded SPSC rings of `depth` slots: the
/// transport for oversubscribed hosts, where queue depth amortizes
/// scheduler handoffs across a whole burst of frames and enables the
/// pipelined read path.
///
/// # Panics
///
/// Panics if `shards` or `clients` is zero, or if `depth` is not a
/// positive power of two.
pub fn ring_mesh(shards: usize, clients: usize, depth: usize) -> Mesh<RingSender, RingReceiver> {
    wire_mesh_with(shards, clients, || ring_channel(depth))
}

/// What one shard server did before all its clients stopped.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServeReport {
    /// Request messages served (a multi-get head counts once).
    pub requests: u64,
    /// Key-operations executed (a multi-get counts per key).
    pub key_ops: u64,
    /// Head frames that failed to decode and were answered with
    /// [`Response::Malformed`] instead of executing.
    pub malformed: u64,
}

/// Runs one shard's server loop: serve requests from every client
/// until each has sent [`Request::Stop`]. Meant to run on its own
/// thread; returns once the last client stops.
///
/// The poll loop waits with [`ParkingWait`] (parity with the
/// replication servers): a shard that sits idle — skewed routing can
/// starve a shard for whole phases — leaves the run queue instead of
/// yield-looping, which on an oversubscribed host taxes every busy
/// thread with a context switch per scheduling cycle.
///
/// A head frame that fails to decode is answered with
/// [`Response::Malformed`] and the loop keeps serving — a corrupt
/// frame degrades one connection, it does not take the shard down.
///
/// Observability: the loop registers into a per-server
/// [`Registry`] — `srv.requests`/`srv.malformed` counters on every
/// request, plus `srv.queue_wait_ns` and `srv.apply_ns` histograms
/// fed by [`Request::TimedGet`]'s intended-send stamps — and answers
/// [`Request::Stats`] with a live snapshot (registry metrics plus the
/// shard store's counters) without pausing service.
pub fn serve<R: RawLock + Default, C: MsgReceiver, S: MsgSender>(
    shard: &KvStore<R>,
    endpoint: ServerEndpoint<C, S>,
) -> ServeReport {
    let ServerEndpoint { requests, replies } = endpoint;
    let mut live = requests.len();
    let mut hub = ServerHub::new(requests);
    let mut report = ServeReport::default();
    let mut frames: Vec<Message> = Vec::new();
    let mut wait = ParkingWait::new();
    let registry = Registry::new();
    let requests_ctr = registry.counter("srv.requests");
    let malformed_ctr = registry.counter("srv.malformed");
    let queue_wait = registry.histogram("srv.queue_wait_ns");
    let apply = registry.histogram("srv.apply_ns");
    let send_all = |client: usize, response: &Response, frames: &mut Vec<Message>| {
        response.encode_into(frames);
        for &frame in frames.iter() {
            replies[client].send(frame);
        }
    };
    // Online reclamation cadence: every RECLAIM_PERIOD processed
    // requests the loop runs one epoch advance-and-collect pass, so a
    // long-lived shard frees its retired nodes while traffic flows —
    // no quiescent point, no `purge_retired(&mut)`, bounded backlog.
    const RECLAIM_PERIOD: u64 = 1024;
    let mut since_reclaim = 0u64;
    while live > 0 {
        since_reclaim += 1;
        if since_reclaim >= RECLAIM_PERIOD {
            since_reclaim = 0;
            shard.reclaim_pass();
        }
        let (client, head) = loop {
            match hub.try_recv_from_any() {
                Some(hit) => {
                    wait.reset();
                    break hit;
                }
                None => wait.snooze(),
            }
        };
        let request = match Request::decode(head, || hub.recv_from_subset(&[client]).1) {
            Ok(request) => request,
            Err(_) => {
                report.malformed += 1;
                malformed_ctr.inc();
                send_all(client, &Response::Malformed, &mut frames);
                continue;
            }
        };
        match request {
            Request::Stop => live -= 1,
            Request::Stats => {
                report.requests += 1;
                requests_ctr.inc();
                let mut snap = registry.snapshot();
                append_store_counters(shard, &mut snap);
                let reply = Response::StatsReply {
                    payload: snap.to_bytes(),
                };
                send_all(client, &reply, &mut frames);
            }
            Request::TimedGet { key, stamp } => {
                report.requests += 1;
                requests_ctr.inc();
                let t0 = mono_ns();
                queue_wait.record(t0.saturating_sub(stamp));
                let responses = execute(shard, Request::Get { key }, &mut report.key_ops);
                apply.record(mono_ns().saturating_sub(t0));
                for response in responses {
                    send_all(client, &response, &mut frames);
                }
            }
            request => {
                report.requests += 1;
                requests_ctr.inc();
                for response in execute(shard, request, &mut report.key_ops) {
                    send_all(client, &response, &mut frames);
                }
            }
        }
    }
    report
}

/// Appends the shard store's counter snapshot to a scraped registry
/// snapshot, under `store.`-prefixed names. Uses the store-level
/// snapshot (not the bare counter block) so the reclamation gauge —
/// `store.reclaim_backlog`, summed lock-free over the stripes — rides
/// along with the counters.
fn append_store_counters<R: RawLock + Default>(shard: &KvStore<R>, snap: &mut RegistrySnapshot) {
    let s = shard.stats_snapshot();
    for (name, value) in [
        ("store.hits", s.hits),
        ("store.misses", s.misses),
        ("store.sets", s.sets),
        ("store.deletes", s.deletes),
        ("store.cas_failures", s.cas_failures),
        ("store.read_fallbacks", s.read_fallbacks),
        ("store.epochs_advanced", s.epochs_advanced),
        ("store.nodes_reclaimed", s.nodes_reclaimed),
        ("store.reclaim_backlog", s.reclaim_backlog),
    ] {
        snap.counters.push((name.to_string(), value));
    }
}

/// Executes one request against the shard, returning the responses to
/// send (one per key for a multi-get, in key order).
fn execute<R: RawLock + Default>(
    shard: &KvStore<R>,
    request: Request,
    key_ops: &mut u64,
) -> Vec<Response> {
    let lookup = |key: u64| match shard.get_with_version(&key_bytes(key)) {
        Some((version, value)) => Response::Value {
            version,
            value: value.as_ref().to_vec(),
        },
        None => Response::Miss,
    };
    match request {
        Request::Get { key } => {
            *key_ops += 1;
            vec![lookup(key)]
        }
        Request::MultiGet { keys } => {
            *key_ops += keys.len() as u64;
            // One store-level batch: each key reads through the
            // store's configured read path (optimistic by default).
            let key_bufs: Vec<[u8; 8]> = keys.iter().map(|&key| key_bytes(key)).collect();
            let key_refs: Vec<&[u8]> = key_bufs.iter().map(|buf| buf.as_slice()).collect();
            shard
                .multi_get(&key_refs)
                .into_iter()
                .map(|hit| match hit {
                    Some((version, value)) => Response::Value {
                        version,
                        value: value.as_ref().to_vec(),
                    },
                    None => Response::Miss,
                })
                .collect()
        }
        Request::Set { key, value } => {
            *key_ops += 1;
            vec![Response::Stored {
                version: shard.set(&key_bytes(key), value),
            }]
        }
        Request::Cas {
            key,
            expected,
            value,
        } => {
            *key_ops += 1;
            vec![match shard.cas(&key_bytes(key), value, expected) {
                Ok(version) => Response::Stored { version },
                Err(current) => Response::CasFail { current },
            }]
        }
        Request::Delete { key } => {
            *key_ops += 1;
            vec![match shard.delete_versioned(&key_bytes(key)) {
                Some(version) => Response::Deleted { version },
                None => Response::NotFound,
            }]
        }
        // Replication traffic belongs to the `ssync-repl` primary and
        // replica loops; at a plain shard server it is a protocol
        // violation, refused without executing anything.
        Request::Replicate { .. }
        | Request::ReplicateDelete { .. }
        | Request::ReplGet { .. }
        | Request::ReplMultiGet { .. } => vec![Response::Malformed],
        Request::TimedGet { .. } | Request::Stats | Request::Stop => {
            unreachable!("handled by the serve loop")
        }
    }
}

impl<S: MsgSender, C: MsgReceiver> ServiceClient<S, C> {
    /// Number of shards this client can reach.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Encodes `request` into the scratch buffer and sends every frame
    /// to `shard`.
    ///
    /// # Errors
    ///
    /// [`WireError::Disconnected`] if the server's receive half is
    /// gone — instead of spinning forever against a full channel no
    /// one will ever drain.
    fn send_request(&self, shard: usize, request: &Request) -> Result<(), WireError> {
        let (tx, _) = &self.shards[shard];
        let mut frames = self.frames.borrow_mut();
        request.encode_into(&mut frames);
        for &frame in frames.iter() {
            tx.send_connected(frame)
                .map_err(|_| WireError::Disconnected)?;
        }
        Ok(())
    }

    /// One blocking round-trip to a shard: send every request frame,
    /// then read one response.
    fn call(&self, shard: usize, request: &Request) -> Result<Response, WireError> {
        self.send_request(shard, request)?;
        self.read_response(shard)
    }

    fn read_response(&self, shard: usize) -> Result<Response, WireError> {
        let (_, rx) = &self.shards[shard];
        // A dead server is a decode-time error, not a livelock: the
        // reply must fail cleanly even mid-continuation-stream.
        let head = rx.recv_connected().map_err(|_| WireError::Disconnected)?;
        let mut dead = false;
        let resp = Response::decode(head, || match rx.recv_connected() {
            Ok(m) => m,
            Err(_) => {
                // The value decoder is infallible by contract; flag the
                // truncation and let it finish on zeroed frames.
                dead = true;
                [0; ssync_mp::MSG_WORDS]
            }
        })?;
        if dead {
            return Err(WireError::Disconnected);
        }
        Ok(resp)
    }

    /// Looks a key up; `Some((version, value))` on a hit.
    ///
    /// # Errors
    ///
    /// [`WireError`] if the reply fails to decode, answers a different
    /// request, or the server rejected the request as malformed.
    pub fn get(&self, key: u64) -> Result<Option<(u64, Vec<u8>)>, WireError> {
        let shard = shard_of(key, self.shards.len());
        match self.call(shard, &Request::Get { key })? {
            Response::Value { version, value } => Ok(Some((version, value))),
            Response::Miss => Ok(None),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Get")),
        }
    }

    /// Fires one read without waiting for the reply, returning the
    /// shard it went to — the send half of the pipelined read path.
    /// The caller owes that shard exactly one
    /// [`ServiceClient::read_get_reply`], in issue order per shard
    /// (the channels are FIFO).
    ///
    /// Pipelining discipline: keep the number of unread replies per
    /// shard at or below the transport's queue depth, so these sends
    /// can never block on a full request channel while replies wait —
    /// the workload driver's window enforces this.
    pub fn send_get(&self, key: u64) -> usize {
        let shard = shard_of(key, self.shards.len());
        // A dead shard surfaces as Disconnected on the owed
        // read_get_reply (its reply sender dropped with the server), so
        // the fire half stays infallible.
        let _ = self.send_request(shard, &Request::Get { key });
        shard
    }

    /// [`ServiceClient::send_get`] carrying the caller's intended-send
    /// timestamp ([`ssync_core::stats::mono_ns`]), so the server can
    /// split this read's latency into queue wait and apply time. Same
    /// pipelining discipline and same owed reply as `send_get`.
    pub fn send_get_timed(&self, key: u64, stamp: u64) -> usize {
        let shard = shard_of(key, self.shards.len());
        let _ = self.send_request(shard, &Request::TimedGet { key, stamp });
        shard
    }

    /// Blocks for the next outstanding read reply from `shard` — the
    /// drain half of the pipelined read path.
    ///
    /// # Errors
    ///
    /// [`WireError`] if the reply fails to decode, is out of protocol,
    /// or the server rejected the request as malformed.
    pub fn read_get_reply(&self, shard: usize) -> Result<ReadHit, WireError> {
        match self.read_response(shard)? {
            Response::Value { version, value } => Ok(Some((version, value))),
            Response::Miss => Ok(None),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Get")),
        }
    }

    /// Non-blocking [`ServiceClient::read_get_reply`]: `Ok(None)` when
    /// no reply head is waiting in the ring. Once a head frame is
    /// present its continuation frames were already sent back-to-back,
    /// so only the head poll is non-blocking. The open-loop driver uses
    /// this to drain completions while waiting out an arrival gap.
    ///
    /// # Errors
    ///
    /// As for [`ServiceClient::read_get_reply`].
    pub fn try_read_get_reply(&self, shard: usize) -> Result<Option<ReadHit>, WireError> {
        let (_, rx) = &self.shards[shard];
        let Some(head) = rx.try_recv() else {
            return Ok(None);
        };
        let mut dead = false;
        let resp = Response::decode(head, || match rx.recv_connected() {
            Ok(m) => m,
            Err(_) => {
                dead = true;
                [0; ssync_mp::MSG_WORDS]
            }
        })?;
        if dead {
            return Err(WireError::Disconnected);
        }
        match resp {
            Response::Value { version, value } => Ok(Some(Some((version, value)))),
            Response::Miss => Ok(Some(None)),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Get")),
        }
    }

    /// Scrapes `shard`'s live metric registry — counters and histogram
    /// buckets — without disturbing service (one ordinary request
    /// round-trip on this client's connection).
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable reply or a payload that fails
    /// snapshot decoding.
    pub fn stats(&self, shard: usize) -> Result<RegistrySnapshot, WireError> {
        match self.call(shard, &Request::Stats)? {
            Response::StatsReply { payload } => {
                RegistrySnapshot::from_bytes(&payload).ok_or(WireError::UnexpectedResponse("Stats"))
            }
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Stats")),
        }
    }

    /// Batched lookup: coalesces the keys into at most one in-flight
    /// multi-get per shard per round (the batching the service exists
    /// for), returning results in input order. Keys beyond
    /// [`MGET_MAX`] per shard take additional rounds.
    ///
    /// # Errors
    ///
    /// [`WireError`] on the first undecodable or out-of-protocol reply.
    pub fn get_many(&self, keys: &[u64]) -> Result<Vec<ReadHit>, WireError> {
        let shards = self.shards.len();
        // Input positions grouped by shard, then chunked into rounds.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (pos, &key) in keys.iter().enumerate() {
            by_shard[shard_of(key, shards)].push(pos);
        }
        let mut results: Vec<Option<(u64, Vec<u8>)>> = (0..keys.len()).map(|_| None).collect();
        let rounds = by_shard
            .iter()
            .map(|p| p.len().div_ceil(MGET_MAX))
            .max()
            .unwrap_or(0);
        for round in 0..rounds {
            // Phase 1: one head frame per shard — never blocks past the
            // servers' current request, so no send/recv cycle forms.
            let mut sent: Vec<&[usize]> = Vec::with_capacity(shards);
            for (shard, positions) in by_shard.iter().enumerate() {
                let chunk = positions.chunks(MGET_MAX).nth(round).unwrap_or(&[]);
                if !chunk.is_empty() {
                    let batch: Vec<u64> = chunk.iter().map(|&p| keys[p]).collect();
                    self.send_request(shard, &Request::MultiGet { keys: batch })?;
                }
                sent.push(chunk);
            }
            // Phase 2: drain every shard's replies, in key order.
            for (shard, chunk) in sent.into_iter().enumerate() {
                for &pos in chunk {
                    results[pos] = match self.read_response(shard)? {
                        Response::Value { version, value } => Some((version, value)),
                        Response::Miss => None,
                        Response::Malformed => return Err(WireError::Rejected),
                        _ => return Err(WireError::UnexpectedResponse("MultiGet")),
                    };
                }
            }
        }
        Ok(results)
    }

    /// Stores a value; returns its new CAS version.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    pub fn set(&self, key: u64, value: Vec<u8>) -> Result<u64, WireError> {
        let shard = shard_of(key, self.shards.len());
        match self.call(shard, &Request::Set { key, value })? {
            Response::Stored { version } => Ok(version),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Set")),
        }
    }

    /// Compare-and-set. The outer `Result` is transport health; the
    /// inner one is the CAS outcome, `Err(current_version)` on a lost
    /// race.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    pub fn cas(
        &self,
        key: u64,
        value: Vec<u8>,
        expected: u64,
    ) -> Result<Result<u64, u64>, WireError> {
        let shard = shard_of(key, self.shards.len());
        match self.call(
            shard,
            &Request::Cas {
                key,
                expected,
                value,
            },
        )? {
            Response::Stored { version } => Ok(Ok(version)),
            Response::CasFail { current } => Ok(Err(current)),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Cas")),
        }
    }

    /// Deletes a key; `Some(tombstone_version)` if it existed.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    pub fn delete(&self, key: u64) -> Result<Option<u64>, WireError> {
        let shard = shard_of(key, self.shards.len());
        match self.call(shard, &Request::Delete { key })? {
            Response::Deleted { version } => Ok(Some(version)),
            Response::NotFound => Ok(None),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Delete")),
        }
    }

    /// Tells every shard server this client is done, consuming the
    /// client. Servers exit after the last client closes; a shard
    /// already gone needs no goodbye.
    pub fn close(self) {
        for shard in 0..self.shards.len() {
            let _ = self.send_request(shard, &Request::Stop);
        }
    }
}

impl<S: MsgSender, C: MsgReceiver> KvClient for ServiceClient<S, C> {
    fn get(&self, key: u64) -> Result<Option<(u64, Vec<u8>)>, WireError> {
        ServiceClient::get(self, key)
    }

    fn get_many(&self, keys: &[u64]) -> Result<Vec<ReadHit>, WireError> {
        ServiceClient::get_many(self, keys)
    }

    fn set(&self, key: u64, value: Vec<u8>) -> Result<u64, WireError> {
        ServiceClient::set(self, key, value)
    }

    fn cas(&self, key: u64, value: Vec<u8>, expected: u64) -> Result<Result<u64, u64>, WireError> {
        ServiceClient::cas(self, key, value, expected)
    }

    fn delete(&self, key: u64) -> Result<Option<u64>, WireError> {
        ServiceClient::delete(self, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ShardRouter;
    use ssync_locks::TicketLock;

    /// Runs `body` with `clients` live clients against a served router
    /// on the one-line transport.
    fn with_service<F>(shards: usize, clients: usize, body: F) -> ShardRouter<TicketLock>
    where
        F: FnOnce(Vec<ServiceClient>) + Send,
    {
        let router: ShardRouter<TicketLock> = ShardRouter::new(shards, 64, 8);
        let (endpoints, service_clients) = wire_mesh(shards, clients);
        std::thread::scope(|s| {
            for (shard, endpoint) in endpoints.into_iter().enumerate() {
                let store = router.shard(shard);
                s.spawn(move || serve(store, endpoint));
            }
            body(service_clients);
        });
        router
    }

    /// As [`with_service`], over the ring transport.
    fn with_ring_service<F>(
        shards: usize,
        clients: usize,
        depth: usize,
        body: F,
    ) -> ShardRouter<TicketLock>
    where
        F: FnOnce(Vec<ServiceClient<RingSender, RingReceiver>>) + Send,
    {
        let router: ShardRouter<TicketLock> = ShardRouter::new(shards, 64, 8);
        let (endpoints, service_clients) = ring_mesh(shards, clients, depth);
        std::thread::scope(|s| {
            for (shard, endpoint) in endpoints.into_iter().enumerate() {
                let store = router.shard(shard);
                s.spawn(move || serve(store, endpoint));
            }
            body(service_clients);
        });
        router
    }

    #[test]
    fn end_to_end_single_client() {
        let router = with_service(2, 1, |mut clients| {
            let client = clients.pop().unwrap();
            assert!(client.get(1).unwrap().is_none());
            let v1 = client.set(1, b"one".to_vec()).unwrap();
            let (v, value) = client.get(1).unwrap().unwrap();
            assert_eq!((v, value.as_slice()), (v1, b"one".as_slice()));
            let v2 = client.cas(1, b"two".to_vec(), v1).unwrap().unwrap();
            assert_eq!(client.cas(1, b"three".to_vec(), v1).unwrap(), Err(v2));
            let tombstone = client.delete(1).unwrap().expect("key existed");
            assert!(tombstone > v2, "tombstone must order after the store");
            assert!(client.delete(1).unwrap().is_none());
            client.close();
        });
        assert!(router.is_empty());
        let snap = router.stats_snapshot();
        assert_eq!(snap.cas_failures, 1);
        assert_eq!(snap.deletes, 1);
    }

    #[test]
    fn end_to_end_on_rings() {
        let router = with_ring_service(2, 2, 16, |clients| {
            std::thread::scope(|s| {
                for (c, client) in clients.into_iter().enumerate() {
                    s.spawn(move || {
                        let base = c as u64 * 1000;
                        for i in 0..60 {
                            client.set(base + i, vec![c as u8; 48]).unwrap();
                        }
                        for i in 0..60 {
                            let (_, value) = client.get(base + i).unwrap().unwrap();
                            assert_eq!(value, vec![c as u8; 48]);
                        }
                        client.close();
                    });
                }
            });
        });
        assert_eq!(router.len(), 120);
    }

    #[test]
    fn pipelined_reads_drain_in_order() {
        with_ring_service(3, 1, 32, |mut clients| {
            let client = clients.pop().unwrap();
            for key in 0..64u64 {
                client.set(key, key.to_be_bytes().to_vec()).unwrap();
            }
            // Issue a full window of reads before draining any reply;
            // replies come back FIFO per shard.
            let mut pending: Vec<Vec<u64>> = vec![Vec::new(); 3];
            for key in 0..64u64 {
                let shard = client.send_get(key);
                pending[shard].push(key);
                // Keep per-shard outstanding below the ring depth.
                if pending[shard].len() == 16 {
                    for expect in pending[shard].drain(..) {
                        let (_, value) = client.read_get_reply(shard).unwrap().unwrap();
                        assert_eq!(value, expect.to_be_bytes().to_vec());
                    }
                }
            }
            for (shard, keys) in pending.into_iter().enumerate() {
                for expect in keys {
                    let (_, value) = client.read_get_reply(shard).unwrap().unwrap();
                    assert_eq!(value, expect.to_be_bytes().to_vec());
                }
            }
            client.close();
        });
    }

    #[test]
    fn long_values_cross_the_wire_intact() {
        with_service(2, 1, |mut clients| {
            let client = clients.pop().unwrap();
            let value: Vec<u8> = (0..700).map(|i| (i % 256) as u8).collect();
            client.set(9, value.clone()).unwrap();
            let (_, got) = client.get(9).unwrap().unwrap();
            assert_eq!(got, value);
            client.close();
        });
    }

    #[test]
    fn long_values_cross_the_rings_intact() {
        with_ring_service(2, 1, 8, |mut clients| {
            let client = clients.pop().unwrap();
            let value: Vec<u8> = (0..700).map(|i| (i % 251) as u8).collect();
            client.set(9, value.clone()).unwrap();
            let (_, got) = client.get(9).unwrap().unwrap();
            assert_eq!(got, value);
            client.close();
        });
    }

    #[test]
    fn multi_get_spans_shards_and_batches() {
        with_service(3, 1, |mut clients| {
            let client = clients.pop().unwrap();
            for key in 0..40u64 {
                client.set(key, key.to_be_bytes().to_vec()).unwrap();
            }
            // 40 keys over 3 shards forces several rounds of MGET_MAX
            // chunks per shard; 100.. are misses.
            let keys: Vec<u64> = (0..50).map(|i| if i < 40 { i } else { i + 100 }).collect();
            let results = client.get_many(&keys).unwrap();
            for (i, res) in results.iter().enumerate() {
                if i < 40 {
                    let (_, value) = res.as_ref().expect("present key");
                    assert_eq!(value.as_slice(), &(i as u64).to_be_bytes());
                } else {
                    assert!(res.is_none(), "key {i} should miss");
                }
            }
            client.close();
        });
    }

    #[test]
    fn concurrent_clients_share_the_service() {
        let router = with_service(2, 3, |service_clients| {
            std::thread::scope(|s| {
                for (c, client) in service_clients.into_iter().enumerate() {
                    s.spawn(move || {
                        let base = c as u64 * 1000;
                        for i in 0..100 {
                            client.set(base + i, vec![c as u8; 16]).unwrap();
                        }
                        for i in 0..100 {
                            let (_, value) = client.get(base + i).unwrap().unwrap();
                            assert_eq!(value, vec![c as u8; 16]);
                        }
                        client.close();
                    });
                }
            });
        });
        assert_eq!(router.len(), 300);
    }

    #[test]
    fn empty_multi_get_is_a_no_op() {
        with_service(1, 1, |mut clients| {
            let client = clients.pop().unwrap();
            assert!(client.get_many(&[]).unwrap().is_empty());
            client.close();
        });
    }

    /// Regression test for the pre-PR-7 livelock: a client op against a
    /// shard whose server thread is gone must error, not spin forever.
    #[test]
    fn dead_server_surfaces_as_disconnected_not_a_hang() {
        let (endpoints, mut clients) = wire_mesh(1, 1);
        drop(endpoints); // The "server" dies before serving anything.
        let client = clients.pop().unwrap();
        assert_eq!(client.get(1), Err(WireError::Disconnected));
        assert_eq!(client.set(1, b"x".to_vec()), Err(WireError::Disconnected));
        assert_eq!(client.get_many(&[1, 2, 3]), Err(WireError::Disconnected));
        client.close(); // Must not hang either.

        // Ring flavour: queued requests fit the ring, so the send side
        // succeeds and the *reply* read reports the dead peer.
        let (endpoints, mut clients) = ring_mesh(1, 1, 8);
        drop(endpoints);
        let client = clients.pop().unwrap();
        let shard = client.send_get(7);
        assert_eq!(client.read_get_reply(shard), Err(WireError::Disconnected));
        client.close();
    }

    #[test]
    fn live_stats_scrape_reads_a_serving_node_under_load() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = AtomicBool::new(false);
        with_service(1, 2, |mut clients| {
            let prober = clients.pop().unwrap();
            let worker = clients.pop().unwrap();
            std::thread::scope(|s| {
                let stop = &stop;
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        worker.set(i % 64, vec![1u8; 8]).unwrap();
                        worker.get(i % 64).unwrap();
                        i += 1;
                    }
                    worker.close();
                });
                // Scrape while the load runs: the node answers without
                // pausing, and the counters only ever grow.
                let mut last = 0u64;
                for _ in 0..10 {
                    let snap = prober.stats(0).unwrap();
                    let requests = snap.counter("srv.requests").unwrap();
                    assert!(requests >= last, "counters are monotone");
                    last = requests;
                }
                assert!(last > 0, "the load must be visible in a scrape");
                // The timed read path feeds the server-side latency
                // split histograms.
                let shard = prober.send_get_timed(5, mono_ns());
                loop {
                    match prober.try_read_get_reply(shard) {
                        Ok(None) => std::hint::spin_loop(),
                        Ok(Some(_)) => break,
                        Err(e) => panic!("timed read failed: {e:?}"),
                    }
                }
                let snap = prober.stats(0).unwrap();
                for name in ["srv.queue_wait_ns", "srv.apply_ns"] {
                    let hist = snap.hist(name).expect("split histogram registered");
                    assert!(hist.count() >= 1, "{name} must have recorded");
                }
                stop.store(true, Ordering::Relaxed);
                prober.close();
            });
        });
    }

    #[test]
    fn corrupt_frame_gets_malformed_reply_and_server_survives() {
        with_service(1, 1, |mut clients| {
            let client = clients.pop().unwrap();
            // Inject a garbage head frame straight onto the request
            // channel, bypassing the typed encoder.
            let (tx, rx) = &client.shards[0];
            tx.send([0xFF; ssync_mp::MSG_WORDS]);
            let head = rx.recv();
            let reply = Response::decode(head, || unreachable!("malformed reply has no frames"))
                .expect("reply must decode");
            assert_eq!(reply, Response::Malformed);
            // Replication traffic at a plain server is refused the same
            // way, through the typed client path.
            for frame in (Request::ReplGet { key: 1, floor: 0 }).encode() {
                tx.send(frame);
            }
            let head = rx.recv();
            assert_eq!(
                Response::decode(head, || unreachable!()).unwrap(),
                Response::Malformed
            );
            // The server is still alive and serving normal traffic.
            let v = client.set(3, b"alive".to_vec()).unwrap();
            assert_eq!(client.get(3).unwrap().unwrap().0, v);
            client.close();
        });
    }
}

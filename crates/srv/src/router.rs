//! Keyspace partitioning over N [`KvStore`] shards.
//!
//! Memcached scales by running one store per shard and routing each key
//! to its shard by hash; [`ShardRouter`] is that layer. It owns the
//! shards, exposes direct (in-process) operations for callers that
//! don't need the message-passing service, and hands out per-shard
//! references so the service layer can give every shard its own server
//! thread.
//!
//! The shard hash ([`shard_of`]) is a free function on purpose: the
//! *clients* of the message-passing service must route requests to the
//! same shard the router would, without holding a router reference.

use bytes::Bytes;

use ssync_kv::{KvStore, ReadPath, StatsSnapshot};
use ssync_locks::RawLock;

/// The shard a key routes to, out of `shards`.
///
/// SplitMix64 finalizer over the key: service keys are dense integers
/// (the workload engine draws ranks from 0..n), so routing by `key %
/// shards` would alias the zipfian head onto shard 0; the mix spreads
/// it. This function is the routing contract between [`ShardRouter`]
/// and the service clients — both sides must use it.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_of(key: u64, shards: usize) -> usize {
    assert!(shards > 0);
    let z = ssync_core::mix64(key.wrapping_add(0x9E37_79B9_7F4A_7C15));
    (z % shards as u64) as usize
}

/// The byte form of a service key, as stored in the shard `KvStore`s.
pub fn key_bytes(key: u64) -> [u8; 8] {
    key.to_be_bytes()
}

/// Routing slots of the elastic (cluster-map) routing scheme.
///
/// Elastic routing splits [`shard_of`]'s one hash-mod-N step in two:
/// a key hashes to one of [`ROUTE_SLOTS`] fixed *slots* ([`slot_of`],
/// static forever), and a cluster map assigns each slot to an owner
/// shard (dynamic — resharding reassigns slots, never re-hashes keys).
/// 64 slots fit a slot *set* in one `u64` bitmask, which is what lets
/// the migration freeze/cutover protocol treat "the moving slots" as a
/// single atomic word.
pub const ROUTE_SLOTS: usize = 64;

/// The routing slot a key hashes to, out of [`ROUTE_SLOTS`] — the
/// static half of the elastic routing contract (`ssync-cluster`'s
/// `ShardMap` owns the dynamic slot→shard half).
///
/// Same SplitMix64 finalizer family as [`shard_of`] but under a
/// different additive offset, so slot and fixed-fleet shard placements
/// stay decorrelated (and so the zipfian head spreads over slots the
/// same way it spreads over shards).
pub fn slot_of(key: u64) -> usize {
    let z = ssync_core::mix64(key.wrapping_add(0xD1B5_4A32_D192_ED03));
    (z % ROUTE_SLOTS as u64) as usize
}

/// N keyspace shards, each its own [`KvStore`], generic over the lock
/// algorithm like everything else in the tree.
pub struct ShardRouter<R: RawLock + Default> {
    shards: Box<[KvStore<R>]>,
}

impl<R: RawLock + Default> ShardRouter<R> {
    /// Creates `shards` stores, each with `buckets` buckets striped
    /// over `stripes` locks (per shard).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, or on invalid `buckets`/`stripes`
    /// (see [`KvStore::new`]).
    pub fn new(shards: usize, buckets: usize, stripes: usize) -> Self {
        Self::with_read_path(shards, buckets, stripes, ReadPath::default())
    }

    /// As [`ShardRouter::new`], with an explicit read protocol for
    /// every shard store ([`ReadPath::Locked`] is the every-read-locks
    /// benchmark baseline).
    ///
    /// # Panics
    ///
    /// As [`ShardRouter::new`].
    pub fn with_read_path(
        shards: usize,
        buckets: usize,
        stripes: usize,
        read_path: ReadPath,
    ) -> Self {
        assert!(shards > 0);
        Self {
            shards: (0..shards)
                .map(|_| KvStore::with_read_path(buckets, stripes, read_path))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard store a key routes to.
    pub fn shard_for(&self, key: u64) -> &KvStore<R> {
        &self.shards[shard_of(key, self.shards.len())]
    }

    /// The shard store at `index`, for the service layer's per-shard
    /// server threads.
    pub fn shard(&self, index: usize) -> &KvStore<R> {
        &self.shards[index]
    }

    /// Direct (in-process) get.
    pub fn get(&self, key: u64) -> Option<Bytes> {
        self.shard_for(key).get(&key_bytes(key))
    }

    /// Direct get returning `(version, value)`.
    pub fn get_with_version(&self, key: u64) -> Option<(u64, Bytes)> {
        self.shard_for(key).get_with_version(&key_bytes(key))
    }

    /// Direct set; returns the new CAS version.
    pub fn set(&self, key: u64, value: impl Into<Bytes>) -> u64 {
        self.shard_for(key).set(&key_bytes(key), value)
    }

    /// Direct compare-and-set.
    pub fn cas(&self, key: u64, value: impl Into<Bytes>, expected: u64) -> Result<u64, u64> {
        self.shard_for(key).cas(&key_bytes(key), value, expected)
    }

    /// Direct delete; true if the key existed.
    pub fn delete(&self, key: u64) -> bool {
        self.shard_for(key).delete(&key_bytes(key))
    }

    /// Total items across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(KvStore::len).sum()
    }

    /// True if no shard holds any item.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated statistics over all shards, including each shard's
    /// live reclamation backlog gauge.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.shards
            .iter()
            .map(KvStore::stats_snapshot)
            .fold(StatsSnapshot::default(), |acc, s| acc.merge(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_locks::TicketLock;

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1, 2, 4, 7] {
            for key in 0..256 {
                let s = shard_of(key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(key, shards));
            }
        }
    }

    #[test]
    fn routing_spreads_dense_keys() {
        // Dense ranks (what the workload engine draws) must not pile
        // onto one shard: every shard sees a reasonable share.
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for key in 0..1000 {
            counts[shard_of(key, shards)] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 150),
            "unbalanced shard routing: {counts:?}"
        );
    }

    #[test]
    fn direct_ops_route_consistently() {
        let router: ShardRouter<TicketLock> = ShardRouter::new(4, 64, 8);
        for key in 0..100u64 {
            router.set(key, key.to_be_bytes().to_vec());
        }
        assert_eq!(router.len(), 100);
        for key in 0..100u64 {
            assert_eq!(router.get(key).unwrap().as_ref(), &key.to_be_bytes());
        }
        let (v, _) = router.get_with_version(7).unwrap();
        assert!(router.cas(7, b"new".as_slice(), v).is_ok());
        assert!(router.cas(7, b"stale".as_slice(), v).is_err());
        assert!(router.delete(7));
        assert!(!router.delete(7));
        assert_eq!(router.len(), 99);
        let snap = router.stats_snapshot();
        assert_eq!(snap.hits, 101); // 100 gets + get_with_version.
        assert_eq!(snap.deletes, 1);
        assert_eq!(snap.cas_failures, 1);
    }

    #[test]
    #[should_panic]
    fn zero_shards_rejected() {
        let _ = ShardRouter::<TicketLock>::new(0, 64, 8);
    }

    #[test]
    fn slot_routing_is_stable_in_range_and_spread() {
        let mut counts = [0usize; ROUTE_SLOTS];
        for key in 0..4096u64 {
            let s = slot_of(key);
            assert!(s < ROUTE_SLOTS);
            assert_eq!(s, slot_of(key), "slot routing must be stable");
            counts[s] += 1;
        }
        // Dense ranks spread over every slot (64 ≈ expected per slot).
        assert!(
            counts.iter().all(|&c| c > 20),
            "unbalanced slot routing: {counts:?}"
        );
    }

    #[test]
    fn slot_and_shard_hashes_are_decorrelated() {
        // If slot_of were shard_of(·, 64) the per-shard slot sets of a
        // mod-style map would alias with the fixed-fleet placement.
        // Spot-check the two families actually disagree somewhere.
        assert!((0..256u64).any(|k| slot_of(k) != shard_of(k, ROUTE_SLOTS)));
    }
}

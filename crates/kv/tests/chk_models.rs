//! Model-checked interleavings of the *real* `KvStore` code paths.
//!
//! Compiled only under `RUSTFLAGS='--cfg ssync_chk'`: the crate's
//! atomics then resolve to `ssync-chk` shadow atomics, every lock spin
//! goes through a scheduler yield, and the checker enumerates thread
//! interleavings exhaustively up to the preemption bound. These tests
//! drive the actual `KvStore<TtasLock>` — seqlock write sections, the
//! optimistic read protocol with its locked fallback, and the epoch
//! retire/reclaim discipline — not a re-modelled copy of them. (The
//! grace-period protocol itself is modelled in isolation in
//! `ssync-core`'s chk suite; here it runs embedded in the store.)
//!
//! Run with:
//! `RUSTFLAGS='--cfg ssync_chk' cargo test -p ssync-kv --test chk_models`
#![cfg(ssync_chk)]

use std::sync::atomic::{AtomicU64 as RealAtomicU64, Ordering as RealOrdering};
use std::sync::Arc;

use ssync_chk::{thread, Builder};
use ssync_kv::KvStore;
use ssync_locks::TtasLock;

/// A store with one stripe and one bucket: every operation contends on
/// the same seqlock word, stripe lock, and chain — the worst case the
/// protocol has to survive, and the smallest model of it.
fn tiny_store() -> KvStore<TtasLock> {
    KvStore::new(1, 1)
}

/// An optimistic reader racing a writer must always observe one of the
/// two point-in-time states of the key — the old `(version, value)`
/// pair or the new one — never a torn mix, never an odd-epoch view,
/// and after the writer is joined the new value must be visible.
///
/// The same exploration also proves the locked fallback engages: in
/// the interleavings where the reader's [`ssync_kv::OPTIMISTIC_ATTEMPTS`]
/// snapshots all land inside the writer's seqlock section, the read
/// queues on the stripe lock and still returns a coherent answer. The
/// cross-execution counter asserts those interleavings were actually
/// explored.
#[test]
fn seqlock_reader_sees_old_or_new_never_torn() {
    let fallbacks = Arc::new(RealAtomicU64::new(0));
    let fallbacks2 = Arc::clone(&fallbacks);
    // The writer performs two back-to-back replacements (four seqlock
    // transitions), and the preemption bound is raised to 5: enough
    // version-word traffic and switch budget that the exploration
    // reaches schedules where all of [`ssync_kv::OPTIMISTIC_ATTEMPTS`]
    // validations fail — the epoch pin at the head of the read path
    // adds scheduling points that let the partial-order pruning fold
    // the single-writer-parked-inside-the-section route away, so one
    // write section alone no longer demonstrates the fallback.
    let report = Builder::new().with_preemption_bound(5).check(move || {
        let store = Arc::new(tiny_store());
        let v1 = store.set(b"k", b"old".as_slice());
        let writer = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                store.set(b"k", b"mid".as_slice());
                store.set(b"k", b"new".as_slice())
            })
        };
        let hit = store.get_with_version(b"k");
        let (ver, val) = hit.expect("key vanished during a pure update");
        assert!(
            (ver == v1 && val.as_ref() == b"old")
                || (ver == v1 + 1 && val.as_ref() == b"mid")
                || (ver == v1 + 2 && val.as_ref() == b"new"),
            "torn read: version {ver} paired with {val:?}"
        );
        let v2 = writer.join();
        assert_eq!(v2, v1 + 2);
        assert_eq!(
            store.get(b"k").as_deref(),
            Some(b"new".as_ref()),
            "joined writer's value not visible"
        );
        fallbacks2.fetch_add(store.stats_snapshot().read_fallbacks, RealOrdering::Relaxed);
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    assert!(
        fallbacks.load(RealOrdering::Relaxed) > 0,
        "no explored interleaving engaged the locked fallback \
         ({} executions)",
        report.executions
    );
    eprintln!("seqlock reader model: {} executions", report.executions);
}

/// The retirement discipline, end to end: an update retires the
/// replaced node *while a reader may still be traversing it*, the
/// retired node stays in its epoch bag at least until the `&mut`
/// quiescent point (nothing in this model advances the epoch far
/// enough to free it early), and `purge_retired` then frees exactly
/// the replaced nodes. A use-after-free here would read garbage
/// (caught by the torn-read assertion) or crash the model thread
/// (caught as a violation).
#[test]
fn graveyard_retires_across_reader_and_purges_at_quiescence() {
    let report = Builder::new().check(|| {
        let store = Arc::new(tiny_store());
        store.set(b"k", b"old".as_slice());
        let reader = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                // Traverses the chain while the writer below may be
                // retiring the very node under our feet.
                let val = store.get(b"k").expect("key vanished during a pure update");
                assert!(
                    val.as_ref() == b"old" || val.as_ref() == b"new",
                    "freed or torn node read: {val:?}"
                );
            })
        };
        store.set(b"k", b"new".as_slice());
        reader.join();
        // Quiescent point: the Arc is unique again, so the retired
        // node is provably unreachable and purging frees exactly it.
        let mut store = Arc::into_inner(store).expect("reader still holds the store");
        assert_eq!(
            store.reclaim_backlog(),
            1,
            "update must retire the old node"
        );
        assert_eq!(store.purge_retired(), 1);
        assert_eq!(store.get(b"k").as_deref(), Some(b"new".as_ref()));
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("graveyard model: {} executions", report.executions);
}

/// Two concurrent writers to the same key: the stripe lock serializes
/// the seqlock sections, so the surviving node carries the *later*
/// version (whichever writer that is), and exactly one node is retired
/// per replacement — the chain never leaks or double-frees.
#[test]
fn concurrent_writers_serialize_and_retire_exactly_once() {
    let report = Builder::new().check(|| {
        let store = Arc::new(tiny_store());
        store.set(b"k", b"seed".as_slice());
        let other = {
            let store = Arc::clone(&store);
            thread::spawn(move || store.set(b"k", b"a".as_slice()))
        };
        let vb = store.set(b"k", b"b".as_slice());
        let va = other.join();
        assert_ne!(va, vb, "versions must be unique");
        let mut store = Arc::into_inner(store).expect("writer still holds the store");
        let winner = store.get(b"k").expect("key vanished");
        let expect: &[u8] = if va > vb { b"a" } else { b"b" };
        assert_eq!(
            store.version(b"k"),
            Some(va.max(vb)),
            "surviving node must carry the later version"
        );
        assert_eq!(winner.as_ref(), expect);
        // Seed node + first replacement retired; second replacement's
        // predecessor too: 2 replacements → 2 retired nodes.
        assert_eq!(store.purge_retired(), 2);
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("concurrent writers model: {} executions", report.executions);
}

/// Online reclamation racing a live reader: the main thread replaces a
/// node (retiring the old one) and then hammers `reclaim_pass` — the
/// concurrent-free path the epoch scheme adds — while a reader may be
/// mid-traversal over the retired node. Every interleaving must give
/// the reader a coherent answer (a freed-under-foot node would read
/// garbage or crash the model thread), and the passes must reclaim the
/// node once the reader's pin is out of the way: by the quiescent
/// point the backlog is empty without any `purge_retired(&mut)` call.
#[test]
fn reclaim_pass_races_reader_without_use_after_free() {
    let freed_online = Arc::new(RealAtomicU64::new(0));
    let freed2 = Arc::clone(&freed_online);
    let report = Builder::new().check(move || {
        let store = Arc::new(tiny_store());
        store.set(b"k", b"old".as_slice());
        let reader = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let val = store.get(b"k").expect("key vanished during a pure update");
                assert!(
                    val.as_ref() == b"old" || val.as_ref() == b"new",
                    "freed or torn node read: {val:?}"
                );
            })
        };
        store.set(b"k", b"new".as_slice()); // Retires the old node.
                                            // Three passes carry the epoch through the grace period; while
                                            // the reader is pinned at the pre-advance epoch they must not
                                            // free anything (the advance is fenced), afterwards they must.
        let mut freed = 0;
        for _ in 0..3 {
            freed += store.reclaim_pass();
        }
        reader.join();
        while freed == 0 {
            freed = store.reclaim_pass();
        }
        assert_eq!(freed, 1, "exactly the one retired node is reclaimed");
        let store = Arc::into_inner(store).expect("reader still holds the store");
        assert_eq!(store.reclaim_backlog(), 0);
        assert_eq!(store.get(b"k").as_deref(), Some(b"new".as_ref()));
        freed2.fetch_add(1, RealOrdering::Relaxed);
        drop(store); // Drop's purge has nothing left to do.
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("reclaim-vs-reader model: {} executions", report.executions);
}

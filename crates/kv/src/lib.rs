//! # ssync-kv
//!
//! An in-memory key-value store with Memcached's locking structure, the
//! native counterpart of the paper's Section 6.4 testbed:
//!
//! * a fixed-bucket hash table under **fine-grained bucket locks** (one
//!   lock per `LOCKS_PER_TABLE`-th of the buckets, as Memcached stripes
//!   item locks);
//! * a **global maintenance lock** taken periodically by write paths
//!   (Memcached's hash-table expansion and LRU/slab bookkeeping switch
//!   to global locks "for short periods of time");
//! * byte-string values (`bytes::Bytes`) with per-item CAS versions.
//!
//! Every lock is a pluggable `ssync-locks` algorithm — the paper's
//! experiment is literally "replace the Pthread mutexes with the
//! interface provided by libslock", which here is a type parameter.
//!
//! # Examples
//!
//! ```
//! use ssync_kv::KvStore;
//! use ssync_locks::TicketLock;
//!
//! let kv: KvStore<TicketLock> = KvStore::new(1024, 64);
//! kv.set(b"key", b"value".as_slice());
//! assert_eq!(kv.get(b"key").unwrap().as_ref(), b"value");
//! assert!(kv.delete(b"key"));
//! ```

use core::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;

use ssync_locks::{Lock, RawLock};

/// Write operations between global maintenance passes (Memcached's
/// rebalancer wakes periodically; we trigger on write counts to stay
/// deterministic).
pub const MAINTENANCE_PERIOD: u64 = 64;

/// One stored item.
#[derive(Debug, Clone)]
struct Item {
    key: Bytes,
    value: Bytes,
    /// CAS version (Memcached's `cas` token).
    version: u64,
}

/// Statistics counters (all monotonic).
#[derive(Debug, Default)]
pub struct Stats {
    /// Successful `get`s.
    pub hits: AtomicU64,
    /// `get`s for absent keys.
    pub misses: AtomicU64,
    /// `set` operations.
    pub sets: AtomicU64,
    /// Successful `delete`s (deletes of absent keys are not counted).
    pub deletes: AtomicU64,
    /// `cas` attempts rejected for a stale version or absent key.
    pub cas_failures: AtomicU64,
    /// Global maintenance passes executed.
    pub maintenance_runs: AtomicU64,
    /// Replicated operations applied ([`KvStore::apply_replicated`]
    /// calls that changed the store — streamed or replayed from a log).
    pub repl_applied: AtomicU64,
    /// Replicated operations dropped by the version gate (duplicate or
    /// out-of-date deliveries; the idempotency the replication layer
    /// counts on).
    pub repl_stale_drops: AtomicU64,
    /// Replica reads bounced back to the primary (the replica was
    /// behind the client's read floor, or down). Incremented by the
    /// replica server, not the store itself.
    pub replica_read_fallbacks: AtomicU64,
}

impl Stats {
    /// A plain-value copy of every counter, for reporting. Each counter
    /// is read independently (`Relaxed`), so a snapshot taken while
    /// writers are active is a consistent *per-counter* view, not a
    /// cross-counter atomic one.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            sets: self.sets.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            cas_failures: self.cas_failures.load(Ordering::Relaxed),
            maintenance_runs: self.maintenance_runs.load(Ordering::Relaxed),
            repl_applied: self.repl_applied.load(Ordering::Relaxed),
            repl_stale_drops: self.repl_stale_drops.load(Ordering::Relaxed),
            replica_read_fallbacks: self.replica_read_fallbacks.load(Ordering::Relaxed),
        }
    }
}

/// Plain-struct copy of [`Stats`], as returned by [`Stats::snapshot`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Successful `get`s.
    pub hits: u64,
    /// `get`s for absent keys.
    pub misses: u64,
    /// `set` operations.
    pub sets: u64,
    /// Successful `delete`s.
    pub deletes: u64,
    /// Rejected `cas` attempts.
    pub cas_failures: u64,
    /// Global maintenance passes executed.
    pub maintenance_runs: u64,
    /// Replicated operations applied.
    pub repl_applied: u64,
    /// Replicated operations dropped by the version gate.
    pub repl_stale_drops: u64,
    /// Replica reads bounced back to the primary.
    pub replica_read_fallbacks: u64,
}

impl StatsSnapshot {
    /// Field-wise sum, for aggregating shards.
    pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            sets: self.sets + other.sets,
            deletes: self.deletes + other.deletes,
            cas_failures: self.cas_failures + other.cas_failures,
            maintenance_runs: self.maintenance_runs + other.maintenance_runs,
            repl_applied: self.repl_applied + other.repl_applied,
            repl_stale_drops: self.repl_stale_drops + other.repl_stale_drops,
            replica_read_fallbacks: self.replica_read_fallbacks + other.replica_read_fallbacks,
        }
    }

    /// Field-wise difference against an `earlier` snapshot of the same
    /// (monotonic) counters — the per-phase delta reports are built on.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            sets: self.sets - earlier.sets,
            deletes: self.deletes - earlier.deletes,
            cas_failures: self.cas_failures - earlier.cas_failures,
            maintenance_runs: self.maintenance_runs - earlier.maintenance_runs,
            repl_applied: self.repl_applied - earlier.repl_applied,
            repl_stale_drops: self.repl_stale_drops - earlier.repl_stale_drops,
            replica_read_fallbacks: self.replica_read_fallbacks - earlier.replica_read_fallbacks,
        }
    }
}

/// The store, generic over the lock algorithm guarding both the stripes
/// and the global maintenance path.
pub struct KvStore<R: RawLock + Default> {
    /// Striped buckets: `stripes[i]` owns buckets `b` with
    /// `b % stripes.len() == i`.
    stripes: Box<[Lock<Vec<Vec<Item>>, R>]>,
    buckets_per_stripe: usize,
    /// The global "stop-the-world" maintenance lock.
    global: Lock<(), R>,
    write_counter: AtomicU64,
    next_version: AtomicU64,
    stats: Stats,
}

impl<R: RawLock + Default> KvStore<R> {
    /// Creates a store with `buckets` buckets striped over `stripes`
    /// locks.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` or `stripes` is zero, or if `stripes` exceeds
    /// `buckets`.
    pub fn new(buckets: usize, stripes: usize) -> Self {
        assert!(buckets > 0 && stripes > 0 && stripes <= buckets);
        let buckets_per_stripe = buckets.div_ceil(stripes);
        Self {
            stripes: (0..stripes)
                .map(|_| Lock::new(vec![Vec::new(); buckets_per_stripe]))
                .collect(),
            buckets_per_stripe,
            global: Lock::new(()),
            write_counter: AtomicU64::new(0),
            next_version: AtomicU64::new(1),
            stats: Stats::default(),
        }
    }

    /// Statistics counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    fn locate(&self, key: &[u8]) -> (usize, usize) {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        let bucket = (h >> 16) as usize % (self.stripes.len() * self.buckets_per_stripe);
        (bucket % self.stripes.len(), bucket / self.stripes.len())
    }

    /// Looks a key up.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        let (stripe, bucket) = self.locate(key);
        let guard = self.stripes[stripe].lock();
        let hit = guard[bucket]
            .iter()
            .find(|item| item.key.as_ref() == key)
            .map(|item| item.value.clone());
        drop(guard);
        match &hit {
            Some(_) => self.stats.hits.fetch_add(1, Ordering::Relaxed),
            None => self.stats.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// The CAS version of a key, if present.
    pub fn version(&self, key: &[u8]) -> Option<u64> {
        let (stripe, bucket) = self.locate(key);
        let guard = self.stripes[stripe].lock();
        guard[bucket]
            .iter()
            .find(|item| item.key.as_ref() == key)
            .map(|item| item.version)
    }

    /// Looks a key up, returning `(version, value)` — Memcached's
    /// `gets` command, which the service layer needs to answer a read
    /// and arm a follow-up CAS with one lock acquisition.
    pub fn get_with_version(&self, key: &[u8]) -> Option<(u64, Bytes)> {
        let (stripe, bucket) = self.locate(key);
        let guard = self.stripes[stripe].lock();
        let hit = guard[bucket]
            .iter()
            .find(|item| item.key.as_ref() == key)
            .map(|item| (item.version, item.value.clone()));
        drop(guard);
        match &hit {
            Some(_) => self.stats.hits.fetch_add(1, Ordering::Relaxed),
            None => self.stats.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Stores a value (insert or replace); returns its new CAS version.
    pub fn set(&self, key: &[u8], value: impl Into<Bytes>) -> u64 {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let (stripe, bucket) = self.locate(key);
        {
            let mut guard = self.stripes[stripe].lock();
            let chain = &mut guard[bucket];
            match chain.iter_mut().find(|item| item.key.as_ref() == key) {
                Some(item) => {
                    item.value = value.into();
                    item.version = version;
                }
                None => chain.push(Item {
                    key: Bytes::copy_from_slice(key),
                    value: value.into(),
                    version,
                }),
            }
        }
        self.stats.sets.fetch_add(1, Ordering::Relaxed);
        self.after_write();
        version
    }

    /// Compare-and-set: stores only if the current version matches.
    pub fn cas(&self, key: &[u8], value: impl Into<Bytes>, expected: u64) -> Result<u64, u64> {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let (stripe, bucket) = self.locate(key);
        let result = {
            let mut guard = self.stripes[stripe].lock();
            match guard[bucket]
                .iter_mut()
                .find(|item| item.key.as_ref() == key)
            {
                Some(item) if item.version == expected => {
                    item.value = value.into();
                    item.version = version;
                    Ok(version)
                }
                Some(item) => Err(item.version),
                None => Err(0),
            }
        };
        if result.is_ok() {
            self.stats.sets.fetch_add(1, Ordering::Relaxed);
            self.after_write();
        } else {
            self.stats.cas_failures.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Deletes a key, assigning the removal a fresh version — the
    /// tombstone version a replicated delete streams to backups so the
    /// remove orders against concurrent stores. `Some(version)` if the
    /// key existed.
    pub fn delete_versioned(&self, key: &[u8]) -> Option<u64> {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let (stripe, bucket) = self.locate(key);
        let removed = {
            let mut guard = self.stripes[stripe].lock();
            let chain = &mut guard[bucket];
            match chain.iter().position(|item| item.key.as_ref() == key) {
                Some(pos) => {
                    chain.swap_remove(pos);
                    true
                }
                None => false,
            }
        };
        if removed {
            self.stats.deletes.fetch_add(1, Ordering::Relaxed);
            self.after_write();
            Some(version)
        } else {
            None
        }
    }

    /// Applies one replicated operation idempotently: a put
    /// (`value: Some`) or a delete tombstone (`value: None`) tagged with
    /// the version the *primary* assigned. The write lands only if the
    /// key's current version is older than `version`; duplicate or
    /// out-of-date deliveries are dropped (and counted as
    /// `repl_stale_drops`), so a replica can replay a log over a live
    /// stream without corruption. Returns true if the store changed.
    ///
    /// The per-key gate alone cannot block a *resurrection* (an old put
    /// arriving after the key's tombstone was applied — the tombstone
    /// leaves nothing behind to compare against), so the replication
    /// layer must also gate on its stream high-water mark; this method
    /// is the second, per-key line of defense.
    ///
    /// The version counter is bumped past `version`, so a replica
    /// promoted to primary keeps assigning monotone versions.
    pub fn apply_replicated(&self, key: &[u8], version: u64, value: Option<&[u8]>) -> bool {
        self.next_version.fetch_max(version + 1, Ordering::Relaxed);
        let (stripe, bucket) = self.locate(key);
        let applied = {
            let mut guard = self.stripes[stripe].lock();
            let chain = &mut guard[bucket];
            let pos = chain.iter().position(|item| item.key.as_ref() == key);
            match (pos, value) {
                (Some(i), _) if chain[i].version >= version => false,
                (Some(i), Some(v)) => {
                    chain[i].value = Bytes::copy_from_slice(v);
                    chain[i].version = version;
                    true
                }
                (Some(i), None) => {
                    chain.swap_remove(i);
                    true
                }
                (None, Some(v)) => {
                    chain.push(Item {
                        key: Bytes::copy_from_slice(key),
                        value: Bytes::copy_from_slice(v),
                        version,
                    });
                    true
                }
                // Delete of an absent key: already gone, nothing to do.
                (None, None) => false,
            }
        };
        if applied {
            self.stats.repl_applied.fetch_add(1, Ordering::Relaxed);
            self.after_write();
        } else {
            self.stats.repl_stale_drops.fetch_add(1, Ordering::Relaxed);
        }
        applied
    }

    /// Visits every stored item as `(key, version, value)`, one stripe
    /// lock at a time, in unspecified order.
    pub fn for_each(&self, mut f: impl FnMut(&[u8], u64, &[u8])) {
        for stripe in self.stripes.iter() {
            let guard = stripe.lock();
            for chain in guard.iter() {
                for item in chain {
                    f(item.key.as_ref(), item.version, item.value.as_ref());
                }
            }
        }
    }

    /// The full contents as `(key, version, value)` triples sorted by
    /// key — the comparison form replication tests and the `repl-perf`
    /// convergence check use.
    pub fn dump(&self) -> Vec<(Bytes, u64, Bytes)> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            let guard = stripe.lock();
            for chain in guard.iter() {
                for item in chain {
                    out.push((item.key.clone(), item.version, item.value.clone()));
                }
            }
        }
        out.sort_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()));
        out
    }

    /// Deletes a key; true if it existed.
    pub fn delete(&self, key: &[u8]) -> bool {
        let (stripe, bucket) = self.locate(key);
        let removed = {
            let mut guard = self.stripes[stripe].lock();
            let chain = &mut guard[bucket];
            match chain.iter().position(|item| item.key.as_ref() == key) {
                Some(pos) => {
                    chain.swap_remove(pos);
                    true
                }
                None => false,
            }
        };
        if removed {
            self.stats.deletes.fetch_add(1, Ordering::Relaxed);
            self.after_write();
        }
        removed
    }

    /// Number of stored items (takes every stripe lock).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// True if the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The write path's periodic global-lock maintenance (Memcached's
    /// LRU crawl / hash expansion stand-in: walks one stripe under the
    /// global lock).
    fn after_write(&self) {
        let n = self.write_counter.fetch_add(1, Ordering::Relaxed) + 1;
        if n % MAINTENANCE_PERIOD != 0 {
            return;
        }
        let _global = self.global.lock();
        self.stats.maintenance_runs.fetch_add(1, Ordering::Relaxed);
        // Touch one stripe while holding the global lock, as the real
        // rebalancer serializes against every writer.
        let stripe = (n / MAINTENANCE_PERIOD) as usize % self.stripes.len();
        let guard = self.stripes[stripe].lock();
        let _items: usize = guard.iter().map(Vec::len).sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_locks::{McsLock, MutexLock, TasLock, TicketLock};

    #[test]
    fn set_get_delete() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        assert!(kv.get(b"a").is_none());
        kv.set(b"a", b"1".as_slice());
        assert_eq!(kv.get(b"a").unwrap().as_ref(), b"1");
        kv.set(b"a", b"2".as_slice());
        assert_eq!(kv.get(b"a").unwrap().as_ref(), b"2");
        assert!(kv.delete(b"a"));
        assert!(!kv.delete(b"a"));
        assert!(kv.is_empty());
    }

    #[test]
    fn cas_respects_versions() {
        let kv: KvStore<TasLock> = KvStore::new(64, 8);
        let v1 = kv.set(b"k", b"x".as_slice());
        assert_eq!(kv.version(b"k"), Some(v1));
        let v2 = kv.cas(b"k", b"y".as_slice(), v1).unwrap();
        assert!(v2 > v1);
        // Stale CAS fails and reports the current version.
        assert_eq!(kv.cas(b"k", b"z".as_slice(), v1), Err(v2));
        // CAS on a missing key fails with version 0.
        assert_eq!(kv.cas(b"nope", b"z".as_slice(), 1), Err(0));
    }

    #[test]
    fn maintenance_runs_periodically() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        for i in 0..(MAINTENANCE_PERIOD * 3) {
            kv.set(format!("k{i}").as_bytes(), b"v".as_slice());
        }
        assert!(kv.stats().maintenance_runs.load(Ordering::Relaxed) >= 3);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let kv: KvStore<MutexLock> = KvStore::new(64, 8);
        kv.set(b"present", b"v".as_slice());
        kv.get(b"present");
        kv.get(b"absent");
        assert_eq!(kv.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(kv.stats().misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stats_track_deletes_and_cas_failures() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        let v = kv.set(b"k", b"x".as_slice());
        assert!(kv.delete(b"k"));
        assert!(!kv.delete(b"k")); // Absent: not counted.
        assert!(kv.cas(b"k", b"y".as_slice(), v).is_err()); // Absent key.
        let v = kv.set(b"k", b"x".as_slice());
        assert!(kv.cas(b"k", b"y".as_slice(), v + 1).is_err()); // Stale.
        assert!(kv.cas(b"k", b"y".as_slice(), v).is_ok());
        let snap = kv.stats().snapshot();
        assert_eq!(snap.deletes, 1);
        assert_eq!(snap.cas_failures, 2);
        assert_eq!(snap.sets, 3); // Two plain sets + the successful CAS.
    }

    #[test]
    fn snapshot_copies_and_merges() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        kv.set(b"a", b"1".as_slice());
        kv.get(b"a");
        kv.get(b"b");
        let snap = kv.stats().snapshot();
        assert_eq!(
            snap,
            StatsSnapshot {
                hits: 1,
                misses: 1,
                sets: 1,
                ..StatsSnapshot::default()
            }
        );
        let doubled = snap.merge(&snap);
        assert_eq!(doubled.hits, 2);
        assert_eq!(doubled.sets, 2);
    }

    #[test]
    fn get_with_version_matches_get_and_version() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        assert!(kv.get_with_version(b"k").is_none());
        let v = kv.set(b"k", b"val".as_slice());
        let (got_v, got) = kv.get_with_version(b"k").unwrap();
        assert_eq!(got_v, v);
        assert_eq!(got.as_ref(), b"val");
        assert_eq!(kv.version(b"k"), Some(v));
        // It counts toward hit/miss stats like `get`.
        let snap = kv.stats().snapshot();
        assert_eq!((snap.hits, snap.misses), (1, 1));
    }

    #[test]
    fn concurrent_writers_disjoint_keyspaces() {
        let kv: KvStore<McsLock> = KvStore::new(128, 16);
        std::thread::scope(|s| {
            for t in 0..4 {
                let kv = &kv;
                s.spawn(move || {
                    for i in 0..200u32 {
                        let key = format!("t{t}-{i}");
                        kv.set(key.as_bytes(), key.clone().into_bytes());
                        assert_eq!(kv.get(key.as_bytes()).unwrap().as_ref(), key.as_bytes());
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(kv.len(), 800);
    }

    #[test]
    #[should_panic]
    fn more_stripes_than_buckets_rejected() {
        let _ = KvStore::<TicketLock>::new(4, 8);
    }

    #[test]
    fn delete_versioned_assigns_tombstone_versions() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        let v = kv.set(b"k", b"x".as_slice());
        let t = kv.delete_versioned(b"k").expect("key existed");
        assert!(t > v, "tombstone {t} must order after the store {v}");
        assert_eq!(kv.delete_versioned(b"k"), None);
        assert_eq!(kv.stats().snapshot().deletes, 1);
        // A later set still gets a version past the tombstone.
        assert!(kv.set(b"k", b"y".as_slice()) > t);
    }

    #[test]
    fn apply_replicated_is_version_gated_and_idempotent() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        // Fresh put applies.
        assert!(kv.apply_replicated(b"k", 5, Some(b"five")));
        assert_eq!(kv.get_with_version(b"k").unwrap().0, 5);
        // Duplicate delivery and older versions drop.
        assert!(!kv.apply_replicated(b"k", 5, Some(b"five")));
        assert!(!kv.apply_replicated(b"k", 3, Some(b"three")));
        assert_eq!(kv.get_with_version(b"k").unwrap().1.as_ref(), b"five");
        // Newer version replaces.
        assert!(kv.apply_replicated(b"k", 9, Some(b"nine")));
        // Tombstone with a newer version removes; older tombstone drops.
        assert!(!kv.apply_replicated(b"k", 7, None));
        assert!(kv.get(b"k").is_some());
        assert!(kv.apply_replicated(b"k", 12, None));
        assert!(kv.get(b"k").is_none());
        // Tombstone for an absent key is a no-op.
        assert!(!kv.apply_replicated(b"gone", 20, None));
        let snap = kv.stats().snapshot();
        assert_eq!(snap.repl_applied, 3);
        assert_eq!(snap.repl_stale_drops, 4);
        // Local versioning continues past the highest replicated version.
        assert!(kv.set(b"new", b"v".as_slice()) > 20);
    }

    #[test]
    fn dump_reflects_contents_sorted() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        let vb = kv.set(b"b", b"2".as_slice());
        let va = kv.set(b"a", b"1".as_slice());
        let dump = kv.dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].0.as_ref(), b"a");
        assert_eq!(dump[0].1, va);
        assert_eq!(dump[1].0.as_ref(), b"b");
        assert_eq!((dump[1].1, dump[1].2.as_ref()), (vb, b"2".as_slice()));
        let mut visited = 0;
        kv.for_each(|_, _, _| visited += 1);
        assert_eq!(visited, 2);
    }

    #[test]
    fn replicated_stream_converges_with_primary() {
        // A primary and a replica fed only via apply_replicated end up
        // byte-identical, including after a mid-stream replay.
        let primary: KvStore<TicketLock> = KvStore::new(64, 8);
        let replica: KvStore<TicketLock> = KvStore::new(64, 8);
        let mut stream: Vec<(Vec<u8>, u64, Option<Vec<u8>>)> = Vec::new();
        for i in 0u64..40 {
            let key = format!("k{}", i % 7).into_bytes();
            if i % 5 == 4 {
                if let Some(v) = primary.delete_versioned(&key) {
                    stream.push((key, v, None));
                }
            } else {
                let value = i.to_be_bytes().to_vec();
                let v = primary.set(&key, value.clone());
                stream.push((key, v, Some(value)));
            }
        }
        for (key, v, value) in &stream {
            replica.apply_replicated(key, *v, value.as_deref());
        }
        // Replay the stream for keys still present: every entry drops
        // as stale. (Keys whose tombstone applied are skipped — with
        // nothing left to version-gate against, an old put would
        // resurrect them; blocking that is the stream-order gate's job
        // in the replication layer, not the store's.)
        for (key, v, value) in &stream {
            if replica.get(key).is_some() {
                assert!(!replica.apply_replicated(key, *v, value.as_deref()));
            }
        }
        assert_eq!(primary.dump(), replica.dump());
    }
}
